"""E11 — Theorems 5–6 (§5): expressive power via generic machines / tids.

Regenerates:

* input-order independence (genericity) of the non-deterministic
  choose-one machine and the deterministic parity machine;
* agreement between the choose-one NGTM and the IDLOG program
  ``pick(X) :- item[](X, 0)`` — the two formalisms defining the same
  non-deterministic query;
* the tid-as-total-order construction: n! enumerations, deterministic
  counting, and the Datalog-inexpressible parity query.
"""

import math

from repro.core import IdlogEngine
from repro.datalog.database import Database
from repro.ndtm import (TOTAL_ORDER_PROGRAM, choose_one_machine,
                        decode_output, domain_db, domain_parity,
                        domain_size, encode_database,
                        input_order_independent, parity_machine)


def items_db(n: int) -> Database:
    return Database.from_facts({"item": [(f"i{k}",) for k in range(n)]})


def test_e11_machine_genericity(benchmark, table):
    db = items_db(3)
    machine = choose_one_machine()
    generic = benchmark(
        lambda: input_order_independent(machine, db, trials=5))
    assert generic
    assert input_order_independent(parity_machine(), db, trials=5)
    table("E11: genericity (input-order independence)",
          ["machine", "generic"],
          [("choose-one NGTM", True), ("parity TM", True)])


def test_e11_ngtm_equals_idlog_query(benchmark, table):
    """The NGTM and the IDLOG sampling program define the same query."""
    rows = []
    for n in (1, 2, 3, 4):
        db = items_db(n)
        encoding = encode_database(db)
        outputs = choose_one_machine().outputs(encoding.tape())
        machine_answers = frozenset(
            decode_output(o, encoding.codes) for o in outputs)
        idlog_answers = IdlogEngine("pick(X) :- item[](X, 0).") \
            .answers(db, "pick")
        assert machine_answers == idlog_answers
        assert len(machine_answers) == n
        rows.append((n, len(machine_answers)))
    table("E11: NGTM == IDLOG on 'pick one' (answers per n)",
          ["n", "answers"], rows)
    db = items_db(4)
    encoding = encode_database(db)
    machine = choose_one_machine()
    benchmark(lambda: machine.outputs(encoding.tape()))


def test_e11_total_order_enumeration(benchmark, table):
    engine = IdlogEngine(TOTAL_ORDER_PROGRAM)
    rows = []
    for n in (2, 3, 4):
        db = domain_db([f"e{i}" for i in range(n)])
        answers = engine.answers(db, "ordered")
        assert len(answers) == math.factorial(n)
        rows.append((n, len(answers)))
    table("E11: tids enumerate all total orders", ["n", "n! orders"], rows)
    db = domain_db([f"e{i}" for i in range(4)])
    benchmark(lambda: engine.answers(db, "ordered"))


def test_e11_deterministic_counting_and_parity(benchmark, table):
    rows = []
    for n in (1, 2, 3, 4):
        db = domain_db([f"e{i}" for i in range(n)])
        size = domain_size(db)
        assert size == {frozenset({(n,)})}
        even, odd = domain_parity(db)
        parity = "even" if even == {frozenset({("yes",)})} else "odd"
        assert parity == ("even" if n % 2 == 0 else "odd")
        rows.append((n, n, parity))
    table("E11: deterministic queries over an arbitrary order",
          ["|dom|", "size()", "parity"], rows)
    db = domain_db([f"e{i}" for i in range(4)])
    benchmark(lambda: domain_size(db))


def test_e11_idlog_parity_matches_machine(benchmark, table):
    """Cross-formalism: the parity NGTM and PARITY_PROGRAM agree."""
    machine = parity_machine()
    rows = []
    for n in (2, 3, 4, 5):
        db = items_db(n)
        (raw,) = machine.outputs(encode_database(db).tape())
        machine_even = raw == "(0)"
        even, _ = domain_parity(domain_db([f"i{k}" for k in range(n)]))
        idlog_even = even == {frozenset({("yes",)})}
        assert machine_even == idlog_even
        rows.append((n, "even" if machine_even else "odd",
                     "even" if idlog_even else "odd"))
    table("E11: parity, machine vs IDLOG", ["n", "TM", "IDLOG"], rows)
    db = items_db(5)
    encoding = encode_database(db)
    benchmark(lambda: machine.outputs(encoding.tape()))
