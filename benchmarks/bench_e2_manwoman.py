"""E2 — Example 2 (§3.1): the man/woman query across four languages.

Regenerates: man(r) = woman(r) = {∅, {a}, {b}, {a,b}} via IDLOG, and the
agreement of DATALOG^∨ (minimal models), DATALOG^C (§3.2.2's program) and
stable models on the same query.
"""

import pytest

from repro.choice import ChoiceEngine
from repro.core import IdlogEngine
from repro.datalog.database import Database
from repro.disjunctive import DisjunctiveEngine
from repro.stable import StableEngine

IDLOG = """
    sex_guess(X, male) :- person(X).
    sex_guess(X, female) :- person(X).
    man(X) :- sex_guess[1](X, male, 1).
    woman(X) :- sex_guess[1](X, female, 1).
"""

CHOICE = """
    sex_guess(X, male) :- person(X).
    sex_guess(X, female) :- person(X).
    sex(X, Y) :- sex_guess(X, Y), choice((X), (Y)).
    man(X) :- sex(X, male).
    woman(X) :- sex(X, female).
"""

NORMAL = """
    man(X) :- person(X), not woman(X).
    woman(X) :- person(X), not man(X).
"""

PEOPLE = Database.from_facts({"person": [("a",), ("b",)]})

EXPECTED = {frozenset(), frozenset({("a",)}), frozenset({("b",)}),
            frozenset({("a",), ("b",)})}


def test_e2_idlog_answer_set(benchmark, table):
    engine = IdlogEngine(IDLOG)
    answers = benchmark(lambda: engine.answers(PEOPLE, "man"))
    assert answers == EXPECTED
    assert engine.answers(PEOPLE, "woman") == EXPECTED
    table("E2: man(r) per language (paper: {∅,{a},{b},{a,b}})",
          ["language", "man answers"],
          [("IDLOG", sorted(sorted(a) for a in answers))])


@pytest.mark.parametrize("name,make_answers", [
    ("DATALOG^C", lambda: ChoiceEngine(CHOICE).answers(PEOPLE, "man")),
    ("DATALOG^∨", lambda: DisjunctiveEngine(
        "man(X) | woman(X) :- person(X).").answers(PEOPLE, "man")),
    ("stable models", lambda: StableEngine(NORMAL).answers(PEOPLE, "man")),
])
def test_e2_language_agreement(benchmark, name, make_answers):
    answers = benchmark(make_answers)
    assert answers == EXPECTED


def test_e2_scaling_people(benchmark, table):
    """Answer-set size is 2^n — all subsets of person."""
    rows = []
    for n in (1, 2, 3):
        db = Database.from_facts({"person": [(f"p{i}",) for i in range(n)]})
        answers = IdlogEngine(IDLOG).answers(db, "man")
        assert len(answers) == 2 ** n
        rows.append((n, len(answers)))
    table("E2: |man(r)| vs |person|", ["n", "answers = 2^n"], rows)
    db = Database.from_facts({"person": [(f"p{i}",) for i in range(3)]})
    benchmark(lambda: IdlogEngine(IDLOG).answers(db, "man"))
