#!/usr/bin/env python
"""Run every benchmark kernel under each engine/plan mode and record the
perf trajectory.

For each ``bench_*.py`` module this runner extracts one representative
kernel, executes it under every (engine, plan) combination —
``engine`` in (interp, batch) x ``plan`` in (greedy, cost) — and records
wall time, join probes, fixpoint iterations and derived-tuple counts
(where the kernel surfaces :class:`~repro.datalog.seminaive.EvalStats`)
plus a canonical digest of the answer.  After timing, one extra untimed
pass per kernel runs under an ambient :class:`TimingTracer`, so the
``batch/greedy`` record also carries a per-clause/per-stratum ``profile``
and — where the batch executor captured per-stage estimates — a
``plan_quality`` block (per-clause q-errors, median/max roll-up; see
``docs/OBSERVABILITY.md``), which ``compare.py`` gates against the
baseline's so planner estimate drift fails CI even when wall time hides
it.  Results are written to ``BENCH_pr10.json`` at the repo root; two
trajectory files are compared for regressions by
``benchmarks/compare.py``.

The report also carries a ``memory`` section — resident/logical
bytes-per-tuple of the 1200-row Zipf workload under the columnar store,
plus the pool interning ratio — which ``compare.py`` gates alongside the
wall-time series (bytes/tuple must not regress more than 10%) — and a
``server`` section from ``bench_server.py`` (concurrent-client p50/p99
latency and throughput against the long-lived server; zero errors
required).

The run FAILS (exit 1) when the batch and interp engines disagree on any
kernel's answer under the same plan — this is the CI smoke check.

Nondeterministic kernels (seeded ``one()`` sampling) embed their
ID-choice log (see :mod:`repro.core.choicelog`) in the report under
``choice_logs``; ``--replay-from PRIOR.json`` replays those logs so the
candidate reproduces the baseline's ID choices exactly and ``compare.py``
can enforce hard digest equality instead of exempting the kernel.

Usage::

    python benchmarks/run_all.py            # full sizes, best of 3
    python benchmarks/run_all.py --quick    # CI: small sizes, 1 repeat
    python benchmarks/run_all.py --out /tmp/bench.json
    python benchmarks/run_all.py --quick --replay-from BENCH_prev.json
"""

from __future__ import annotations

import argparse
import hashlib
import importlib
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

MODES = [("interp", "greedy"), ("interp", "cost"),
         ("batch", "greedy"), ("batch", "cost")]

#: The mode whose record carries the per-clause profile (the default
#: production configuration).
PROFILED_MODE = ("batch", "greedy")


def canon(obj):
    """Canonical JSON-free form of an answer for digesting."""
    if isinstance(obj, (frozenset, set)):
        return sorted((canon(x) for x in obj), key=repr)
    if isinstance(obj, (tuple, list)):
        return [canon(x) for x in obj]
    if isinstance(obj, dict):
        return sorted(((k, canon(v)) for k, v in obj.items()), key=repr)
    return obj


def digest(answer) -> str:
    return hashlib.sha256(repr(canon(answer)).encode()).hexdigest()[:16]


def stats_dict(stats):
    if stats is None:
        return {}
    return {"probes": stats.probes, "iterations": stats.iterations,
            "derived": stats.total_derived, "firings": stats.firings,
            "pipelines_compiled": stats.pipelines_compiled,
            "pipelines_reused": stats.pipelines_reused}


# ---------------------------------------------------------------------------
# Scenario registry: one kernel per bench module.  Each builder returns a
# callable kernel(plan, engine) -> (answer, stats-or-None); kernels whose
# code path never reaches the semi-naive evaluator simply ignore the knobs
# (their numbers are flat across modes, which the JSON makes visible).
# ---------------------------------------------------------------------------

def _a1(quick):
    m = importlib.import_module("bench_a1_seminaive")
    db = m.chain(60 if quick else 200)

    def kernel(plan, engine):
        result, stats = m.evaluate(m.TC, db, plan=plan, engine=engine)
        return result.relation("path").frozen(), stats
    return kernel


def _a2(quick):
    m = importlib.import_module("bench_a2_slicing")
    db = m.db(3, 3 if quick else 4)
    from repro.core import IdlogEngine

    def kernel(plan, engine):
        eng = IdlogEngine(m.PROGRAM, plan=plan, engine=engine)
        return eng.answers(db, "pick"), None
    return kernel


def _a3(quick):
    m = importlib.import_module("bench_a3_magic")
    from repro.datalog.engine import DatalogEngine
    db = m.forest(6, 8 if quick else 16, 6 if quick else 8)

    def kernel(plan, engine):
        result = DatalogEngine(m.TC, plan=plan, engine=engine).run(db)
        return result.tuples("path"), result.stats
    return kernel


def _a4(quick):
    m = importlib.import_module("bench_a4_incremental")
    from repro.datalog.incremental import IncrementalEngine
    n = 20 if quick else 40
    inserts = 3 if quick else 8

    def kernel(plan, engine):
        eng = IncrementalEngine(m.TC, engine=engine)
        eng.start(m.chain(n))
        for k in range(inserts):
            eng.add_fact("edge", (f"n{n + k}", f"n{n + k + 1}"))
        return eng.relation("path"), eng.stats
    return kernel


def _a5(quick):
    m = importlib.import_module("bench_a5_topdown")
    from repro.datalog.topdown import TopDownEngine
    db = m.forest(6, 6 if quick else 12, 8)

    def kernel(plan, engine):
        return TopDownEngine(m.TC).query(db, "path(n0, Y)"), None
    return kernel


def _a6(quick):
    importlib.import_module("bench_a6_aggregates")
    from conftest import employees_db
    from repro.aggregates import count_per_group
    db = employees_db(50 if quick else 200, 5)
    agg = count_per_group("emp", 2, group=[2])

    def kernel(plan, engine):
        return frozenset(agg.compute(db)), None
    return kernel


def _a7(quick):
    m = importlib.import_module("bench_a7_counting")
    from repro.datalog.counting import CountingEngine
    db = m.dense_db(4 if quick else 10)

    def kernel(plan, engine):
        eng = CountingEngine(m.HOP2)
        eng.start(db)
        return eng.relation("hop2"), None
    return kernel


def _e1(quick):
    m = importlib.import_module("bench_e1_idrelations")
    from repro.core.idrelations import count_id_functions

    def kernel(plan, engine):
        counts = tuple(count_id_functions(m.R_EXAMPLE1, m.G1, limit)
                       for limit in (None, 1, 2))
        return counts, None
    return kernel


def _e2(quick):
    m = importlib.import_module("bench_e2_manwoman")
    from repro.core import IdlogEngine
    from repro.datalog.database import Database
    n = 3 if quick else 5
    db = Database.from_facts({"person": [(f"p{i}",) for i in range(n)]})

    def kernel(plan, engine):
        eng = IdlogEngine(m.IDLOG, plan=plan, engine=engine)
        return eng.answers(db, "man"), None
    return kernel


def _e3(quick):
    m = importlib.import_module("bench_e3_inflationary")
    from repro.inflationary import DLEngine

    def kernel(plan, engine):
        return DLEngine(m.EX3).answers(m.PEOPLE, "man"), None
    return kernel


def _e4(quick):
    m = importlib.import_module("bench_e4_sampling_one")
    from conftest import employees_db
    from repro.core import IdlogEngine
    db = employees_db(4 if quick else 6, 3 if quick else 4)

    def kernel(plan, engine, record=None, replay=None):
        eng = IdlogEngine(m.IDLOG, plan=plan, engine=engine)
        if replay is not None:
            result = eng.replay(db, replay)
        else:
            result = eng.one(db, seed=0, record=record)
        return result.tuples("select_emp"), result.stats
    kernel.answer_preds = ("select_emp",)
    return kernel


def _e5(quick):
    m = importlib.import_module("bench_e5_sampling_k")
    from conftest import employees_db
    from repro.core import IdlogEngine
    db = employees_db(4 if quick else 8, 3 if quick else 4)

    def kernel(plan, engine):
        eng = IdlogEngine(m.IDLOG_TWO, plan=plan, engine=engine)
        result = eng.run(db)
        return result.tuples("select_two_emp"), result.stats
    return kernel


def _e6(quick):
    m = importlib.import_module("bench_e6_adornment")
    from repro.core import IdlogEngine
    from repro.optimizer import optimize
    rewrite = optimize(m.EX6, "q")
    db = m.chain_db(15 if quick else 30)

    def kernel(plan, engine):
        eng = IdlogEngine(rewrite.optimized, plan=plan, engine=engine)
        result = eng.run(db)
        return result.tuples("q"), result.stats
    return kernel


def _e7(quick):
    m = importlib.import_module("bench_e7_exists_vs_forall")
    from repro.datalog.parser import parse_program
    from repro.datalog.seminaive import evaluate
    program = parse_program(m.EXISTS_JOIN)
    db = m.exists_db(15 if quick else 30)

    def kernel(plan, engine):
        result, stats = evaluate(program, db, plan=plan, engine=engine)
        return result.relation("q").frozen(), stats
    return kernel


def _e8(quick):
    m = importlib.import_module("bench_e8_group_limit")
    from conftest import employees_db
    from repro.core import IdlogEngine
    db = employees_db(8 if quick else 20, 4 if quick else 6)

    def kernel(plan, engine):
        eng = IdlogEngine(m.SELECT_TWO, plan=plan, engine=engine)
        result = eng.run(db)
        return result.tuples("select_two_emp"), result.stats
    return kernel


def _e9(quick):
    m = importlib.import_module("bench_e9_theorem2")
    import random
    from repro.choice import choice_to_idlog
    from repro.core import IdlogEngine
    source, pred, schema = m.PROGRAMS["sex_guess"]
    translated = choice_to_idlog(source)
    db = m.random_db(schema, random.Random(0))

    def kernel(plan, engine):
        eng = IdlogEngine(translated, plan=plan, engine=engine)
        return eng.answers(db, pred), None
    return kernel


def _e10(quick):
    m = importlib.import_module("bench_e10_theorem4")
    from repro.optimizer import (optimize, q_equivalent_on,
                                 random_databases)
    source, query, schema = m.SUITE["example6"]
    result = optimize(source, query)
    dbs = list(random_databases(schema, ["a", "b", "c"],
                                count=5 if quick else 10, seed=13,
                                max_rows=5))

    def kernel(plan, engine):
        return q_equivalent_on(result.original, result.optimized,
                               query, dbs), None
    return kernel


def _e11(quick):
    importlib.import_module("bench_e11_expressive")
    from repro.core import IdlogEngine
    from repro.datalog.database import Database
    n = 3 if quick else 4
    db = Database.from_facts({"item": [(f"i{k}",) for k in range(n)]})

    def kernel(plan, engine):
        eng = IdlogEngine("pick(X) :- item[](X, 0).",
                          plan=plan, engine=engine)
        return eng.answers(db, "pick"), None
    return kernel


def _e12(quick):
    m = importlib.import_module("bench_e12_stable")
    from repro.core import IdlogEngine
    db = m.people_db(3 if quick else 4)

    def kernel(plan, engine):
        eng = IdlogEngine(m.IDLOG, plan=plan, engine=engine)
        return eng.answers(db, "man"), None
    return kernel


SCENARIOS = [
    ("bench_a1_seminaive", _a1),
    ("bench_a2_slicing", _a2),
    ("bench_a3_magic", _a3),
    ("bench_a4_incremental", _a4),
    ("bench_a5_topdown", _a5),
    ("bench_a6_aggregates", _a6),
    ("bench_a7_counting", _a7),
    ("bench_e1_idrelations", _e1),
    ("bench_e2_manwoman", _e2),
    ("bench_e3_inflationary", _e3),
    ("bench_e4_sampling_one", _e4),
    ("bench_e5_sampling_k", _e5),
    ("bench_e6_adornment", _e6),
    ("bench_e7_exists_vs_forall", _e7),
    ("bench_e8_group_limit", _e8),
    ("bench_e9_theorem2", _e9),
    ("bench_e10_theorem4", _e10),
    ("bench_e11_expressive", _e11),
    ("bench_e12_stable", _e12),
]


def run_kernel(kernel, plan, engine, repeats, replay=None):
    best = None
    answer = stats = None
    kwargs = {"replay": replay} if replay is not None else {}
    for _ in range(repeats):
        start = time.perf_counter()
        answer, stats = kernel(plan, engine, **kwargs)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    record = {"wall_s": round(best, 6), "answer_digest": digest(answer),
              "answer_size": len(answer) if hasattr(answer, "__len__")
              else None}
    if replay is not None:
        # The choice log pinned every ID-function decision, so this
        # digest is machine- and hash-seed-independent; compare.py
        # enforces it exactly instead of exempting the kernel.
        record["replay_pinned"] = True
    record.update(stats_dict(stats))
    return record


def capture_choice_log(kernel, name, quick):
    """One untimed recording pass; the kernel's choice log as JSONL-able
    data (None for kernels that materialize no ID-relations)."""
    from repro.core.choicelog import ChoiceLog
    engine, plan = PROFILED_MODE
    log = ChoiceLog(meta={"benchmark": name, "quick": quick,
                          "mode": f"{engine}/{plan}"})
    answer, _ = kernel(plan, engine, record=log)
    log.set_answers({pred: answer for pred in kernel.answer_preds})
    return log.to_jsonable()


def load_replays(path):
    """The embedded choice logs of a prior trajectory file, by kernel."""
    from repro.core.choicelog import ChoiceLog
    with open(path) as handle:
        report = json.load(handle)
    return {name: ChoiceLog.from_jsonable(data)
            for name, data in report.get("choice_logs", {}).items()}


def profile_kernel(kernel, plan, engine):
    """One untimed pass under an ambient tracer; the per-clause profile
    and the plan-quality block, or ``(None, None)`` for kernels whose
    code path never reaches the evaluator.  ``plan_quality`` is None
    when no clause ran with estimate capture (e.g. the kernel bypasses
    the batch executor)."""
    from repro.datalog.trace import TimingTracer, use_tracer
    tracer = TimingTracer()
    with use_tracer(tracer):
        kernel(plan, engine)
    if not tracer.profile.clauses:
        return None, None
    quality = tracer.profile.plan_quality()
    return (tracer.profile.as_dict(),
            quality if quality["clauses"] else None)


def memory_series(quick: bool) -> dict:
    """Bytes-per-tuple of the reference memory scenario (1200-row Zipf).

    Reports the ``emp`` relation's resident ``memory_stats`` plus the
    database-level interning figures.  The scenario matches the PR-7
    acceptance baseline: PR 5's tuple-store ``approx_bytes`` on the same
    1200-row database was 230417.
    """
    from repro.workloads import zipf_employees
    rows = 300 if quick else 1200
    db = zipf_employees(30, rows)
    emp = db.relation("emp").memory_stats()
    stats = db.stats()
    return {
        "scenario": f"zipf_employees(30, {rows})",
        "rows": emp["rows"],
        "approx_bytes": emp["approx_bytes"],
        "logical_bytes": emp["logical_bytes"],
        "bytes_per_tuple": emp["bytes_per_tuple"],
        "distinct_constants": emp["distinct_constants"],
        "interning_ratio": stats["interning_ratio"],
        "pool_constants": stats["pool_constants"],
        "pool_approx_bytes": stats["pool_approx_bytes"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="small input sizes and one repeat (CI smoke)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repeats per mode (default 3, 1 "
                             "with --quick)")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_pr10.json"),
                        help="output JSON path (default: repo root)")
    parser.add_argument("--only", default=None,
                        help="run only scenarios whose name contains this "
                             "substring")
    parser.add_argument("--replay-from", default=None, metavar="BENCH_JSON",
                        help="replay the choice logs embedded in a prior "
                             "trajectory file, pinning nondeterministic "
                             "kernels to the recorded ID choices")
    parser.add_argument("--choice-logs", default=None, metavar="DIR",
                        help="also dump each kernel's choice log as "
                             "DIR/<kernel>.choices.jsonl (CI artifact)")
    args = parser.parse_args(argv)
    repeats = args.repeats or (1 if args.quick else 3)
    replays = load_replays(args.replay_from) if args.replay_from else {}

    report = {"schema": 1, "quick": args.quick, "repeats": repeats,
              "modes": [f"{e}/{p}" for e, p in MODES],
              "benchmarks": {}, "speedup_batch_vs_interp": {},
              "choice_logs": {}, "memory": memory_series(args.quick)}
    disagreements = []

    for name, build in SCENARIOS:
        if args.only and args.only not in name:
            continue
        kernel = build(args.quick)
        # Kernels with an answer_preds marker thread ID-choice logs
        # through: timed passes replay a prior log when one was given,
        # and one extra untimed pass records this run's log so the
        # written trajectory can pin the next run in turn.
        choice_capable = hasattr(kernel, "answer_preds")
        replay = replays.get(name) if choice_capable else None
        records = {}
        for engine, plan in MODES:
            key = f"{engine}/{plan}"
            records[key] = run_kernel(kernel, plan, engine, repeats,
                                      replay=replay)
            pinned = " (replayed)" if replay is not None else ""
            print(f"{name:28s} {key:14s} "
                  f"{records[key]['wall_s'] * 1000:9.2f} ms  "
                  f"probes={records[key].get('probes', '-')}{pinned}",
                  flush=True)
        engine, plan = PROFILED_MODE
        profile, plan_quality = profile_kernel(kernel, plan, engine)
        if profile is not None:
            records[f"{engine}/{plan}"]["profile"] = profile
        if plan_quality is not None:
            records[f"{engine}/{plan}"]["plan_quality"] = plan_quality
        if choice_capable:
            if replay is not None:
                report["choice_logs"][name] = replays[name].to_jsonable()
            else:
                report["choice_logs"][name] = capture_choice_log(
                    kernel, name, args.quick)
        report["benchmarks"][name] = records

        for plan in ("greedy", "cost"):
            interp, batch = records[f"interp/{plan}"], records[f"batch/{plan}"]
            if interp["answer_digest"] != batch["answer_digest"]:
                disagreements.append((name, plan))
        interp_t = records["interp/greedy"]["wall_s"]
        batch_t = records["batch/greedy"]["wall_s"]
        report["speedup_batch_vs_interp"][name] = round(
            interp_t / batch_t, 2) if batch_t > 0 else None

    if not args.only:
        # The storage micro-benchmark (tuple-store vs columnar) rides in
        # the same trajectory file; skipped under --only since it is not
        # an engine kernel.
        import bench_storage
        report["storage"] = bench_storage.run(quick=args.quick)
        # The server load benchmark (concurrent clients over TCP, see
        # bench_server.py) records p50/p99 latency and throughput into
        # the same trajectory; compare.py gates its latencies and
        # requires zero errors.
        import bench_server
        report["server"] = bench_server.run(quick=args.quick)
        lat = report["server"]["latency_ms"]
        print(f"{'server load':28s} {report['server']['clients']} clients  "
              f"p50={lat['p50']}ms p99={lat['p99']}ms "
              f"errors={report['server']['errors']}", flush=True)

    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {out}")
    if args.choice_logs:
        from repro.core.choicelog import ChoiceLog
        log_dir = Path(args.choice_logs)
        log_dir.mkdir(parents=True, exist_ok=True)
        for name, data in report["choice_logs"].items():
            log_path = log_dir / f"{name}.choices.jsonl"
            ChoiceLog.from_jsonable(data).save(str(log_path))
            print(f"wrote {log_path}")
    for name, ratio in sorted(report["speedup_batch_vs_interp"].items()):
        print(f"  speedup (batch vs interp, greedy) {name:30s} {ratio}x")

    if disagreements:
        for name, plan in disagreements:
            print(f"ENGINE DISAGREEMENT: {name} under plan={plan}",
                  file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
