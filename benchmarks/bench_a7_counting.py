"""A7 — ablation: DRed vs counting maintenance on non-recursive views.

Both maintenance algorithms apply to non-recursive positive programs;
counting deletes with a count decrement (no re-derivation search), DRed
over-deletes and re-derives.  Measured: correctness agreement and probe
counts for deletions with alternative support — the case DRed pays for.
"""

from repro.datalog.counting import CountingEngine
from repro.datalog.database import Database
from repro.datalog.engine import DatalogEngine
from repro.datalog.incremental import IncrementalEngine

HOP2 = "hop2(X, Z) :- edge(X, Y), edge(Y, Z)."


def dense_db(n):
    """A bipartite-ish layer graph: many alternative 2-paths."""
    edges = [(f"s{i}", f"m{j}") for i in range(n) for j in range(3)]
    edges += [(f"m{j}", f"t{i}") for i in range(n) for j in range(3)]
    return Database.from_facts({"edge": edges})


def test_a7_agreement(table, benchmark):
    db = dense_db(4)
    counting = CountingEngine(HOP2)
    counting.start(db)
    dred = IncrementalEngine(HOP2)
    dred.start(db)
    updates = [("delete", ("s0", "m0")), ("delete", ("m1", "t2")),
               ("add", ("s0", "m0")), ("delete", ("s1", "m2"))]
    for op, edge in updates:
        if op == "add":
            counting.add_fact("edge", edge)
            dred.add_fact("edge", edge)
        else:
            counting.delete_fact("edge", edge)
            dred.delete_fact("edge", edge)
        assert counting.relation("hop2") == dred.relation("hop2")
    table("A7: counting == DRed through a mixed update script",
          ["updates applied", "hop2 tuples"],
          [(len(updates), len(counting.relation("hop2")))])
    benchmark(lambda: CountingEngine(HOP2).start(db))


def test_a7_deletion_with_alternatives(table, benchmark):
    """Every hop2 tuple has 3 derivations; deleting one edge never kills
    a tuple — counting just decrements, DRed over-deletes and re-derives."""
    rows = []
    for n in (4, 8, 16):
        db = dense_db(n)

        counting = CountingEngine(HOP2)
        counting.start(db)
        before = counting.stats.probes
        counting.delete_fact("edge", ("s0", "m0"))
        counting_probes = counting.stats.probes - before

        dred = IncrementalEngine(HOP2)
        dred.start(db)
        before = dred.stats.probes
        dred.delete_fact("edge", ("s0", "m0"))
        dred_probes = dred.stats.probes - before

        assert counting.relation("hop2") == dred.relation("hop2")
        rows.append((n, counting_probes, dred_probes))
    table("A7: probes to absorb one deletion (alternative support)",
          ["n", "counting", "DRed"], rows)
    db = dense_db(16)
    engine = CountingEngine(HOP2)
    engine.start(db)
    state = {"k": 0}

    def delete_insert():
        engine.delete_fact("edge", ("s0", "m0"))
        engine.add_fact("edge", ("s0", "m0"))

    benchmark.pedantic(delete_insert, rounds=20, iterations=1)


def test_a7_dred_baseline(benchmark):
    db = dense_db(16)
    engine = IncrementalEngine(HOP2)
    engine.start(db)

    def delete_insert():
        engine.delete_fact("edge", ("s0", "m0"))
        engine.add_fact("edge", ("s0", "m0"))

    benchmark.pedantic(delete_insert, rounds=20, iterations=1)
