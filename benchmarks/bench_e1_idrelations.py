"""E1 — Example 1 (§2.1): ID-relations and their counts.

Regenerates: the two ID-relations of r = {(a,c),(a,d),(b,c)} on {1}, and a
sweep of the ID-function count ∏ k! (and its prefix-limited reduction
∏ P(k, limit)) over block-size configurations.
"""

import math

from repro.core.idrelations import (count_id_functions,
                                    enumerate_id_functions, id_relations_of)
from repro.datalog.database import Relation

R_EXAMPLE1 = Relation(2, tuples=[("a", "c"), ("a", "d"), ("b", "c")])
G1 = frozenset({1})


def test_e1_example1_two_id_relations(benchmark, table):
    """The paper lists both ID-relations of r on {1} explicitly."""
    found = benchmark(
        lambda: {rel.frozen() for rel in id_relations_of(R_EXAMPLE1, G1)})
    expected = {
        frozenset({("a", "c", 1), ("a", "d", 0), ("b", "c", 0)}),
        frozenset({("a", "c", 0), ("a", "d", 1), ("b", "c", 0)})}
    assert found == expected
    table("E1: ID-relations of Example 1's r on {1}",
          ["id-relation"],
          [(sorted(rel),) for rel in sorted(found, key=sorted)])


def test_e1_count_formula_sweep(benchmark, table):
    """∏ k! over blocks, against prefix-limited counts."""
    rows = []
    for groups, per_group in [(1, 3), (2, 3), (3, 3), (2, 5), (4, 2)]:
        rel = Relation(2, tuples=[
            (f"g{g}", f"v{g}_{i}")
            for g in range(groups) for i in range(per_group)])
        full = count_id_functions(rel, G1)
        limited1 = count_id_functions(rel, G1, limit=1)
        limited2 = count_id_functions(rel, G1, limit=2)
        assert full == math.factorial(per_group) ** groups
        assert limited1 == per_group ** groups
        rows.append((f"{groups}x{per_group}", full, limited2, limited1))
    table("E1: ID-function counts (blocks x size)",
          ["blocks", "full = prod k!", "limit 2", "limit 1"], rows)

    rel = Relation(2, tuples=[
        (f"g{g}", f"v{g}_{i}") for g in range(3) for i in range(3)])
    count = benchmark(
        lambda: sum(1 for _ in enumerate_id_functions(rel, G1)))
    assert count == 6 ** 3
