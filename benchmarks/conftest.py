"""Shared helpers for the experiment benchmarks.

Every ``bench_e*.py`` module regenerates one experiment from the paper's
examples/claims (see DESIGN.md §3 and EXPERIMENTS.md).  The modules both
*assert* the qualitative result (who wins, what the answer set is) and
*time* the relevant kernels with pytest-benchmark; run them with::

    pytest benchmarks/ --benchmark-only

Add ``-s`` to see the printed result tables that mirror the paper's
narrative claims.
"""

from __future__ import annotations

import pytest

from repro.datalog.database import Database


def employees_db(per_dept: int, departments: int) -> Database:
    """An emp(Name, Dept) relation with ``per_dept`` employees per
    department."""
    rows = [(f"e{d}_{i}", f"dept{d}")
            for d in range(departments) for i in range(per_dept)]
    return Database.from_facts({"emp": rows})


def print_table(title: str, headers: list[str],
                rows: list[tuple]) -> None:
    """Print a small aligned table (visible with pytest -s)."""
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows))
              for i, h in enumerate(headers)] if rows else \
             [len(str(h)) for h in headers]
    print(f"\n--- {title}")
    print("  " + "  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  " + "  ".join(str(v).ljust(w)
                               for v, w in zip(row, widths)))


@pytest.fixture
def table():
    """The table printer as a fixture (keeps bench modules terse)."""
    return print_table
