"""E8 — §4 / footnotes 6–7: the group-limit (tid-bound) optimization.

Regenerates: "the condition N < 2 can be used to generate an optimization
information which ensures that only two tuples of the relation emp will be
used in the evaluation" — measured as ID-tuples materialized and join
probes, with and without the optimization, over growing databases; plus
the enumeration-space reduction ∏ k! → ∏ P(k, limit).
"""

from conftest import employees_db

from repro.core import IdlogEngine

SELECT_TWO = "select_two_emp(N) :- emp[2](N, D, T), T < 2."
SELECT_ONE = "all_depts(D) :- emp[2](N, D, 0)."


def test_e8_materialization_reduction(table, benchmark):
    limited = IdlogEngine(SELECT_TWO, use_group_limits=True)
    full = IdlogEngine(SELECT_TWO, use_group_limits=False)
    rows = []
    for per_dept in (5, 20, 80):
        db = employees_db(per_dept, departments=4)
        r_lim = limited.run(db)
        r_full = full.run(db)
        assert r_lim.tuples("select_two_emp") == \
            r_full.tuples("select_two_emp")
        assert r_lim.stats.id_tuples == 2 * 4       # two per department
        assert r_full.stats.id_tuples == per_dept * 4
        rows.append((per_dept * 4,
                     r_full.stats.id_tuples, r_lim.stats.id_tuples,
                     r_full.stats.probes, r_lim.stats.probes))
    table("E8: tid<2 materializes 2 tuples/dept (id tuples | probes)",
          ["|emp|", "id full", "id limited",
           "probes full", "probes limited"], rows)
    db = employees_db(80, 4)
    benchmark(lambda: limited.run(db))


def test_e8_unoptimized_baseline(benchmark):
    engine = IdlogEngine(SELECT_TWO, use_group_limits=False)
    db = employees_db(80, 4)
    result = benchmark(lambda: engine.run(db))
    assert len(result.tuples("select_two_emp")) == 8


def test_e8_enumeration_space(table, benchmark):
    """count_models drops from prod k! to prod P(k, bound)."""
    rows = []
    for per_dept in (2, 3, 4):
        db = employees_db(per_dept, departments=2)
        limited = IdlogEngine(SELECT_ONE, use_group_limits=True)
        full = IdlogEngine(SELECT_ONE, use_group_limits=False)
        n_limited = limited.count_models(db)
        n_full = full.count_models(db)
        assert n_limited == per_dept ** 2          # P(k,1)^2
        assert n_limited <= n_full
        rows.append((per_dept, n_full, n_limited))
    table("E8: enumeration leaves, tid=0 (∏k! vs ∏P(k,1))",
          ["emp per dept", "without bound", "with bound"], rows)
    db = employees_db(4, 2)
    engine = IdlogEngine(SELECT_ONE, use_group_limits=True)
    benchmark(lambda: engine.count_models(db))


def test_e8_all_depts_intro_optimization(table, benchmark):
    """§1: computing all_depts needs one tuple per department."""
    engine = IdlogEngine(SELECT_ONE)
    rows = []
    for per_dept in (10, 100, 500):
        db = employees_db(per_dept, departments=5)
        result = engine.run(db)
        assert result.tuples("all_depts") == {
            (f"dept{d}",) for d in range(5)}
        assert result.stats.id_tuples == 5
        rows.append((per_dept * 5, result.stats.id_tuples,
                     result.stats.probes))
    table("E8: all_depts touches one tuple per department",
          ["|emp|", "id tuples", "probes"], rows)
    db = employees_db(500, 5)
    benchmark(lambda: engine.run(db))
