"""E3 — Example 3 (§3.2.1): DL under the two inflationary semantics.

Regenerates: for man(X) :- person(X), ¬woman(X) (and symmetric), the
non-deterministic inflationary semantics yields man(r) = {∅,{a},{b},{a,b}}
while the deterministic semantics yields man(r) = {(a),(b)} — the paper's
exact values — plus a state-space growth sweep.
"""

from repro.datalog.database import Database
from repro.inflationary import DLEngine

EX3 = """
    man(X) :- person(X), not woman(X).
    woman(X) :- person(X), not man(X).
"""

PEOPLE = Database.from_facts({"person": [("a",), ("b",)]})


def test_e3_nondeterministic_semantics(benchmark, table):
    engine = DLEngine(EX3)
    answers = benchmark(lambda: engine.answers(PEOPLE, "man"))
    expected = {frozenset(), frozenset({("a",)}), frozenset({("b",)}),
                frozenset({("a",), ("b",)})}
    assert answers == expected
    assert engine.answers(PEOPLE, "woman") == expected
    table("E3: Example 3 answer sets",
          ["semantics", "man(r)"],
          [("non-deterministic", sorted(sorted(a) for a in answers))])


def test_e3_deterministic_semantics(benchmark, table):
    engine = DLEngine(EX3)
    state = benchmark(lambda: engine.deterministic_fixpoint(PEOPLE))
    man = engine.project(state, "man")
    woman = engine.project(state, "woman")
    assert man == {("a",), ("b",)}
    assert woman == {("a",), ("b",)}
    table("E3: deterministic inflationary fixpoint",
          ["relation", "value"],
          [("man", sorted(man)), ("woman", sorted(woman))])


def test_e3_answer_growth(benchmark, table):
    """2^n answers: each person independently classified."""
    rows = []
    for n in (1, 2, 3):
        db = Database.from_facts({"person": [(f"p{i}",) for i in range(n)]})
        answers = DLEngine(EX3).answers(db, "man")
        assert len(answers) == 2 ** n
        rows.append((n, len(answers)))
    table("E3: |man(r)| under nondet inflationary semantics",
          ["n", "answers = 2^n"], rows)
    db = Database.from_facts({"person": [(f"p{i}",) for i in range(3)]})
    benchmark(lambda: DLEngine(EX3).answers(db, "man"))


def test_e3_agreement_with_idlog(benchmark):
    """The DL query coincides with IDLOG's Example 2 query (E2 <-> E3)."""
    from repro.core import IdlogEngine
    idlog = IdlogEngine("""
        sex_guess(X, male) :- person(X).
        sex_guess(X, female) :- person(X).
        man(X) :- sex_guess[1](X, male, 1).
    """)
    dl_answers = DLEngine(EX3).answers(PEOPLE, "man")
    idlog_answers = benchmark(lambda: idlog.answers(PEOPLE, "man"))
    assert dl_answers == idlog_answers
