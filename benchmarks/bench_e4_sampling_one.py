"""E4 — Example 4 (§3.3): one employee per department.

Regenerates: the DATALOG^C program and the IDLOG program define the same
query (answer-set equality), with a scaling sweep of sampling cost for
both implementations.
"""

from conftest import employees_db

from repro.choice import ChoiceEngine
from repro.core import IdlogEngine

CHOICE = "select_emp(N) :- emp(N, D), choice((D), (N))."
IDLOG = "select_emp(N) :- emp[2](N, D, 0)."


def test_e4_answer_set_equality(benchmark, table):
    db = employees_db(per_dept=3, departments=2)
    choice_engine = ChoiceEngine(CHOICE)
    idlog_engine = IdlogEngine(IDLOG)
    choice_answers = choice_engine.answers(db, "select_emp")
    idlog_answers = benchmark(lambda: idlog_engine.answers(db, "select_emp"))
    assert choice_answers == idlog_answers
    assert len(idlog_answers) == 3 ** 2  # one of 3 per department
    table("E4: one-per-department answer sets",
          ["language", "distinct selections"],
          [("DATALOG^C", len(choice_answers)),
           ("IDLOG", len(idlog_answers))])


def test_e4_sample_correctness_sweep(table, benchmark):
    rows = []
    for per_dept, departments in [(5, 2), (10, 5), (20, 10)]:
        db = employees_db(per_dept, departments)
        idlog_sample = IdlogEngine(IDLOG).one(db, seed=1).tuples("select_emp")
        choice_sample = ChoiceEngine(CHOICE).one(db, seed=1) \
            .tuples("select_emp")
        assert len(idlog_sample) == departments
        assert len(choice_sample) == departments
        rows.append((f"{per_dept}x{departments}",
                     len(idlog_sample), len(choice_sample)))
    table("E4: sample sizes (= #departments)",
          ["emp per dept x depts", "IDLOG", "DATALOG^C"], rows)
    db = employees_db(20, 10)
    benchmark(lambda: IdlogEngine(IDLOG).one(db, seed=1))


def test_e4_idlog_sampling_throughput(benchmark):
    db = employees_db(per_dept=50, departments=20)
    engine = IdlogEngine(IDLOG)
    result = benchmark(lambda: engine.one(db, seed=7))
    assert len(result.tuples("select_emp")) == 20


def test_e4_choice_sampling_throughput(benchmark):
    db = employees_db(per_dept=50, departments=20)
    engine = ChoiceEngine(CHOICE)
    result = benchmark(lambda: engine.one(db, seed=7))
    assert len(result.tuples("select_emp")) == 20
