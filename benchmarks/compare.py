#!/usr/bin/env python
"""Compare two benchmark trajectory files for perf/answer regressions.

``run_all.py`` writes one ``BENCH_*.json`` per PR; this comparator turns
the committed sequence into a regression gate::

    python benchmarks/compare.py BENCH_pr3.json BENCH_pr4.json

For every kernel x mode present in the baseline it checks, against the
candidate:

* **answers** — ``answer_digest`` must match exactly.  Kernels in
  ``NONDETERMINISTIC`` get hard equality too whenever the candidate
  record is ``replay_pinned`` (the candidate run replayed the baseline's
  ID-choice log via ``run_all.py --replay-from``, making its digest
  deterministic).  Only when no choice log was replayed does the
  documented fallback apply: the digest is exempt (seeded sampling
  digests depend on set-iteration order) and a note flags the fallback;
  ``answer_size`` is still enforced.  ``--strict-digests`` removes the
  fallback entirely.
* **counters** — ``probes``, ``iterations``, ``derived``, ``firings``,
  ``pipelines_compiled``, ``pipelines_reused`` and ``answer_size`` must
  be exactly equal.  These are set-iteration-order independent, so they
  are stable across machines and hash seeds; any drift is a real
  behavior change.  An *intended* change (e.g. a PR that makes a kernel
  start compiling pipelines it previously could not) is accepted
  explicitly with ``--accept KERNEL:COUNTER``, which downgrades that
  counter's drift to a note.
* **wall time** — ``candidate <= baseline * tolerance + slack``.
  Tolerance defaults to 2.0 on the theory that same-machine noise stays
  well under that; CI (cross-machine) passes a larger ``--wall-tolerance``.
* **coverage** — a kernel or mode present in the baseline but missing
  from the candidate is a regression; extras in the candidate are noted.
* **memory** — when both reports carry a ``memory`` section for the same
  scenario, the candidate's resident ``bytes_per_tuple`` may exceed the
  baseline's by at most ``--memory-tolerance`` (default 10%).  Unlike
  wall time this is machine-independent, so the ceiling is tight.
* **plan quality** — for every kernel/mode record where both sides
  carry a ``plan_quality`` block (the profiled ``batch/greedy`` pass),
  the candidate's median q-error may exceed the baseline's by at most
  ``--q-error-tolerance`` (default 2.0x).  The q-error compares the
  planner's cardinality estimates against the executor's actuals, so a
  worsened median means the cost model drifted from reality — a planner
  or statistics regression even when wall time hides it.
* **server** — when the candidate carries a ``server`` section (PR 8's
  concurrent-client load benchmark), its error count must be zero, its
  prepared-program pipeline reuse must be verified, and at least 8
  concurrent clients must have run; when the baseline ran the *same*
  client load, the candidate's p50/p99 round-trip latencies are gated by
  the wall tolerance (slack interpreted in milliseconds).

Comparing a ``--quick`` file against a full-size one is refused (exit 2):
the counters measure different inputs.  Exit 0 = clean, 1 = regression.
"""

from __future__ import annotations

import argparse
import json
import sys

#: Counter fields that must be exactly equal between trajectories.
HARD_KEYS = ("answer_size", "probes", "iterations", "derived", "firings",
             "pipelines_compiled", "pipelines_reused")

#: Kernels whose answer_digest may legitimately differ between versions
#: *when no choice log was replayed*: seeded one() sampling digests
#: depend on set-iteration order, which is not part of the compatibility
#: contract (the *size* still is).  A candidate produced with
#: ``run_all.py --replay-from`` marks these records ``replay_pinned``,
#: which upgrades them to hard digest equality.
NONDETERMINISTIC = frozenset({"bench_e4_sampling_one"})


def load(path: str) -> dict:
    with open(path) as handle:
        return json.load(handle)


def compare_record(kernel: str, mode: str, base: dict, cand: dict,
                   wall_tolerance: float, wall_slack: float,
                   strict_digests: bool,
                   accepted: frozenset = frozenset(),
                   notes: list | None = None) -> list[str]:
    """Problems (possibly empty) for one kernel/mode record pair."""
    problems = []
    where = f"{kernel} [{mode}]"
    digest_exempt = (kernel in NONDETERMINISTIC and not strict_digests
                     and not cand.get("replay_pinned"))
    if base.get("answer_digest") != cand.get("answer_digest") \
            and not digest_exempt:
        pinned = " despite replaying the baseline's choice log" \
            if cand.get("replay_pinned") else ""
        problems.append(
            f"{where}: answer_digest {base.get('answer_digest')} -> "
            f"{cand.get('answer_digest')} (answers changed{pinned})")
    for key in HARD_KEYS:
        if key in base and base[key] is not None:
            if cand.get(key) != base[key]:
                if (kernel, key) in accepted:
                    if notes is not None:
                        notes.append(
                            f"{where}: {key} {base[key]} -> "
                            f"{cand.get(key)} (accepted via --accept)")
                    continue
                problems.append(
                    f"{where}: {key} {base[key]} -> {cand.get(key)} "
                    f"(must be exactly equal)")
    base_wall, cand_wall = base.get("wall_s"), cand.get("wall_s")
    if base_wall is not None and cand_wall is not None:
        limit = base_wall * wall_tolerance + wall_slack
        if cand_wall > limit:
            problems.append(
                f"{where}: wall_s {base_wall} -> {cand_wall} "
                f"(limit {limit:.6f} = {wall_tolerance}x + "
                f"{wall_slack}s slack)")
    return problems


def compare_memory(baseline: dict, candidate: dict,
                   memory_tolerance: float) -> tuple[list[str], list[str]]:
    """Bytes-per-tuple ceiling for the ``memory`` report sections.

    Older trajectory files (pre-PR 7) have no ``memory`` section; the
    gate only engages when both sides measured the same scenario.
    """
    problems: list[str] = []
    notes: list[str] = []
    base, cand = baseline.get("memory"), candidate.get("memory")
    if not base or not cand:
        if base and not cand:
            problems.append("memory: baseline has a memory section but "
                            "candidate does not")
        return problems, notes
    if base.get("scenario") != cand.get("scenario"):
        notes.append(f"memory: scenario changed {base.get('scenario')} -> "
                     f"{cand.get('scenario')}; ceiling not applied")
        return problems, notes
    base_bpt, cand_bpt = base.get("bytes_per_tuple"), \
        cand.get("bytes_per_tuple")
    if base_bpt and cand_bpt:
        limit = base_bpt * (1.0 + memory_tolerance)
        if cand_bpt > limit:
            problems.append(
                f"memory: bytes_per_tuple {base_bpt} -> {cand_bpt} "
                f"(limit {limit:.2f} = +{memory_tolerance:.0%})")
        else:
            notes.append(f"memory: bytes_per_tuple {base_bpt} -> "
                         f"{cand_bpt} (limit {limit:.2f})")
    return problems, notes


def compare_plan_quality(baseline: dict, candidate: dict,
                         q_error_tolerance: float
                         ) -> tuple[list[str], list[str]]:
    """Median q-error ceiling for the per-kernel ``plan_quality`` blocks.

    Trajectory files before PR 10 carry no ``plan_quality`` blocks; the
    gate engages per kernel/mode only when the baseline measured one.
    A baseline block with no candidate counterpart is a coverage
    regression (estimate capture silently lost), not a tolerated gap.
    """
    problems: list[str] = []
    notes: list[str] = []
    gated = 0
    base_benches = baseline.get("benchmarks", {})
    cand_benches = candidate.get("benchmarks", {})
    for kernel in sorted(base_benches):
        cand_modes = cand_benches.get(kernel, {})
        for mode, base_rec in sorted(base_benches[kernel].items()):
            base_q = (base_rec or {}).get("plan_quality")
            if not base_q:
                continue
            where = f"{kernel} [{mode}]"
            cand_q = (cand_modes.get(mode) or {}).get("plan_quality")
            if not cand_q:
                if kernel in cand_benches and mode in cand_modes:
                    problems.append(
                        f"{where}: baseline has a plan_quality block but "
                        "candidate does not (estimate capture lost)")
                continue  # missing kernel/mode already reported elsewhere
            base_med = base_q.get("median_q_error")
            cand_med = cand_q.get("median_q_error")
            if base_med is None or cand_med is None:
                continue
            gated += 1
            limit = base_med * q_error_tolerance
            if cand_med > limit:
                problems.append(
                    f"{where}: median q-error {base_med} -> {cand_med} "
                    f"(limit {limit:.3f} = {q_error_tolerance}x) — "
                    "cardinality estimates drifted from executed actuals")
    if gated:
        notes.append(f"plan quality: median q-error gated on {gated} "
                     f"record(s) at {q_error_tolerance}x")
    return problems, notes


def compare_server(baseline: dict, candidate: dict,
                   wall_tolerance: float,
                   wall_slack: float) -> tuple[list[str], list[str]]:
    """Latency/error gate for the ``server`` report sections.

    Trajectory files before PR 8 have no ``server`` section; the
    latency ceiling only engages when both sides ran the same client
    load.  A candidate section with errors, an unverified
    prepared-program reuse proof, or fewer than 8 clients fails on its
    own, baseline or not — those are the acceptance invariants, not
    perf comparisons.
    """
    problems: list[str] = []
    notes: list[str] = []
    cand = candidate.get("server")
    base = baseline.get("server")
    if base and not cand:
        problems.append("server: baseline has a server section but "
                        "candidate does not")
    if not cand:
        return problems, notes
    if cand.get("errors"):
        problems.append(
            f"server: {cand['errors']} client error(s) "
            f"(e.g. {'; '.join(cand.get('error_samples', [])[:2])})")
    if not cand.get("prepared_reuse_verified"):
        problems.append("server: prepared-program pipeline reuse not "
                        "verified (pipelines_compiled != 0 on a "
                        "prepared re-run)")
    if (cand.get("clients") or 0) < 8:
        problems.append(f"server: only {cand.get('clients')} concurrent "
                        "client(s); the floor is 8")
    if not base:
        notes.append("server: new section in candidate (no baseline to "
                     "gate latency against)")
        return problems, notes
    if (base.get("clients"), base.get("requests_per_client")) != \
            (cand.get("clients"), cand.get("requests_per_client")):
        notes.append("server: client load changed "
                     f"{base.get('clients')}x"
                     f"{base.get('requests_per_client')} -> "
                     f"{cand.get('clients')}x"
                     f"{cand.get('requests_per_client')}; latency "
                     "ceiling not applied")
        return problems, notes
    for quantile in ("p50", "p99"):
        base_ms = (base.get("latency_ms") or {}).get(quantile)
        cand_ms = (cand.get("latency_ms") or {}).get(quantile)
        if base_ms is None or cand_ms is None:
            continue
        limit = base_ms * wall_tolerance + wall_slack * 1000.0
        if cand_ms > limit:
            problems.append(
                f"server: latency {quantile} {base_ms}ms -> {cand_ms}ms "
                f"(limit {limit:.1f}ms = {wall_tolerance}x + "
                f"{wall_slack * 1000:.0f}ms slack)")
        else:
            notes.append(f"server: latency {quantile} {base_ms}ms -> "
                         f"{cand_ms}ms (limit {limit:.1f}ms)")
    return problems, notes


def compare(baseline: dict, candidate: dict,
            wall_tolerance: float = 2.0, wall_slack: float = 0.05,
            strict_digests: bool = False,
            memory_tolerance: float = 0.10,
            q_error_tolerance: float = 2.0,
            accepted: frozenset = frozenset()
            ) -> tuple[list[str], list[str]]:
    """Returns ``(problems, notes)`` for two loaded trajectory reports."""
    problems, notes = compare_memory(baseline, candidate, memory_tolerance)
    server_problems, server_notes = compare_server(
        baseline, candidate, wall_tolerance, wall_slack)
    problems.extend(server_problems)
    notes.extend(server_notes)
    quality_problems, quality_notes = compare_plan_quality(
        baseline, candidate, q_error_tolerance)
    problems.extend(quality_problems)
    notes.extend(quality_notes)
    base_benches = baseline.get("benchmarks", {})
    cand_benches = candidate.get("benchmarks", {})
    for kernel in sorted(base_benches):
        if kernel not in cand_benches:
            problems.append(f"{kernel}: present in baseline but missing "
                            "from candidate")
            continue
        base_modes = base_benches[kernel]
        cand_modes = cand_benches[kernel]
        for mode in sorted(base_modes):
            if mode not in cand_modes:
                problems.append(f"{kernel}: mode {mode} missing from "
                                "candidate")
                continue
            problems.extend(compare_record(
                kernel, mode, base_modes[mode], cand_modes[mode],
                wall_tolerance, wall_slack, strict_digests,
                accepted=accepted, notes=notes))
        for mode in sorted(set(cand_modes) - set(base_modes)):
            notes.append(f"{kernel}: new mode {mode} in candidate")
        if kernel in NONDETERMINISTIC and not strict_digests \
                and not any(cand_modes[m].get("replay_pinned")
                            for m in cand_modes):
            notes.append(
                f"{kernel}: digest exemption fallback in effect — "
                "candidate did not replay a choice log (re-run with "
                "run_all.py --replay-from to pin it)")
    for kernel in sorted(set(cand_benches) - set(base_benches)):
        notes.append(f"{kernel}: new kernel in candidate")
    return problems, notes


def main(argv=None, out=None) -> int:
    out = out or sys.stdout
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("baseline", help="baseline BENCH_*.json")
    parser.add_argument("candidate", help="candidate BENCH_*.json")
    parser.add_argument("--wall-tolerance", type=float, default=2.0,
                        help="candidate wall time may be at most this "
                             "multiple of the baseline (default 2.0; use "
                             "a larger value across machines)")
    parser.add_argument("--wall-slack", type=float, default=0.05,
                        help="absolute seconds added to every wall limit, "
                             "absorbing timer noise on sub-millisecond "
                             "kernels (default 0.05)")
    parser.add_argument("--strict-digests", action="store_true",
                        help="enforce answer_digest equality even for the "
                             "NONDETERMINISTIC kernels")
    parser.add_argument("--memory-tolerance", type=float, default=0.10,
                        help="allowed relative bytes_per_tuple growth in "
                             "the memory section (default 0.10 = 10%%)")
    parser.add_argument("--q-error-tolerance", type=float, default=2.0,
                        help="candidate median q-error may be at most "
                             "this multiple of the baseline's per "
                             "plan_quality block (default 2.0)")
    parser.add_argument("--accept", action="append", default=[],
                        metavar="KERNEL:COUNTER",
                        help="accept an intended counter change for one "
                             "kernel (all modes), e.g. "
                             "'bench_a4_incremental:pipelines_compiled'; "
                             "reported as a note instead of a problem. "
                             "Repeatable.")
    args = parser.parse_args(argv)
    accepted = frozenset(
        tuple(item.split(":", 1)) for item in args.accept)
    if any(len(pair) != 2 for pair in accepted):
        print("error: --accept takes KERNEL:COUNTER", file=sys.stderr)
        return 2

    baseline = load(args.baseline)
    candidate = load(args.candidate)
    if bool(baseline.get("quick")) != bool(candidate.get("quick")):
        print(f"error: cannot compare quick={baseline.get('quick')} "
              f"baseline against quick={candidate.get('quick')} candidate "
              "(different input sizes)", file=sys.stderr)
        return 2

    problems, notes = compare(baseline, candidate,
                              wall_tolerance=args.wall_tolerance,
                              wall_slack=args.wall_slack,
                              strict_digests=args.strict_digests,
                              memory_tolerance=args.memory_tolerance,
                              q_error_tolerance=args.q_error_tolerance,
                              accepted=accepted)
    kernels = len(baseline.get("benchmarks", {}))
    for note in notes:
        print(f"note: {note}", file=out)
    if problems:
        print(f"REGRESSION: {len(problems)} problem(s) comparing "
              f"{args.candidate} against {args.baseline}:", file=out)
        for problem in problems:
            print(f"  {problem}", file=out)
        return 1
    print(f"ok: {args.candidate} matches {args.baseline} "
          f"({kernels} kernel(s), wall tolerance "
          f"{args.wall_tolerance}x + {args.wall_slack}s)", file=out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
