"""E12 — §3.2 overview: stable-model queries reproduced by IDLOG.

Regenerates the paper's claim that "every query defined by a non-stratified
logic program based on stable model semantics can also be defined by a
stratified IDLOG program": for the canonical choice program the stable
answer set equals the IDLOG Example 2 answer set on every tested database;
plus the cost asymmetry (guess-and-check stable enumeration vs stratified
IDLOG evaluation).
"""

from repro.core import IdlogEngine
from repro.datalog.database import Database
from repro.stable import StableEngine

NORMAL = """
    man(X) :- person(X), not woman(X).
    woman(X) :- person(X), not man(X).
"""

IDLOG = """
    sex_guess(X, male) :- person(X).
    sex_guess(X, female) :- person(X).
    man(X) :- sex_guess[1](X, male, 1).
    woman(X) :- sex_guess[1](X, female, 1).
"""


def people_db(n: int) -> Database:
    return Database.from_facts({"person": [(f"p{i}",) for i in range(n)]})


def test_e12_stable_equals_idlog(benchmark, table):
    stable = StableEngine(NORMAL)
    idlog = IdlogEngine(IDLOG)
    rows = []
    for n in (1, 2, 3):
        db = people_db(n)
        stable_answers = stable.answers(db, "man")
        idlog_answers = idlog.answers(db, "man")
        assert stable_answers == idlog_answers
        assert len(stable_answers) == 2 ** n
        rows.append((n, len(stable_answers)))
    table("E12: stable == IDLOG on the choice program",
          ["n", "answers = 2^n"], rows)
    db = people_db(3)
    benchmark(lambda: idlog.answers(db, "man"))


def test_e12_stable_enumeration_cost(benchmark):
    """The stable side: guess-and-check over 2^(2n) candidates."""
    stable = StableEngine(NORMAL)
    db = people_db(3)
    answers = benchmark(lambda: stable.answers(db, "man"))
    assert len(answers) == 8


def test_e12_win_move_in_idlog(benchmark, table):
    """win/move on an acyclic graph is stratifiable: IDLOG evaluates it
    directly and agrees with the unique stable model."""
    moves = [("a", "b"), ("b", "c"), ("c", "d")]
    db = Database.from_facts({"move": moves})
    stable = StableEngine("win(X) :- move(X, Y), not win(Y).")
    (stable_win,) = stable.answers(db, "win")

    # On an acyclic move graph the game is determined; compute it with a
    # stratified unfolding over distance-to-sink layers (depth <= 3 here).
    layered = IdlogEngine("""
        lose0(X) :- move(Y, X), not has_move(X).
        has_move(X) :- move(X, Y).
        win1(X) :- move(X, Y), lose0(Y).
        lose2(X) :- move(Y, X), has_move(X), not win1(X).
        win3(X) :- move(X, Y), lose2(Y).
        win(X) :- win1(X).
        win(X) :- win3(X).
    """)
    idlog_win = layered.query(db, "win")
    assert idlog_win == stable_win
    table("E12: win/move, stable vs stratified layering",
          ["method", "win"],
          [("stable models", sorted(stable_win)),
           ("stratified IDLOG", sorted(idlog_win))])
    benchmark(lambda: layered.query(db, "win"))
