"""E7 — Example 7 (§4): ∀-existential vs ∃-existential arguments diverge.

The paper's program P::

    [1] q1 :- x(c).      [2] q2 :- x(a).
    [3] x(Y) :- p(Y).
    [4] p(b) :- y(X).    [5] p(c) :- y(X).

q1 is TRUE iff y is non-empty; q2 is always FALSE.  The argument position
of Y in clause [3] is:

* ∀-existential w.r.t. q1 (the Definition 1 rewrite P1 — where the
  replaced variable ranges over the whole domain, realized through the
  domain-closure predicate ``udom`` of the paper's database programs —
  preserves q1) but NOT ∃-existential w.r.t. q1 (the ID rewrite P2 can
  return FALSE on non-empty inputs);
* ∃-existential w.r.t. q2 (P2 keeps q2 constantly FALSE) but NOT
  ∀-existential w.r.t. q2 (q2 of P1 is TRUE on non-empty inputs).

This bench regenerates the full truth table.
"""

from repro.core import IdlogEngine
from repro.datalog.database import Database

P = """
    q1() :- x(c).
    q2() :- x(a).
    x(Y) :- p(Y).
    p(b) :- y(X).
    p(c) :- y(X).
"""

# Definition 1 rewrite: p's column is projected to pp(); the variable the
# clause [3] head loses ranges over the domain-closure relation udom.
P1 = """
    q1() :- x(c).
    q2() :- x(a).
    x(Yp) :- pp(), udom(Yp).
    pp() :- p(Y).
    p(b) :- y(X).
    p(c) :- y(X).
"""

# Definition 2 rewrite: one arbitrary tuple of p via an ID-literal.
P2 = """
    q1() :- x(c).
    q2() :- x(a).
    x(Y) :- p[](Y, 0).
    p(b) :- y(X).
    p(c) :- y(X).
"""

UDOM = ["a", "b", "c", "w"]

TRUE = frozenset({()})
FALSE = frozenset()


def db_for(y_nonempty: bool) -> Database:
    facts = {"udom": [(d,) for d in UDOM]}
    if y_nonempty:
        facts["y"] = [("w",)]
    return Database.from_facts(facts, udomain=UDOM)


def answer_sets(source: str, pred: str) -> dict[bool, frozenset]:
    return {y: IdlogEngine(source).answers(db_for(y), pred)
            for y in (False, True)}


def _fmt(answers) -> str:
    names = sorted({"TRUE" if a else "FALSE" for a in answers})
    return "{" + ",".join(names) + "}"


def test_e7_q1_forall_but_not_exists(benchmark, table):
    p_ans = answer_sets(P, "q1")
    p1_ans = answer_sets(P1, "q1")
    p2_ans = benchmark(lambda: answer_sets(P2, "q1"))

    # P: q1 TRUE iff y non-empty.
    assert p_ans == {False: {FALSE}, True: {TRUE}}
    # ∀-existential w.r.t. q1: P1 is q1-equivalent.
    assert p1_ans == p_ans
    # NOT ∃-existential w.r.t. q1: "depending on which tuple gets tid 0,
    # q1 may return TRUE or FALSE on non-empty inputs".
    assert p2_ans == {False: {FALSE}, True: {FALSE, TRUE}}

    table("E7: q1 (∀-existential: yes, ∃-existential: no)",
          ["y input", "P", "P1 (∀ rewrite)", "P2 (∃ rewrite)"],
          [(("empty", "non-empty")[y], _fmt(p_ans[y]), _fmt(p1_ans[y]),
            _fmt(p2_ans[y])) for y in (False, True)])


def test_e7_q2_exists_but_not_forall(benchmark, table):
    p_ans = answer_sets(P, "q2")
    p1_ans = answer_sets(P1, "q2")
    p2_ans = benchmark(lambda: answer_sets(P2, "q2"))

    # P: q2 always FALSE.
    assert p_ans == {False: {FALSE}, True: {FALSE}}
    # NOT ∀-existential w.r.t. q2: "q2 defined by P1 returns TRUE on
    # non-empty inputs".
    assert p1_ans == {False: {FALSE}, True: {TRUE}}
    # ∃-existential w.r.t. q2: "q2 defined by P2 always returns FALSE no
    # matter what the input is".
    assert p2_ans == p_ans

    table("E7: q2 (∀-existential: no, ∃-existential: yes)",
          ["y input", "P", "P1 (∀ rewrite)", "P2 (∃ rewrite)"],
          [(("empty", "non-empty")[y], _fmt(p_ans[y]), _fmt(p1_ans[y]),
            _fmt(p2_ans[y])) for y in (False, True)])


# E7's queries are existence tests (is some tuple in x?).  Written naively
# they join a large relation against a tiny filter — the shape where the
# cost-based planner's cardinality awareness pays off most.
EXISTS_JOIN = """
    q() :- big(X, Y), small(Y).
"""


def exists_db(n: int) -> Database:
    return Database.from_facts({
        "big": [(f"x{i}", f"y{j}") for i in range(n) for j in range(n)],
        "small": [("y0",)],
    })


def test_e7_planner_probes(benchmark, table):
    from repro.datalog.parser import parse_program
    from repro.datalog.seminaive import evaluate

    program = parse_program(EXISTS_JOIN)
    rows = []
    for n in (10, 20, 30):
        db = exists_db(n)
        greedy_db, greedy = evaluate(program, db, plan="greedy")
        cost_db, cost = evaluate(program, db, plan="cost")
        assert greedy_db.relation("q").frozen() == \
            cost_db.relation("q").frozen() == TRUE
        assert 2 * cost.probes <= greedy.probes
        rows.append((n, greedy.probes, cost.probes,
                     round(greedy.probes / cost.probes, 1)))
    table("E7: greedy vs cost-based planning (existence-test join)",
          ["n (big is n×n)", "greedy probes", "cost probes", "ratio"],
          rows)
    db = exists_db(30)
    benchmark(lambda: evaluate(program, db, plan="cost"))
