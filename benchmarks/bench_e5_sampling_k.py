"""E5 — Example 5 (§3.3): multiple samples per department.

Regenerates three claims:

* the single IDLOG clause ``emp[2](N, D, T), T < 2`` always selects
  exactly two employees per department;
* the naive DATALOG^C program with two independent choices does NOT —
  choices can collide and departments can end up with <2 samples;
* the paper's cost model for a correct choice-based k-sampler: k choice
  rounds plus k(k−1)/2 inequality tests, versus one ID-literal — shown as
  measured join-probe counts growing with k for the choice encoding while
  the IDLOG clause stays one scan.
"""

from conftest import employees_db

from repro.choice import ChoiceEngine
from repro.core import IdlogEngine

IDLOG_TWO = "select_two_emp(N) :- emp[2](N, D, T), T < 2."

NAIVE_CHOICE = """
    emp1(N, D) :- emp(N, D), choice((D), (N)).
    emp2(N, D) :- emp(N, D), choice((D), (N)).
    select_two_emp(N1) :- emp1(N1, D), emp2(N2, D), N1 != N2.
"""


def idlog_k_program(k: int) -> str:
    return f"select_emp(N) :- emp[2](N, D, T), T < {k}."


def choice_k_program(k: int) -> str:
    """A choice-based k-sampler: k independent choices plus all-distinct
    tests — the paper's 'considerable amount of overhead'."""
    lines = [
        f"emp{i}(N, D) :- emp(N, D), choice((D), (N))." for i in range(k)]
    body = ", ".join(f"emp{i}(N{i}, D)" for i in range(k))
    tests = ", ".join(f"N{i} != N{j}"
                      for i in range(k) for j in range(i + 1, k))
    for i in range(k):
        lines.append(f"select_emp(N{i}) :- {body}, {tests}.")
    return "\n".join(lines)


def test_e5_idlog_always_two_per_department(benchmark, table):
    db = employees_db(per_dept=3, departments=2)
    engine = IdlogEngine(IDLOG_TWO)
    answers = benchmark(lambda: engine.answers(db, "select_two_emp"))
    assert len(answers) == 3 * 3  # C(3,2)^2
    assert all(len(a) == 4 for a in answers)
    table("E5: IDLOG two-per-department",
          ["metric", "value"],
          [("distinct answers", len(answers)),
           ("every answer has 2 per dept", True)])


def test_e5_naive_choice_program_incorrect(benchmark, table):
    """The paper: 'There are some intended models of this program that
    contain exactly two students from each department, while others may
    not contain any student from a certain department.'"""
    db = employees_db(per_dept=3, departments=2)
    engine = ChoiceEngine(NAIVE_CHOICE)
    answers = benchmark(lambda: engine.answers(db, "select_two_emp"))
    sizes = sorted({len(a) for a in answers})
    assert frozenset() in answers   # colliding choices select NOTHING
    assert max(sizes) < 4           # no model selects 2 per department:
    # the head only exposes Name1, so at most one name per department
    # survives even when the choices differ — the program simply does not
    # define the two-per-department sampling query.
    table("E5: naive DATALOG^C two-sampler is wrong (sizes reachable)",
          ["answer size", "possible"],
          [(s, True) for s in sizes])


def test_e5_choice_overhead_grows_with_k(table, benchmark):
    """k choices + k(k-1)/2 inequality tests vs one ID-literal."""
    db = employees_db(per_dept=6, departments=3)
    rows = []
    for k in (2, 3, 4):
        idlog = IdlogEngine(idlog_k_program(k))
        idlog_result = idlog.one(db, seed=0)
        choice = ChoiceEngine(choice_k_program(k))
        choice_result = choice.one(db, seed=0)
        assert len(idlog_result.tuples("select_emp")) == 3 * k
        rows.append((k,
                     k * (k - 1) // 2,
                     idlog_result.stats.probes,
                     choice_result.stats.probes))
    table("E5: probes per sampler (choice needs k(k-1)/2 tests)",
          ["k", "inequality tests", "IDLOG probes", "choice probes"], rows)
    # The measured gap: choice probes grow much faster than IDLOG probes.
    assert rows[-1][3] > rows[-1][2]
    benchmark(lambda: IdlogEngine(idlog_k_program(4)).one(db, seed=0))


def test_e5_choice_k_sampler_throughput(benchmark):
    db = employees_db(per_dept=6, departments=3)
    engine = ChoiceEngine(choice_k_program(3))
    result = benchmark(lambda: engine.one(db, seed=0))
    # The all-distinct k-sampler is correct (when it fires) but costly.
    assert result.stats.probes > 0


def test_e5_multichoice_operator(benchmark, table):
    """The paper's proposed choice2 operator, realized: equal to the
    one-clause IDLOG sampler on answer sets."""
    from repro.choice import ChoiceEngine, choice_to_idlog

    db = employees_db(per_dept=3, departments=2)
    source = "select_two(N) :- emp(N, D), choice2((D), (N))."
    direct = ChoiceEngine(source).answers(db, "select_two")
    idlog_paper = IdlogEngine(
        "select_two(N) :- emp[2](N, D, T), T < 2.").answers(db, "select_two")
    translated = IdlogEngine(choice_to_idlog(source)) \
        .answers(db, "select_two")
    assert direct == idlog_paper == translated
    table("E5: choice2 (the paper's proposed operator) == Example 5 IDLOG",
          ["formulation", "answers"],
          [("choice2, KN88 k-subsets", len(direct)),
           ("emp[2](...,T), T<2 (paper)", len(idlog_paper)),
           ("choice2 translated to IDLOG", len(translated))])
    benchmark(lambda: ChoiceEngine(source).answers(db, "select_two"))
