"""A6 — extension: tid-based aggregates.

Counting is not expressible in Datalog; IDLOG's tids make it a
deterministic query (the §5 construction).  This bench verifies
determinism by answer-set enumeration on small groups and measures
canonical-evaluation scaling on larger ones.
"""

from conftest import employees_db

from repro.aggregates import count_per_group, sum_per_group
from repro.datalog.database import Database


def test_a6_count_determinism(table, benchmark):
    agg = count_per_group("emp", 2, group=[2])
    rows = []
    for per_dept, departments in [(2, 2), (3, 2), (3, 3)]:
        db = employees_db(per_dept, departments)
        expected = {(f"dept{d}", per_dept) for d in range(departments)}
        assert agg.compute(db) == expected
        assert agg.is_deterministic_on(db)
        rows.append((f"{per_dept}x{departments}", per_dept, True))
    table("A6: count per group (deterministic under every tid order)",
          ["emp per dept x depts", "count", "single answer"], rows)
    db = employees_db(3, 3)
    benchmark(lambda: agg.compute(db))


def test_a6_count_scaling(table, benchmark):
    agg = count_per_group("emp", 2, group=[2])
    rows = []
    for per_dept in (10, 50, 200):
        db = employees_db(per_dept, departments=5)
        result = agg.compute(db)
        assert result == {(f"dept{d}", per_dept) for d in range(5)}
        rows.append((per_dept * 5, per_dept))
    table("A6: counting scales with relation size",
          ["|emp|", "count per dept"], rows)
    db = employees_db(200, 5)
    benchmark(lambda: agg.compute(db))


def test_a6_sum_matches_python(table, benchmark):
    rows_data = [(f"dept{d}", 10 * d + i)
                 for d in range(4) for i in range(6)]
    db = Database.from_facts({"sales": rows_data})
    agg = sum_per_group("sales", 2, group=[1], value=2)
    result = agg.compute(db)
    expected = {}
    for dept, amount in rows_data:
        expected[dept] = expected.get(dept, 0) + amount
    assert result == {(d, s) for d, s in expected.items()}
    table("A6: sum per group vs python ground truth",
          ["dept", "total"], sorted(result))
    benchmark(lambda: agg.compute(db))
