"""A1 — ablation: semi-naive vs naive fixpoint evaluation.

The substitution table in DESIGN.md justifies semi-naive as "the canonical
evaluation strategy" the paper alludes to; this ablation quantifies what
it buys on recursive workloads (probes grow quadratically for naive on a
chain, linearly-ish for semi-naive).
"""

from repro.datalog.database import Database
from repro.datalog.parser import parse_program
from repro.datalog.seminaive import evaluate, evaluate_naive

TC = parse_program("""
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Z), path(Z, Y).
""")


def chain(n):
    return Database.from_facts(
        {"edge": [(f"n{i}", f"n{i+1}") for i in range(n)]})


def test_a1_probe_scaling(table, benchmark):
    rows = []
    for n in (10, 20, 40):
        db = chain(n)
        _, semi = evaluate(TC, db)
        _, naive = evaluate_naive(TC, db)
        assert semi.probes < naive.probes
        rows.append((n, semi.probes, naive.probes,
                     round(naive.probes / semi.probes, 1)))
    table("A1: semi-naive vs naive join probes (chain graph)",
          ["n", "semi-naive", "naive", "ratio"], rows)
    # The advantage grows with recursion depth.
    assert rows[-1][3] > rows[0][3]
    db = chain(40)
    benchmark(lambda: evaluate(TC, db))


def test_a1_naive_baseline(benchmark):
    db = chain(40)
    result, _ = benchmark(lambda: evaluate_naive(TC, db))
    assert len(result.relation("path")) == 40 * 41 // 2


def test_a1_agreement(benchmark):
    db = chain(25)
    semi, _ = evaluate(TC, db)
    naive, _ = benchmark(lambda: evaluate_naive(TC, db))
    assert semi.relation("path").frozen() == naive.relation("path").frozen()


REACH = parse_program("""
    reach(X, Y) :- edge(X, Y), source(X).
    reach(X, Y) :- reach(X, Z), edge(Z, Y).
""")


def reach_db(n):
    db = chain(n)
    db.add_fact("source", (f"n{n - 10}",))
    return db


def test_a1_planner_probes(table, benchmark):
    """Greedy vs cost-based planning on the reachability recursion: the
    greedy order scans every edge before the selective source filter; the
    cost plan starts from the 1-row source relation."""
    rows = []
    for n in (40, 80, 120):
        db = reach_db(n)
        greedy_db, greedy = evaluate(REACH, db, plan="greedy")
        cost_db, cost = evaluate(REACH, db, plan="cost")
        assert greedy_db.relation("reach").frozen() == \
            cost_db.relation("reach").frozen()
        assert 2 * cost.probes <= greedy.probes
        rows.append((n, greedy.probes, cost.probes,
                     round(greedy.probes / cost.probes, 1),
                     f"{cost.plans_built}/{cost.plans_reused}"))
    table("A1: greedy vs cost-based clause planning (reach, selective "
          "source)",
          ["n", "greedy probes", "cost probes", "ratio",
           "plans built/reused"], rows)
    db = reach_db(120)
    benchmark(lambda: evaluate(REACH, db, plan="cost"))
