"""A4 — ablation/extension: incremental maintenance vs recompute.

For positive programs an insertion restarts the semi-naive delta loop
from the new tuple; this ablation measures maintenance probes against
from-scratch recomputation as the materialized database grows.
"""

from repro.datalog.database import Database
from repro.datalog.engine import DatalogEngine
from repro.datalog.incremental import IncrementalEngine

TC = """
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Z), path(Z, Y).
"""


def chain(n):
    return Database.from_facts(
        {"edge": [(f"n{i}", f"n{i+1}") for i in range(n)]})


def test_a4_maintenance_vs_recompute(table, benchmark):
    rows = []
    for n in (10, 20, 40):
        engine = IncrementalEngine(TC)
        engine.start(chain(n))
        before = engine.stats.probes
        engine.add_fact("edge", (f"n{n}", f"n{n+1}"))
        incremental_probes = engine.stats.probes - before

        scratch = DatalogEngine(TC)
        db = Database.from_facts({"edge": [
            (f"n{i}", f"n{i+1}") for i in range(n + 1)]})
        scratch_probes = scratch.run(db).stats.probes
        assert engine.relation("path") == scratch.query(db, "path")
        rows.append((n, incremental_probes, scratch_probes))
        assert incremental_probes < scratch_probes
    table("A4: probes to absorb one edge (append at the chain's end)",
          ["n", "incremental", "recompute"], rows)
    engine = IncrementalEngine(TC)
    engine.start(chain(40))
    counter = [40]

    def insert():
        counter[0] += 1
        return engine.add_fact("edge", (f"n{counter[0]}",
                                        f"n{counter[0] + 1}"))

    # pedantic: every call really mutates, so bound the number of rounds.
    benchmark.pedantic(insert, rounds=25, iterations=1)


def test_a4_recompute_baseline(benchmark):
    scratch = DatalogEngine(TC)
    db = chain(41)
    result = benchmark(lambda: scratch.run(db))
    assert len(result.tuples("path")) == 41 * 42 // 2


def test_a4_negation_falls_back(benchmark, table):
    program = """
        linked(X) :- edge(X, Y).
        lone(X) :- node(X), not linked(X).
    """
    engine = IncrementalEngine(program)
    assert not engine.incremental
    db = Database.from_facts({
        "node": [(f"v{i}",) for i in range(20)],
        "edge": [("v0", "x")]})
    engine.start(db)
    benchmark(lambda: engine.add_fact("edge", ("v1", "x")))
    assert ("v1",) not in engine.relation("lone")
    table("A4: non-monotone programs use the recompute path",
          ["program", "path"],
          [("positive TC", "incremental"), ("with negation", "recompute")])
