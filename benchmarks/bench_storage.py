#!/usr/bin/env python
"""Micro-benchmark: legacy tuple-store vs columnar relation storage.

Measures, at each row count (10^3..10^6 full, 10^3..10^4 quick):

* **insert** — rows/second building the store from scratch;
* **index build** — seconds to hash-index the second column;
* **probe** — seconds for 10k index lookups of existing keys;
* **resident bytes/tuple** — deep ``sys.getsizeof`` accounting.

The *tuple store* is a faithful, self-contained reduction of the
pre-columnar ``Relation``: a ``set`` of Python value tuples plus
dict-of-value buckets — what every tuple and index entry cost before the
``array('q')`` code columns landed.  The columnar side is the real
:class:`repro.datalog.database.Relation`.

``run_all.py`` embeds this report in the BENCH trajectory under
``"storage"``; standalone use::

    python benchmarks/bench_storage.py [--quick] [--out FILE]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from time import perf_counter

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

FULL_SIZES = (1_000, 10_000, 100_000, 1_000_000)
QUICK_SIZES = (1_000, 10_000)
PROBES = 10_000


def make_rows(n: int) -> list[tuple[str, str]]:
    """Deterministic ``emp``-shaped rows: ~40 employees per department."""
    depts = max(1, n // 40)
    return [(f"e{i}", f"dept{i % depts}") for i in range(n)]


class TupleStore:
    """The pre-PR7 storage model, reduced to what the timings need."""

    def __init__(self) -> None:
        self.rows: set[tuple] = set()

    def insert_all(self, rows) -> None:
        self.rows.update(rows)

    def index_on(self, position: int) -> dict:
        index: dict = {}
        for row in self.rows:
            index.setdefault(row[position], []).append(row)
        return index

    def approx_bytes(self) -> int:
        total = sys.getsizeof(self.rows)
        for row in self.rows:
            total += sys.getsizeof(row)
            # Strings are resident per-tuple-slot references; count the
            # objects once each (they are shared with the interner, the
            # same concession Relation.memory_stats makes for the pool).
        return total


def bench_tuple_store(rows: list) -> dict:
    store = TupleStore()
    start = perf_counter()
    store.insert_all(rows)
    insert_s = perf_counter() - start
    start = perf_counter()
    index = store.index_on(1)
    index_build_s = perf_counter() - start
    keys = [rows[(i * 37) % len(rows)][1] for i in range(PROBES)]
    get = index.get
    start = perf_counter()
    hits = sum(1 for key in keys if get(key) is not None)
    probe_s = perf_counter() - start
    assert hits == PROBES
    index_bytes = sys.getsizeof(index)
    for key, bucket in index.items():
        index_bytes += sys.getsizeof(key) + sys.getsizeof(bucket)
    return {"insert_s": round(insert_s, 6),
            "rows_per_s": round(len(rows) / insert_s) if insert_s else None,
            "index_build_s": round(index_build_s, 6),
            "probe_s": round(probe_s, 6),
            "approx_bytes": store.approx_bytes(),
            "bytes_per_tuple": round(store.approx_bytes() / len(rows), 1),
            "index_bytes": index_bytes}


def bench_columnar(rows: list) -> dict:
    from repro.datalog.database import Relation
    relation = Relation(2)
    start = perf_counter()
    relation.update(rows)
    insert_s = perf_counter() - start
    relation.drop_indexes()
    start = perf_counter()
    index = relation.index_on_coded((1,))
    index_build_s = perf_counter() - start
    from repro.datalog.pool import GLOBAL_POOL
    keys = [GLOBAL_POOL.encode(rows[(i * 37) % len(rows)][1])
            for i in range(PROBES)]
    get = index.get
    start = perf_counter()
    hits = sum(1 for key in keys if get(key) is not None)
    probe_s = perf_counter() - start
    assert hits == PROBES
    stats = relation.memory_stats()
    return {"insert_s": round(insert_s, 6),
            "rows_per_s": round(len(rows) / insert_s) if insert_s else None,
            "index_build_s": round(index_build_s, 6),
            "probe_s": round(probe_s, 6),
            "approx_bytes": stats["approx_bytes"],
            "bytes_per_tuple": stats["bytes_per_tuple"],
            "logical_bytes": stats["logical_bytes"]}


def run(quick: bool = False) -> dict:
    """The full micro-benchmark report (embedded by ``run_all.py``)."""
    report: dict = {"probes": PROBES, "sizes": {}}
    for n in (QUICK_SIZES if quick else FULL_SIZES):
        rows = make_rows(n)
        tuple_side = bench_tuple_store(rows)
        columnar_side = bench_columnar(rows)
        report["sizes"][str(n)] = {
            "tuple_store": tuple_side,
            "columnar": columnar_side,
            "bytes_ratio": round(
                tuple_side["approx_bytes"] / columnar_side["approx_bytes"],
                2),
        }
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="small sizes only (CI smoke)")
    parser.add_argument("--out", default=None,
                        help="write JSON here instead of stdout")
    args = parser.parse_args(argv)
    report = run(quick=args.quick)
    text = json.dumps(report, indent=2)
    if args.out:
        Path(args.out).write_text(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)
    for n, sizes in report["sizes"].items():
        t, c = sizes["tuple_store"], sizes["columnar"]
        print(f"  n={n:>8s}  insert {t['insert_s']:.4f}s -> "
              f"{c['insert_s']:.4f}s   probe {t['probe_s']:.4f}s -> "
              f"{c['probe_s']:.4f}s   bytes/tuple "
              f"{t['bytes_per_tuple']} -> {c['bytes_per_tuple']} "
              f"({sizes['bytes_ratio']}x smaller)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
