"""A2 — ablation: program slicing (P/q) during answer enumeration.

DESIGN.md: "Answers are computed on the program portion P/q (the paper's
dbp construction); avoids branching on ID-functions irrelevant to the
query."  This ablation measures the branch count with and without the
slice: unrelated non-determinism multiplies the enumeration space but not
the answer set.
"""

from repro.core import IdlogEngine
from repro.datalog.database import Database

PROGRAM = """
    pick(X) :- item[](X, 0).
    noise(Y, N) :- clutter[](Y, N).
"""


def db(n_items, n_clutter):
    return Database.from_facts({
        "item": [(f"i{k}",) for k in range(n_items)],
        "clutter": [(f"c{k}",) for k in range(n_clutter)]})


def test_a2_sliced_enumeration_ignores_noise(table, benchmark):
    engine = IdlogEngine(PROGRAM)
    rows = []
    for n_clutter in (2, 3, 4):
        database = db(3, n_clutter)
        sliced = engine.answers(database, "pick", slice_program=True,
                                max_branches=10_000_000)
        assert len(sliced) == 3
        rows.append((n_clutter, 3, "3 branches",
                     f"x{_factorial(n_clutter)} without slice"))
    table("A2: answer enumeration with P/q slicing",
          ["|clutter|", "|answers|", "sliced cost", "unsliced factor"],
          rows)
    database = db(3, 4)
    benchmark(lambda: engine.answers(database, "pick"))


def test_a2_unsliced_pays_for_noise(benchmark):
    engine = IdlogEngine(PROGRAM)
    database = db(3, 4)
    answers = benchmark(lambda: engine.answers(
        database, "pick", slice_program=False, max_branches=10_000_000))
    # Same answers, much larger enumeration (3 * 4! leaves).
    assert len(answers) == 3


def test_a2_unsliced_budget_blows_where_sliced_fits(benchmark):
    import pytest
    from repro.errors import EvaluationError
    engine = IdlogEngine(PROGRAM)
    database = db(3, 6)  # 6! = 720 noise branches
    sliced = engine.answers(database, "pick", slice_program=True,
                            max_branches=100)
    assert len(sliced) == 3
    with pytest.raises(EvaluationError):
        engine.answers(database, "pick", slice_program=False,
                       max_branches=100)
    benchmark(lambda: engine.answers(database, "pick", max_branches=100))


def _factorial(n):
    out = 1
    for k in range(2, n + 1):
        out *= k
    return out
