"""E9 — Theorem 2 (§3.2.2): DATALOG^C → IDLOG translation equivalence.

Regenerates: for DATALOG^C programs satisfying (C1)/(C2), the translated
four-layer IDLOG program is q-equivalent — checked by exhaustive
answer-set comparison over randomized databases, for several program
shapes, plus translation-cost timing.
"""

import random

import pytest

from repro.choice import ChoiceEngine, choice_to_idlog
from repro.core import IdlogEngine
from repro.datalog.database import Database

PROGRAMS = {
    "example4": (
        "select_emp(N) :- emp(N, D), choice((D), (N)).",
        "select_emp", {"emp": 2}),
    "sex_guess": ("""
        sex_guess(X, male) :- person(X).
        sex_guess(X, female) :- person(X).
        sex(X, Y) :- sex_guess(X, Y), choice((X), (Y)).
        man(X) :- sex(X, male).
        """, "man", {"person": 1}),
    "empty_domain": (
        "pick(X) :- item(X), choice((), (X)).",
        "pick", {"item": 1}),
    "wide_domain": (
        "rep(X, Y, Z) :- t(X, Y, Z), choice((X, Y), (Z)).",
        "rep", {"t": 3}),
    "two_choices": ("""
        a(N) :- emp(N, D), choice((D), (N)).
        b(D) :- emp(N, D), choice((N), (D)).
        both(N, D) :- a(N), b(D).
        """, "both", {"emp": 2}),
}


def random_db(schema, rng) -> Database:
    domain = ["u", "v", "w", "x"]
    facts = {}
    for name, arity in schema.items():
        rows = {tuple(rng.choice(domain) for _ in range(arity))
                for _ in range(rng.randrange(1, 6))}
        facts[name] = sorted(rows)
    return Database.from_facts(facts, udomain=domain)


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_e9_equivalence(benchmark, table, name):
    source, pred, schema = PROGRAMS[name]
    translated = choice_to_idlog(source)
    direct_engine = ChoiceEngine(source)
    idlog_engine = IdlogEngine(translated)
    rng = random.Random(42)
    checked = 0
    rows = []
    for _ in range(8):
        db = random_db(schema, rng)
        direct = direct_engine.answers(db, pred)
        via_idlog = idlog_engine.answers(db, pred)
        assert direct == via_idlog, (name, db.snapshot())
        checked += 1
        rows.append((checked, len(direct)))
    table(f"E9 [{name}]: answer sets per random db (all equal)",
          ["db#", "|answer set|"], rows)
    db = random_db(schema, random.Random(0))
    benchmark(lambda: IdlogEngine(translated).answers(db, pred))


def test_e9_translation_cost(benchmark):
    source, _, _ = PROGRAMS["sex_guess"]
    compiled = benchmark(lambda: choice_to_idlog(source))
    # Theorem 2's four conceptual layers: the selection predicate sits one
    # strict level above the candidates.
    level = compiled.stratification.level
    assert level["choice_sel_1"] == level["choice_all_1"] + 1
