"""A3 — ablation/extension: magic-sets rewriting vs full evaluation.

Not in the paper, but squarely in its §4 program: goal-directed rewriting
that prunes *rows* the way ∃-existential rewriting prunes *columns*.
Measured: derived tuples and probes for a bound-argument reachability
query on a graph that is mostly irrelevant to the goal.
"""

from repro.datalog.database import Database
from repro.datalog.engine import DatalogEngine
from repro.optimizer.magic import magic_rewrite

TC = """
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Z), path(Z, Y).
"""


def forest(reachable, components, size):
    """One chain reachable from n0, plus many disconnected chains."""
    edges = [(f"n{i}", f"n{i+1}") for i in range(reachable)]
    for c in range(components):
        edges += [(f"u{c}_{i}", f"u{c}_{i+1}") for i in range(size)]
    return Database.from_facts({"edge": edges})


def test_a3_relevance_pruning(table, benchmark):
    rewritten = magic_rewrite(TC, "path(n0, Y)")
    full = DatalogEngine(TC)
    rows = []
    for components in (1, 4, 16):
        db = forest(reachable=6, components=components, size=8)
        magic_result = rewritten.run(db)
        full_result = full.run(db)
        expected = {("n0", f"n{i+1}") for i in range(6)}
        assert rewritten.answer(db) == expected
        rows.append((components,
                     magic_result.stats.total_derived,
                     full_result.stats.total_derived))
    table("A3: derived tuples, magic vs full (goal path(n0, Y))",
          ["irrelevant components", "magic", "full"], rows)
    # Magic cost is flat in irrelevant data; full evaluation grows.
    assert rows[0][1] == rows[-1][1]
    assert rows[-1][2] > rows[0][2]
    db = forest(6, 16, 8)
    benchmark(lambda: rewritten.answer(db))


def test_a3_full_evaluation_baseline(benchmark):
    db = forest(6, 16, 8)
    engine = DatalogEngine(TC)
    result = benchmark(lambda: engine.run(db))
    assert ("n0", "n6") in result.tuples("path")


def test_a3_overhead_when_goal_is_free(table, benchmark):
    """The flip side: with nothing bound, magic adds guard overhead."""
    db = forest(6, 2, 4)
    rewritten = magic_rewrite(TC, "path(X, Y)")
    full = DatalogEngine(TC)
    magic_stats = rewritten.run(db).stats
    full_stats = full.run(db).stats
    assert rewritten.answer(db) == full.query(db, "path")
    table("A3: free goal — magic guards cost, don't pay",
          ["strategy", "derived", "probes"],
          [("magic (ff)", magic_stats.total_derived, magic_stats.probes),
           ("full", full_stats.total_derived, full_stats.probes)])
    assert magic_stats.total_derived >= full_stats.total_derived
    benchmark(lambda: rewritten.answer(db))
