"""A5 — ablation/extension: three evaluation strategies on one goal.

Bottom-up over the whole program, magic-sets-rewritten bottom-up, and
tabled top-down all answer the same bound-argument goal; this ablation
compares their work (derived tuples / tabled subgoals) on a graph with
much goal-irrelevant data, and asserts three-way agreement.
"""

from repro.datalog.database import Database
from repro.datalog.engine import DatalogEngine
from repro.datalog.topdown import TopDownEngine
from repro.optimizer.magic import magic_rewrite

TC = """
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Z), path(Z, Y).
"""


def forest(reachable=6, components=12, size=8):
    edges = [(f"n{i}", f"n{i+1}") for i in range(reachable)]
    for c in range(components):
        edges += [(f"u{c}_{i}", f"u{c}_{i+1}") for i in range(size)]
    return Database.from_facts({"edge": edges})


def test_a5_three_way_agreement(table, benchmark):
    db = forest()
    goal = "path(n0, Y)"
    expected = {("n0", f"n{i+1}") for i in range(6)}

    full = DatalogEngine(TC).run(db)
    bottom_up = frozenset(r for r in full.tuples("path") if r[0] == "n0")
    magic = magic_rewrite(TC, goal)
    magic_result = magic.run(db)
    topdown = TopDownEngine(TC)
    td_answers = topdown.query(db, goal)

    assert bottom_up == magic.answer(db) == td_answers == expected
    table("A5: work per strategy for path(n0, Y)",
          ["strategy", "derived tuples / subgoals"],
          [("bottom-up (full)", full.stats.total_derived),
           ("magic-rewritten", magic_result.stats.total_derived),
           ("tabled top-down", f"{topdown.subgoals_tabled} subgoals")])
    assert magic_result.stats.total_derived < full.stats.total_derived
    assert topdown.subgoals_tabled < 25  # stays inside the n-component
    benchmark(lambda: TopDownEngine(TC).query(db, goal))


def test_a5_magic_strategy(benchmark):
    db = forest()
    magic = magic_rewrite(TC, "path(n0, Y)")
    answers = benchmark(lambda: magic.answer(db))
    assert len(answers) == 6


def test_a5_bottom_up_strategy(benchmark):
    db = forest()
    engine = DatalogEngine(TC)
    result = benchmark(lambda: engine.run(db))
    assert ("n0", "n6") in result.tuples("path")
