"""E10 — Theorem 4 (§4): adornment-identified arguments are ∃-existential.

Regenerates: for every argument the RBK88 sufficient test identifies, the
ID-literal rewrite preserves the defined query — checked by exhaustive
answer-set comparison on randomized databases for a suite of programs, and
timed as the end-to-end optimize-then-verify kernel.
"""

import pytest

from repro.optimizer import optimize, q_equivalent_on, random_databases

SUITE = {
    "example6": (
        "q(X) :- a(X, Y).\n"
        "a(X, Y) :- p(X, Z), a(Z, Y).\n"
        "a(X, Y) :- p(X, Y).",
        "q", {"p": 2}),
    "opening": (
        "p(X) :- q(X, Z), z(Z, Y), y(W).",
        "p", {"q": 2, "z": 2, "y": 1}),
    "all_depts": (
        "all_depts(D) :- emp(N, D).",
        "all_depts", {"emp": 2}),
    "negation_guard": (
        "q(X) :- e(X, Y), not f(X).\n"
        "f(X) :- g(X, W).",
        "q", {"e": 2, "f": 1, "g": 2}),
    "two_hop": (
        "r(X) :- s(X, Y), t(Y, Z).",
        "r", {"s": 2, "t": 2}),
    "diamond": (
        "q(X) :- l(X, Y), r(X, Z).",
        "q", {"l": 2, "r": 2}),
}


@pytest.mark.parametrize("name", sorted(SUITE))
def test_e10_rewrite_preserves_query(benchmark, table, name):
    source, query, schema = SUITE[name]
    result = optimize(source, query)
    dbs = list(random_databases(schema, ["a", "b", "c"],
                                count=10, seed=13, max_rows=5))
    equivalent = benchmark(
        lambda: q_equivalent_on(result.original, result.optimized,
                                query, dbs))
    assert equivalent
    marks = {p: flags for p, flags in result.adornment.marks.items()
             if any(flags)}
    table(f"E10 [{name}]: Theorem 4 holds on 10 random dbs",
          ["existential marks", "q-equivalent"],
          [(marks or "(occurrence-level only)", equivalent)])


def test_e10_unsound_rewrite_is_caught(benchmark, table):
    """Control: rewriting a NON-existential argument is detected as a
    q-equivalence violation by the same harness (the checker has teeth)."""
    original = "q(X) :- e(X, Y), f(Y)."           # Y joins: not existential
    broken = "q(X) :- e[1](X, Y, 0), f(Y)."       # unsound ID rewrite
    dbs = list(random_databases({"e": 2, "f": 1}, ["a", "b", "c"],
                                count=20, seed=3, max_rows=5))
    equivalent = benchmark(
        lambda: q_equivalent_on(original, broken, "q", dbs))
    assert not equivalent
    table("E10 control: unsound rewrite detected",
          ["rewrite", "q-equivalent"], [("e[1](X,Y,0) despite join", False)])
