#!/usr/bin/env python
"""Load generator for the long-lived IDLOG server.

Starts an in-process server (:class:`repro.server.ServerThread`), opens
``N`` concurrent clients — each on its own TCP connection, session, and
thread — and drives every client through the same request script:

1. ``open_session`` + ``assert_facts`` (a department table sized to the
   profile),
2. ``prepare`` of a two-clause sampling program (so later runs hit the
   prepared-program pipeline cache),
3. ``M`` timed ``run`` requests (``mode: one``, distinct seeds), each a
   full round trip measured client-side.

Reported: p50/p90/p99/mean/max round-trip latency in milliseconds,
aggregate throughput in requests/second, error count (must be zero),
and — as proof the prepared path really reuses compiled pipelines — the
``pipelines_compiled``/``pipelines_reused`` counters of each client's
final run (compiled must be 0).  The concurrency answer to the
acceptance criterion "sustains >= 8 concurrent clients" is the quick
profile's default.

``run_all.py`` embeds this report in the BENCH trajectory under
``"server"`` (gated by ``compare.py``); standalone use::

    python benchmarks/bench_server.py [--quick] [--clients N]
                                      [--requests M] [--out FILE]
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
from pathlib import Path
from time import perf_counter

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.server import ServerConfig, ServerThread  # noqa: E402

QUICK_CLIENTS, QUICK_REQUESTS = 8, 12
FULL_CLIENTS, FULL_REQUESTS = 12, 50

PROGRAM = """
  pick(Name, Dept) :- emp[2](Name, Dept, N), N < 1.
  paired(A, B) :- pick(A, D), pick(B, D), A != B.
"""


def make_facts(quick: bool) -> dict:
    """``emp`` rows: ``depts`` departments of ``per`` employees each."""
    depts, per = (6, 10) if quick else (12, 25)
    rows = [[f"e{d}_{i}", f"dept{d}"]
            for d in range(depts) for i in range(per)]
    return {"emp": rows}


def counter_value(snapshot: dict, name: str):
    """One unlabelled counter's value out of a registry snapshot."""
    for family in snapshot.get("metrics", []):
        if family.get("name") == name and family.get("series"):
            return family["series"][0].get("value")
    return None


def percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list."""
    if not sorted_values:
        return 0.0
    rank = max(1, round(q * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


def drive_client(handle: ServerThread, index: int, requests: int,
                 facts: dict, latencies: list[float],
                 errors: list[str], final_stats: list[dict],
                 digests: dict) -> None:
    """One client's whole script (run on its own thread)."""
    try:
        with handle.client() as client:
            session = client.call("open_session")["session"]
            client.call("assert_facts", session=session, facts=facts)
            client.call("prepare", session=session, name="pick",
                        program=PROGRAM)
            last = {}
            for i in range(requests):
                start = perf_counter()
                last = client.call("run", session=session, prepared="pick",
                                   mode="one", seed=index * 1000 + i)
                latencies.append(perf_counter() - start)
                # With slow capture on, every run response carries the
                # choice digest; keyed by request id so the slow-log
                # file can be cross-checked after the load.
                if "choice_digest" in last:
                    digests[last.get("request_id")] = last["choice_digest"]
            final_stats.append(last.get("stats", {}))
            client.call("close_session", session=session)
    except Exception as exc:  # collected, not raised: the report gates
        errors.append(f"client {index}: {type(exc).__name__}: {exc}")


def run(quick: bool = False, clients: int | None = None,
        requests: int | None = None, slow_ms: float | None = None,
        slow_log_path: str | None = None,
        trace_sample: str | None = None) -> dict:
    """The ``server`` section of the BENCH trajectory.

    The observability knobs default to off so the latency numbers gated
    by ``compare.py`` measure the same zero-overhead path as PR 8;
    ``slow_ms``/``slow_log_path``/``trace_sample`` drive a separate
    (ungated) run that proves slow-query capture and tracing work under
    concurrent load.
    """
    clients = clients or (QUICK_CLIENTS if quick else FULL_CLIENTS)
    requests = requests or (QUICK_REQUESTS if quick else FULL_REQUESTS)
    facts = make_facts(quick)
    latencies: list[float] = []
    errors: list[str] = []
    final_stats: list[dict] = []
    digests: dict = {}
    config_kwargs: dict = {"workers": min(clients, 8)}
    if slow_ms is not None:
        # log_level="error" keeps the per-request slow_request warnings
        # out of the benchmark's stderr; the JSONL file has them all.
        config_kwargs.update(slow_ms=slow_ms, slow_log_path=slow_log_path,
                             log_level="error")
    config = ServerConfig(**config_kwargs)
    trace_events: list[dict] | None = None
    with ServerThread(config) as handle:
        threads = [threading.Thread(
            target=drive_client,
            args=(handle, i, requests, facts, latencies, errors,
                  final_stats, digests))
            for i in range(clients)]
        wall_start = perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = perf_counter() - wall_start
        if trace_sample:
            with handle.client() as probe:
                session = probe.call("open_session")["session"]
                probe.call("assert_facts", session=session, facts=facts)
                sample = probe.call("run", session=session,
                                    program=PROGRAM, mode="one", seed=7,
                                    trace=True, profile=True)
                probe.call("close_session", session=session)
            trace_events = sample.get("trace", [])
            Path(trace_sample).write_text("".join(
                json.dumps(event, sort_keys=True) + "\n"
                for event in trace_events))
        registry = handle.service.registry.snapshot()
    ordered = sorted(latencies)
    total = clients * requests
    reuse_ok = bool(final_stats) and all(
        s.get("pipelines_compiled") == 0 and s.get("pipelines_reused", 0) > 0
        for s in final_stats)
    report = {
        "scenario": "concurrent prepared sampling over TCP",
        "quick": quick,
        "clients": clients,
        "requests_per_client": requests,
        "total_requests": total,
        "completed_requests": len(latencies),
        "errors": len(errors),
        "error_samples": errors[:5],
        "wall_s": round(wall, 4),
        "throughput_rps": round(len(latencies) / wall, 1) if wall else None,
        "latency_ms": {
            "p50": round(percentile(ordered, 0.50) * 1000, 3),
            "p90": round(percentile(ordered, 0.90) * 1000, 3),
            "p99": round(percentile(ordered, 0.99) * 1000, 3),
            "mean": round(sum(ordered) / len(ordered) * 1000, 3)
            if ordered else 0.0,
            "max": round(ordered[-1] * 1000, 3) if ordered else 0.0,
        },
        "prepared_reuse_verified": reuse_ok,
        "metrics_sample": {
            key: counter_value(registry, key)
            for key in ("idlog_server_sessions_total",
                        "idlog_server_connections_total")
        },
    }
    if slow_log_path:
        entries = [json.loads(line) for line in
                   Path(slow_log_path).read_text().splitlines()]
        # Every captured run entry must agree with the wire response it
        # summarises: same choice digest (keyed by request id), and a
        # session + per-clause profile attached.
        checked = [e for e in entries
                   if e.get("type") == "run" and e["request_id"] in digests]
        verified = bool(checked) and all(
            e["choice_digest"] == digests[e["request_id"]]
            and e.get("session") and e.get("profile")
            for e in checked)
        report["slow_log"] = {
            "path": slow_log_path,
            "slow_ms": slow_ms,
            "entries": len(entries),
            "run_entries_checked": len(checked),
            "digest_verified": verified,
        }
    if trace_sample:
        report["trace_sample"] = {
            "path": trace_sample,
            "events": len(trace_events or []),
            "context_stamped": bool(trace_events) and all(
                "request_id" in event and "session_id" in event
                for event in trace_events),
        }
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="8 clients x 12 requests (CI smoke)")
    parser.add_argument("--clients", type=int, default=None)
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument("--out", default=None,
                        help="also write the report as JSON to FILE")
    parser.add_argument("--slow-ms", type=float, default=None,
                        help="enable slow-query capture at this "
                             "threshold (0 captures every request)")
    parser.add_argument("--slow-log", default=None,
                        help="slow-query JSONL file (with --slow-ms; "
                             "entries are cross-checked against the "
                             "wire responses)")
    parser.add_argument("--trace-sample", default=None,
                        help="write one traced request's span events "
                             "to FILE as JSONL")
    args = parser.parse_args(argv)
    report = run(quick=args.quick, clients=args.clients,
                 requests=args.requests, slow_ms=args.slow_ms,
                 slow_log_path=args.slow_log,
                 trace_sample=args.trace_sample)
    lat = report["latency_ms"]
    print(f"{report['clients']} client(s) x "
          f"{report['requests_per_client']} request(s): "
          f"p50={lat['p50']}ms p90={lat['p90']}ms p99={lat['p99']}ms "
          f"throughput={report['throughput_rps']} req/s "
          f"errors={report['errors']} "
          f"prepared_reuse={report['prepared_reuse_verified']}")
    for sample in report["error_samples"]:
        print(f"  error: {sample}", file=sys.stderr)
    failed = bool(report["errors"]) or not report["prepared_reuse_verified"]
    if "slow_log" in report:
        slow = report["slow_log"]
        print(f"slow log: {slow['entries']} entries at >= "
              f"{slow['slow_ms']}ms, {slow['run_entries_checked']} run "
              f"entries checked, digest_verified={slow['digest_verified']}")
        failed = failed or not slow["digest_verified"]
    if "trace_sample" in report:
        trace = report["trace_sample"]
        print(f"trace sample: {trace['events']} events, "
              f"context_stamped={trace['context_stamped']}")
        failed = failed or not trace["context_stamped"]
    if args.out:
        Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.out}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
