#!/usr/bin/env python
"""Load generator for the long-lived IDLOG server.

Starts an in-process server (:class:`repro.server.ServerThread`), opens
``N`` concurrent clients — each on its own TCP connection, session, and
thread — and drives every client through the same request script:

1. ``open_session`` + ``assert_facts`` (a department table sized to the
   profile),
2. ``prepare`` of a two-clause sampling program (so later runs hit the
   prepared-program pipeline cache),
3. ``M`` timed ``run`` requests (``mode: one``, distinct seeds), each a
   full round trip measured client-side.

Reported: p50/p90/p99/mean/max round-trip latency in milliseconds,
aggregate throughput in requests/second, error count (must be zero),
and — as proof the prepared path really reuses compiled pipelines — the
``pipelines_compiled``/``pipelines_reused`` counters of each client's
final run (compiled must be 0).  The concurrency answer to the
acceptance criterion "sustains >= 8 concurrent clients" is the quick
profile's default.

``run_all.py`` embeds this report in the BENCH trajectory under
``"server"`` (gated by ``compare.py``); standalone use::

    python benchmarks/bench_server.py [--quick] [--clients N]
                                      [--requests M] [--out FILE]
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
from pathlib import Path
from time import perf_counter

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.server import ServerConfig, ServerThread  # noqa: E402

QUICK_CLIENTS, QUICK_REQUESTS = 8, 12
FULL_CLIENTS, FULL_REQUESTS = 12, 50

PROGRAM = """
  pick(Name, Dept) :- emp[2](Name, Dept, N), N < 1.
  paired(A, B) :- pick(A, D), pick(B, D), A != B.
"""


def make_facts(quick: bool) -> dict:
    """``emp`` rows: ``depts`` departments of ``per`` employees each."""
    depts, per = (6, 10) if quick else (12, 25)
    rows = [[f"e{d}_{i}", f"dept{d}"]
            for d in range(depts) for i in range(per)]
    return {"emp": rows}


def counter_value(snapshot: dict, name: str):
    """One unlabelled counter's value out of a registry snapshot."""
    for family in snapshot.get("metrics", []):
        if family.get("name") == name and family.get("series"):
            return family["series"][0].get("value")
    return None


def percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list."""
    if not sorted_values:
        return 0.0
    rank = max(1, round(q * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


def drive_client(handle: ServerThread, index: int, requests: int,
                 facts: dict, latencies: list[float],
                 errors: list[str], final_stats: list[dict]) -> None:
    """One client's whole script (run on its own thread)."""
    try:
        with handle.client() as client:
            session = client.call("open_session")["session"]
            client.call("assert_facts", session=session, facts=facts)
            client.call("prepare", session=session, name="pick",
                        program=PROGRAM)
            last = {}
            for i in range(requests):
                start = perf_counter()
                last = client.call("run", session=session, prepared="pick",
                                   mode="one", seed=index * 1000 + i)
                latencies.append(perf_counter() - start)
            final_stats.append(last.get("stats", {}))
            client.call("close_session", session=session)
    except Exception as exc:  # collected, not raised: the report gates
        errors.append(f"client {index}: {type(exc).__name__}: {exc}")


def run(quick: bool = False, clients: int | None = None,
        requests: int | None = None) -> dict:
    """The ``server`` section of the BENCH trajectory."""
    clients = clients or (QUICK_CLIENTS if quick else FULL_CLIENTS)
    requests = requests or (QUICK_REQUESTS if quick else FULL_REQUESTS)
    facts = make_facts(quick)
    latencies: list[float] = []
    errors: list[str] = []
    final_stats: list[dict] = []
    config = ServerConfig(workers=min(clients, 8))
    with ServerThread(config) as handle:
        threads = [threading.Thread(
            target=drive_client,
            args=(handle, i, requests, facts, latencies, errors,
                  final_stats))
            for i in range(clients)]
        wall_start = perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = perf_counter() - wall_start
        registry = handle.service.registry.snapshot()
    ordered = sorted(latencies)
    total = clients * requests
    reuse_ok = bool(final_stats) and all(
        s.get("pipelines_compiled") == 0 and s.get("pipelines_reused", 0) > 0
        for s in final_stats)
    return {
        "scenario": "concurrent prepared sampling over TCP",
        "quick": quick,
        "clients": clients,
        "requests_per_client": requests,
        "total_requests": total,
        "completed_requests": len(latencies),
        "errors": len(errors),
        "error_samples": errors[:5],
        "wall_s": round(wall, 4),
        "throughput_rps": round(len(latencies) / wall, 1) if wall else None,
        "latency_ms": {
            "p50": round(percentile(ordered, 0.50) * 1000, 3),
            "p90": round(percentile(ordered, 0.90) * 1000, 3),
            "p99": round(percentile(ordered, 0.99) * 1000, 3),
            "mean": round(sum(ordered) / len(ordered) * 1000, 3)
            if ordered else 0.0,
            "max": round(ordered[-1] * 1000, 3) if ordered else 0.0,
        },
        "prepared_reuse_verified": reuse_ok,
        "metrics_sample": {
            key: counter_value(registry, key)
            for key in ("idlog_server_sessions_total",
                        "idlog_server_connections_total")
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="8 clients x 12 requests (CI smoke)")
    parser.add_argument("--clients", type=int, default=None)
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument("--out", default=None,
                        help="also write the report as JSON to FILE")
    args = parser.parse_args(argv)
    report = run(quick=args.quick, clients=args.clients,
                 requests=args.requests)
    lat = report["latency_ms"]
    print(f"{report['clients']} client(s) x "
          f"{report['requests_per_client']} request(s): "
          f"p50={lat['p50']}ms p90={lat['p90']}ms p99={lat['p99']}ms "
          f"throughput={report['throughput_rps']} req/s "
          f"errors={report['errors']} "
          f"prepared_reuse={report['prepared_reuse_verified']}")
    for sample in report["error_samples"]:
        print(f"  error: {sample}", file=sys.stderr)
    if args.out:
        Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.out}")
    return 1 if report["errors"] or not report["prepared_reuse_verified"] \
        else 0


if __name__ == "__main__":
    sys.exit(main())
