"""E6 — §4 Examples 6/8: the adornment + ID-literal optimization.

Regenerates: the Example 8 rewrite of the Example 6 reachability program,
with measured intermediate tuples and join probes, swept over database
size — the paper's "the number of intermediate redundant tuples in query
evaluation can therefore be greatly reduced".
"""

from repro.core import IdlogEngine
from repro.datalog.database import Database
from repro.datalog.pretty import to_source
from repro.optimizer import compare_cost, optimize

EX6 = """
    q(X) :- a(X, Y).
    a(X, Y) :- p(X, Z), a(Z, Y).
    a(X, Y) :- p(X, Y).
"""


def chain_db(n: int, fanout: int = 3) -> Database:
    rows = [(f"x{i}", f"x{i+1}") for i in range(n)]
    rows += [(f"x{i}", f"leaf{i}_{j}")
             for i in range(n) for j in range(fanout)]
    return Database.from_facts({"p": rows})


def test_e6_rewrite_shape(benchmark, table):
    result = benchmark(lambda: optimize(EX6, "q"))
    source = to_source(result.optimized.program)
    assert "a_ex(X) :- p[1](X, Y, 0)." in source
    table("E6: Example 8 rewrite", ["clause"],
          [(line,) for line in source.strip().splitlines()])


def test_e6_intermediate_tuple_reduction(table, benchmark):
    result = optimize(EX6, "q")
    rows = []
    for n in (5, 10, 20, 40):
        report = compare_cost(result, chain_db(n))
        assert report.answers_agree
        assert report.intermediate_tuples_after < \
            report.intermediate_tuples_before
        rows.append((n,
                     report.intermediate_tuples_before,
                     report.intermediate_tuples_after,
                     report.original_stats.probes,
                     report.optimized_stats.probes))
    table("E6: before/after over chain length (tuples | probes)",
          ["n", "tuples before", "tuples after",
           "probes before", "probes after"], rows)
    # The reduction factor grows with n (quadratic a(X, Y) vs linear a_ex).
    first_ratio = rows[0][1] / max(rows[0][2], 1)
    last_ratio = rows[-1][1] / max(rows[-1][2], 1)
    assert last_ratio > first_ratio
    db = chain_db(20)
    benchmark(lambda: compare_cost(result, db))


def test_e6_original_evaluation(benchmark):
    result = optimize(EX6, "q")
    db = chain_db(30)
    engine = IdlogEngine(result.original)
    answer = benchmark(lambda: engine.query(db, "q"))
    assert len(answer) == 30  # every chain node reaches something


def test_e6_optimized_evaluation(benchmark):
    result = optimize(EX6, "q")
    db = chain_db(30)
    engine = IdlogEngine(result.optimized)
    answer = benchmark(lambda: engine.query(db, "q"))
    assert len(answer) == 30
