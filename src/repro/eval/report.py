"""Structured results of a scenario run: assertions, cases, reports.

Mirrors the shape of the repository's other serialized observability
artifacts (``BENCH_*.json``, choice logs, metric snapshots): every
report is stamped with :data:`~repro.datalog.trace.SCHEMA_VERSION`, is
valid JSON even when the run died halfway (the runner flushes partial
reports in a ``finally:``), and carries enough measurement payload to
diagnose a failure without re-running.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Mapping, Optional, TextIO, Union

from ..datalog.trace import SCHEMA_VERSION
from ..errors import ReproError

#: ``kind`` field distinguishing eval reports from the other JSON
#: artifacts (bench trajectories, metric snapshots) in an artifact dir.
REPORT_KIND = "eval_report"


@dataclass(frozen=True)
class AssertionResult:
    """Outcome of one assertion on one (scenario, engine, plan) case.

    Attributes:
        name: The assertion's label, e.g. ``uniform-selection``.
        passed: Verdict.
        detail: Human-readable explanation (failure cause, or a short
            confirmation for passes).
        measurements: JSON-ready numbers backing the verdict (chi-square
            statistic, per-group counts, wall seconds, ...).
    """

    name: str
    passed: bool
    detail: str = ""
    measurements: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {"name": self.name, "passed": self.passed,
                "detail": self.detail,
                "measurements": dict(self.measurements)}


@dataclass
class CaseResult:
    """One scenario evaluated under one engine×plan combination.

    ``engine="matrix"``/``plan="differential"`` marks the synthetic case
    the runner emits for the cross-combination differential check.
    """

    scenario: str
    engine: str
    plan: str
    assertions: list[AssertionResult] = field(default_factory=list)
    wall_s: float = 0.0
    error: Optional[str] = None

    @property
    def passed(self) -> bool:
        """True when no assertion failed and the case did not error."""
        return self.error is None and all(a.passed for a in self.assertions)

    def as_dict(self) -> dict:
        return {"scenario": self.scenario, "engine": self.engine,
                "plan": self.plan, "passed": self.passed,
                "wall_s": round(self.wall_s, 6), "error": self.error,
                "assertions": [a.as_dict() for a in self.assertions]}


class EvalReport:
    """The accumulating result set of one :class:`ScenarioRunner` run.

    Cases are appended as they finish, so serializing at any moment
    yields a valid (partial) report; ``complete`` flips to True only when
    the runner reached the end of the suite.
    """

    def __init__(self, meta: Optional[Mapping] = None) -> None:
        self.meta: dict = dict(meta or {})
        self.cases: list[CaseResult] = []
        self.complete = False

    def add(self, case: CaseResult) -> None:
        self.cases.append(case)

    @property
    def passed(self) -> bool:
        """True when every recorded case passed (and none is pending)."""
        return all(case.passed for case in self.cases)

    def summary(self) -> dict:
        """Totals over the recorded cases (JSON-ready)."""
        failed = [case for case in self.cases if not case.passed]
        return {
            "cases": len(self.cases),
            "passed": len(self.cases) - len(failed),
            "failed": len(failed),
            "scenarios": len({case.scenario for case in self.cases}),
            "assertions": sum(len(case.assertions) for case in self.cases),
            "wall_s": round(sum(case.wall_s for case in self.cases), 6),
        }

    def failures(self) -> list[tuple[CaseResult, AssertionResult]]:
        """Every failing (case, assertion) pair, plus errored cases."""
        out = []
        for case in self.cases:
            for assertion in case.assertions:
                if not assertion.passed:
                    out.append((case, assertion))
            if case.error is not None:
                out.append((case, AssertionResult(
                    "case-error", False, case.error)))
        return out

    def to_jsonable(self) -> dict:
        return {
            "schema": SCHEMA_VERSION,
            "kind": REPORT_KIND,
            "meta": dict(self.meta),
            "complete": self.complete,
            "summary": self.summary(),
            "cases": [case.as_dict() for case in self.cases],
        }

    def save(self, sink: Union[str, TextIO]) -> None:
        """Write the report as JSON (valid even when partial)."""
        text = json.dumps(self.to_jsonable(), indent=2, sort_keys=True)
        if isinstance(sink, str):
            with open(sink, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
        else:
            sink.write(text + "\n")

    @classmethod
    def load(cls, source: Union[str, TextIO]) -> "EvalReport":
        """Read a saved report back (schema-checked)."""
        if isinstance(source, str):
            with open(source, encoding="utf-8") as handle:
                data = json.load(handle)
        else:
            data = json.load(source)
        if data.get("schema") != SCHEMA_VERSION:
            raise ReproError(
                f"eval report has schema {data.get('schema')}; this build "
                f"reads schema {SCHEMA_VERSION}")
        if data.get("kind") != REPORT_KIND:
            raise ReproError(
                f"not an eval report: kind={data.get('kind')!r}")
        report = cls(meta=data.get("meta"))
        report.complete = bool(data.get("complete", False))
        for entry in data.get("cases", ()):
            case = CaseResult(
                scenario=entry["scenario"], engine=entry["engine"],
                plan=entry["plan"], wall_s=entry.get("wall_s", 0.0),
                error=entry.get("error"))
            for a in entry.get("assertions", ()):
                case.assertions.append(AssertionResult(
                    name=a["name"], passed=a["passed"],
                    detail=a.get("detail", ""),
                    measurements=dict(a.get("measurements", {}))))
            report.add(case)
        return report


def format_report(report: EvalReport, width: int = 72) -> str:
    """Text rendering: one line per case, failure details, totals.

    Same presentation family as
    :func:`~repro.datalog.trace.format_profile` and
    :func:`~repro.core.choicelog.format_divergence`.
    """
    lines = ["EVAL REPORT"]
    for case in report.cases:
        verdict = "ok" if case.passed else "FAIL"
        label = f"{case.scenario} [{case.engine}/{case.plan}]"
        n = len(case.assertions)
        lines.append(f"  {label.ljust(width - 22)[:width - 22]} "
                     f"{n:3d} assertion(s)  {verdict}")
    for case, assertion in report.failures():
        lines.append(f"  FAIL {case.scenario} [{case.engine}/{case.plan}] "
                     f"{assertion.name}: {assertion.detail}")
    s = report.summary()
    status = "PASS" if report.passed else "FAIL"
    if not report.complete:
        status += " (incomplete run)"
    lines.append(
        f"total: {s['cases']} case(s) over {s['scenarios']} scenario(s), "
        f"{s['assertions']} assertion(s), {s['failed']} failure(s), "
        f"{s['wall_s']:.2f}s — {status}")
    return "\n".join(lines)


__all__ = ["REPORT_KIND", "AssertionResult", "CaseResult", "EvalReport",
           "format_report"]
