"""Declarative scenarios: a program, a workload, and typed assertions.

A :class:`Scenario` bundles everything needed to *verify* one workload
shape end-to-end: the IDLOG program text, a deterministic database
builder, the output predicates, and a list of assertions drawn from a
small typed vocabulary:

* :class:`ExactAnswer` — the canonical run's answer equals an expected
  relation (deterministic queries);
* :class:`AnswerSetEquals` — the *full* answer set (every perfect model)
  matches a predicate (small non-deterministic queries);
* :class:`AnswerInvariant` — a property every sampled answer must have
  (e.g. "the sample is a subset of ``emp``");
* :class:`GroupCardinality` — the exactly-k-per-group invariant of the
  paper's sampling queries, checked on every seeded draw;
* :class:`UniformSelection` — **statistical**: chi-square tolerance
  check that per-tuple selection counts across many seeds are uniform
  (see :mod:`repro.eval.stats`);
* :class:`ChoiceStability` — same-seed draws produce identical
  :class:`~repro.core.choicelog.ChoiceLog` digests, and a recorded log
  replays to the identical answer;
* :class:`PerfEnvelope` — the canonical run stays inside bounds on wall
  time and the deterministic :class:`~repro.datalog.seminaive.EvalStats`
  counters.

Assertions run against a :class:`ScenarioContext`, which lazily builds
and caches the database, the engines of the engine×plan matrix, the
canonical run, and the per-seed sample draws — so several assertions on
one case share evaluations instead of re-running them.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Iterable, Optional, Sequence

from ..core.choicelog import ChoiceLog
from ..core.engine import IdlogEngine
from ..datalog.database import Database
from ..datalog.engine import EvalResult
from ..datalog.executor import BATCH, INTERP
from ..errors import ReproError
from .report import AssertionResult
from .stats import selection_chi_square

#: The engine×plan matrix a suite is exercised across.
ENGINES = (BATCH, INTERP)
PLANS = ("greedy", "cost")

#: Default sampling seeds for statistical assertions (>= 20, per the
#: acceptance bar; the runner's quick profile trims this).
DEFAULT_SEEDS = tuple(range(40))


def _fmt_rows(rows: Iterable[tuple], limit: int = 4) -> str:
    rendered = sorted(map(str, rows))
    if not rendered:
        return "-"
    return ", ".join(rendered[:limit]) \
        + ("…" if len(rendered) > limit else "")


@dataclass(frozen=True)
class SelectionSpec:
    """How a scenario's sampled answers map back onto sampling blocks.

    The statistical and cardinality assertions both need the same two
    views: the *population* (block key -> items the sampler chose from)
    and, per evaluation, the *chosen* items.

    Attributes:
        blocks: db -> {block key: sequence of items}.
        selected: (EvalResult, db) -> the items that run selected.
        k: Selections per block (blocks with fewer than k items are
            selected entirely, matching the paper's semantics).
    """

    blocks: Callable[[Database], dict]
    selected: Callable[[EvalResult, Database], Iterable]
    k: int


class Assertion:
    """Base class: a named check against a :class:`ScenarioContext`.

    Attributes:
        name: Stable label used in reports.
        matrix: Run this assertion on *every* engine×plan combination
            (cheap checks); assertions with ``matrix=False`` run on the
            primary combination only (statistical / perf checks whose
            cost scales with seeds).
        statistical: Subject to the runner's ``--seeds`` trimming and
            the ``statistical`` pytest marker.
    """

    name = "assertion"
    matrix = True
    statistical = False

    def check(self, ctx: "ScenarioContext") -> AssertionResult:
        raise NotImplementedError

    def _pass(self, detail: str = "", **measurements) -> AssertionResult:
        return AssertionResult(self.name, True, detail, measurements)

    def _fail(self, detail: str, **measurements) -> AssertionResult:
        return AssertionResult(self.name, False, detail, measurements)


@dataclass(frozen=True)
class Scenario:
    """One declarative verification scenario.

    Attributes:
        name: Unique suite-level identifier.
        description: One-line intent ("what semantics does this pin").
        program: IDLOG source text.
        workload: Zero-argument deterministic database builder (bake the
            workload seed into the closure so every run sees the same
            database; sampling seeds vary the *ID choices*, not the
            data).
        queries: Output predicates, primary first.
        assertions: The checks to run.
        seeds: Sampling seeds statistical assertions draw under.
        tags: Free-form labels; ``slow`` excludes a scenario from the
            quick profile.
    """

    name: str
    description: str
    program: str
    workload: Callable[[], Database]
    queries: tuple[str, ...]
    assertions: tuple[Assertion, ...]
    seeds: tuple[int, ...] = DEFAULT_SEEDS
    tags: frozenset[str] = frozenset()

    @property
    def query(self) -> str:
        """The primary output predicate."""
        return self.queries[0]


class ScenarioContext:
    """Cached evaluation state for one (scenario, engine, plan) case."""

    def __init__(self, scenario: Scenario, engine: str = BATCH,
                 plan: str = "greedy",
                 seeds: Optional[Sequence[int]] = None) -> None:
        self.scenario = scenario
        self.engine_mode = engine
        self.plan_mode = plan
        self.seeds = tuple(seeds if seeds is not None else scenario.seeds)
        self._db: Optional[Database] = None
        self._engine: Optional[IdlogEngine] = None
        self._canonical: Optional[EvalResult] = None
        self._samples: dict[int, EvalResult] = {}

    @property
    def db(self) -> Database:
        if self._db is None:
            self._db = self.scenario.workload()
        return self._db

    @property
    def engine(self) -> IdlogEngine:
        if self._engine is None:
            self._engine = IdlogEngine(self.scenario.program,
                                       plan=self.plan_mode,
                                       engine=self.engine_mode)
        return self._engine

    def canonical(self) -> EvalResult:
        """The run under the canonical (deterministic) assignment."""
        if self._canonical is None:
            self._canonical = self.engine.run(self.db)
        return self._canonical

    def sample(self, seed: int) -> EvalResult:
        """One seeded draw (cached per seed)."""
        if seed not in self._samples:
            self._samples[seed] = self.engine.one(self.db, seed=seed)
        return self._samples[seed]

    def record(self, seed: int) -> tuple[EvalResult, ChoiceLog]:
        """A fresh (uncached) seeded draw with its choice log."""
        log = ChoiceLog(meta={"scenario": self.scenario.name, "seed": seed})
        result = self.engine.one(self.db, seed=seed, record=log)
        return result, log


def log_digest(log: ChoiceLog) -> str:
    """Order-sensitive digest of every decision in a choice log."""
    payload = "\n".join(
        f"{rec.pred}|{rec.group}|{rec.block!r}|{rec.ordering!r}"
        f"|{rec.tid_limit}"
        for rec in log)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


# -- exact / invariant assertions -------------------------------------------


class ExactAnswer(Assertion):
    """The canonical answer for one predicate equals an expected relation.

    ``expected`` is either an iterable of tuples or a callable
    ``db -> iterable of tuples`` (computed mirrors, e.g. a python
    transitive closure).
    """

    name = "exact-answer"

    def __init__(self, expected, pred: Optional[str] = None) -> None:
        self._expected = expected
        self._pred = pred

    def check(self, ctx: ScenarioContext) -> AssertionResult:
        pred = self._pred or ctx.scenario.query
        expected = self._expected(ctx.db) if callable(self._expected) \
            else self._expected
        expected = frozenset(tuple(row) for row in expected)
        found = ctx.canonical().tuples(pred)
        if found == expected:
            return self._pass(f"{pred}: {len(found)} tuple(s) as expected",
                              tuples=len(found))
        missing = expected - found
        extra = found - expected
        return self._fail(
            f"{pred}: {len(missing)} missing (e.g. {_fmt_rows(missing)}), "
            f"{len(extra)} extra (e.g. {_fmt_rows(extra)})",
            missing=len(missing), extra=len(extra))


class AnswerSetEquals(Assertion):
    """The FULL answer set matches a predicate over sets of answers.

    ``expected`` is a callable ``db -> collection of answers`` (each an
    iterable of tuples); enumeration is exact, so keep the input small.
    """

    name = "answer-set"
    matrix = False  # enumeration is exponential; once is enough

    def __init__(self, expected, pred: Optional[str] = None,
                 max_branches: int = 200_000) -> None:
        self._expected = expected
        self._pred = pred
        self._max_branches = max_branches

    def check(self, ctx: ScenarioContext) -> AssertionResult:
        pred = self._pred or ctx.scenario.query
        expected = frozenset(
            frozenset(tuple(row) for row in answer)
            for answer in self._expected(ctx.db))
        found = ctx.engine.answers(ctx.db, pred, self._max_branches)
        if found == expected:
            return self._pass(f"{pred}: {len(found)} answer(s) as expected",
                              answers=len(found))
        return self._fail(
            f"{pred}: {len(found)} answer(s), expected {len(expected)} "
            f"({len(found - expected)} unexpected, "
            f"{len(expected - found)} missing)",
            answers=len(found), expected=len(expected))


class AnswerInvariant(Assertion):
    """A property every run must satisfy (canonical + every seeded draw).

    ``predicate(result, db)`` returns None when the invariant holds, or
    a failure message.
    """

    def __init__(self, label: str,
                 predicate: Callable[[EvalResult, Database],
                                     Optional[str]]) -> None:
        self.name = f"invariant:{label}"
        self._predicate = predicate

    def check(self, ctx: ScenarioContext) -> AssertionResult:
        failure = self._predicate(ctx.canonical(), ctx.db)
        if failure:
            return self._fail(f"canonical run: {failure}")
        checked = 1
        for seed in ctx.seeds:
            failure = self._predicate(ctx.sample(seed), ctx.db)
            if failure:
                return self._fail(f"seed {seed}: {failure}", seed=seed)
            checked += 1
        return self._pass(f"held on {checked} run(s)", runs=checked)


class GroupCardinality(Assertion):
    """Every draw selects exactly ``min(k, |block|)`` items per block."""

    name = "group-cardinality"

    def __init__(self, spec: SelectionSpec) -> None:
        self._spec = spec

    def _check_one(self, result: EvalResult, db: Database,
                   blocks: dict) -> Optional[str]:
        chosen = list(self._spec.selected(result, db))
        if len(set(chosen)) != len(chosen):
            return "selected items are not distinct"
        by_block: dict = {key: 0 for key in blocks}
        membership = {item: key for key, items in blocks.items()
                      for item in items}
        for item in chosen:
            key = membership.get(item)
            if key is None:
                return f"selected item {item!r} is outside every block"
            by_block[key] += 1
        for key, items in blocks.items():
            want = min(self._spec.k, len(items))
            if by_block[key] != want:
                return (f"block {key!r}: selected {by_block[key]} "
                        f"item(s), expected {want}")
        return None

    def check(self, ctx: ScenarioContext) -> AssertionResult:
        blocks = self._spec.blocks(ctx.db)
        failure = self._check_one(ctx.canonical(), ctx.db, blocks)
        if failure:
            return self._fail(f"canonical run: {failure}")
        for seed in ctx.seeds:
            failure = self._check_one(ctx.sample(seed), ctx.db, blocks)
            if failure:
                return self._fail(f"seed {seed}: {failure}", seed=seed)
        return self._pass(
            f"exactly-k held over {len(blocks)} block(s) × "
            f"{len(ctx.seeds) + 1} run(s)",
            blocks=len(blocks), runs=len(ctx.seeds) + 1, k=self._spec.k)


# -- statistical assertions --------------------------------------------------


class UniformSelection(Assertion):
    """Chi-square tolerance check that sampling is uniform across seeds.

    Accumulates per-item selection counts over the scenario's seeds and
    rejects when the finite-population-corrected Pearson statistic is
    implausible under uniformity (``p < alpha``).  ``alpha`` defaults to
    1e-3: across a whole suite run the false-alarm rate stays well under
    a percent, while grossly biased samplers (e.g. a constant assignment)
    land at p ~ 0.
    """

    name = "uniform-selection"
    matrix = False
    statistical = True

    def __init__(self, spec: SelectionSpec, alpha: float = 1e-3,
                 min_seeds: int = 20) -> None:
        self._spec = spec
        self._alpha = alpha
        self._min_seeds = min_seeds

    def check(self, ctx: ScenarioContext) -> AssertionResult:
        if len(ctx.seeds) < self._min_seeds:
            raise ReproError(
                f"uniform-selection needs >= {self._min_seeds} seeds, "
                f"got {len(ctx.seeds)}")
        counts: dict = {}
        for seed in ctx.seeds:
            for item in self._spec.selected(ctx.sample(seed), ctx.db):
                counts[item] = counts.get(item, 0) + 1
        blocks = self._spec.blocks(ctx.db)
        result = selection_chi_square(counts, blocks, self._spec.k,
                                      trials=len(ctx.seeds))
        measurements = result.as_dict()
        measurements["alpha"] = self._alpha
        if result.uniform_at(self._alpha):
            return self._pass(
                f"uniform: chi2={result.statistic:.2f} df={result.df} "
                f"p={result.p_value:.4f} over {result.trials} seed(s)",
                **measurements)
        return self._fail(
            f"uniformity rejected: chi2={result.statistic:.2f} "
            f"df={result.df} p={result.p_value:.3g} < alpha={self._alpha}",
            **measurements)


def _choice_space(log: ChoiceLog) -> int:
    """Number of distinct ordering combinations a log's run drew from.

    Per recorded block: ``P(b, L)`` falling-factorial orderings where
    ``b`` is the block size and ``L`` the recorded (possibly
    tid-limited) ordering length.  Capped at 10**9 — callers only need
    "is this space big".
    """
    total = 1
    for rec in log:
        ways = 1
        for i in range(len(rec.ordering)):
            ways *= rec.block_size - i
        total *= max(ways, 1)
        if total >= 10 ** 9:
            return 10 ** 9
    return total


class ChoiceStability(Assertion):
    """Cross-seed reproducibility via :class:`ChoiceLog` digests.

    Three guarantees, per probe seed: (1) two draws under the same seed
    record identical choice logs; (2) replaying the recorded log
    reproduces the identical answer relations; (3) at least two distinct
    seeds exist whose logs differ — i.e. the sampler is actually
    sampling (skipped when the program has no ID-atoms).
    """

    name = "choice-stability"
    matrix = False

    def __init__(self, probe_seeds: tuple[int, ...] = (0, 1, 2)) -> None:
        self._probe_seeds = probe_seeds

    def check(self, ctx: ScenarioContext) -> AssertionResult:
        digests = {}
        for seed in self._probe_seeds:
            result_a, log_a = ctx.record(seed)
            _, log_b = ctx.record(seed)
            da, db_ = log_digest(log_a), log_digest(log_b)
            if da != db_:
                return self._fail(
                    f"seed {seed}: two same-seed draws recorded different "
                    f"choice logs ({da} vs {db_})", seed=seed)
            replayed = ctx.engine.replay(ctx.db, log_a)
            for pred in ctx.scenario.queries:
                if replayed.tuples(pred) != result_a.tuples(pred):
                    return self._fail(
                        f"seed {seed}: replay of the recorded log gave a "
                        f"different {pred} relation", seed=seed, pred=pred)
            digests[seed] = da
        if not ctx.engine.program.has_id_atoms():
            return self._pass("no ID-atoms; stability trivially holds",
                              digests=digests)
        if len(self._probe_seeds) > 1 and len(set(digests.values())) == 1 \
                and _choice_space(log_a) >= 1000:
            # All probe seeds chose identically.  Only flag it when the
            # space of possible orderings is large enough that agreement
            # by chance is negligible (< 1e-6 for two extra seeds).
            return self._fail(
                f"{len(self._probe_seeds)} distinct seeds all drew "
                "identical ID choices — the sampler looks constant",
                digests=digests)
        return self._pass(
            f"replay-stable over seeds {list(self._probe_seeds)}; "
            f"{len(set(digests.values()))} distinct choice digest(s)",
            digests=digests)


class PerfEnvelope(Assertion):
    """The canonical run stays inside wall/counter bounds.

    Counter bounds (``max_firings``, ``max_derived``) are deterministic
    and therefore exact regressions gates; the wall bound is a generous
    backstop against pathological blowups, not a benchmark.
    """

    name = "perf-envelope"
    matrix = False

    def __init__(self, max_wall_s: Optional[float] = None,
                 max_firings: Optional[int] = None,
                 max_derived: Optional[int] = None) -> None:
        self._max_wall_s = max_wall_s
        self._max_firings = max_firings
        self._max_derived = max_derived

    def check(self, ctx: ScenarioContext) -> AssertionResult:
        start = perf_counter()
        fresh = ctx.engine.run(ctx.db)  # timed evaluation, not the cache
        wall = perf_counter() - start
        stats = fresh.stats
        measurements = {"wall_s": round(wall, 6),
                        "firings": stats.firings,
                        "derived": stats.total_derived}
        if self._max_wall_s is not None and wall > self._max_wall_s:
            return self._fail(
                f"wall {wall:.3f}s exceeds envelope {self._max_wall_s}s",
                **measurements)
        if self._max_firings is not None \
                and stats.firings > self._max_firings:
            return self._fail(
                f"{stats.firings} firings exceed envelope "
                f"{self._max_firings}", **measurements)
        if self._max_derived is not None \
                and stats.total_derived > self._max_derived:
            return self._fail(
                f"{stats.total_derived} derived tuples exceed envelope "
                f"{self._max_derived}", **measurements)
        return self._pass(
            f"wall={wall:.3f}s firings={stats.firings} "
            f"derived={stats.total_derived}", **measurements)


__all__ = [
    "ENGINES", "PLANS", "DEFAULT_SEEDS", "Assertion", "AnswerInvariant",
    "AnswerSetEquals", "ChoiceStability", "ExactAnswer", "GroupCardinality",
    "PerfEnvelope", "Scenario", "ScenarioContext", "SelectionSpec",
    "UniformSelection", "log_digest",
]
