"""The built-in scenario suite: the paper's workloads, verified.

Ten scenarios spanning the semantics the paper showcases — stratified
per-group sampling over skewed (Zipf / mixture) group sizes, man-woman
A/B assignment, top-k-per-group, negation and aggregate interactions
with ID-relations, whole-relation sampling, exact answer-set
enumeration, and a pure-Datalog control — each pinned by the typed
assertions of :mod:`repro.eval.scenario`.  ``repro-idlog eval`` runs
this suite; the ``scenarios`` CI job runs its quick profile.
"""

from __future__ import annotations

from itertools import combinations

from .. import workloads
from ..datalog.database import Database
from ..datalog.engine import EvalResult
from .scenario import (AnswerInvariant, AnswerSetEquals, ChoiceStability,
                       ExactAnswer, GroupCardinality, PerfEnvelope,
                       Scenario, SelectionSpec, UniformSelection)

# -- shared extractors -------------------------------------------------------


def _emp_blocks(db: Database) -> dict:
    """Department blocks of ``emp`` as (name, dept) items."""
    blocks: dict = {}
    for row in db.relation("emp"):
        blocks.setdefault((row[1],), []).append((row[0], row[1]))
    return {key: tuple(sorted(items)) for key, items in blocks.items()}


def _emp_selected(pred: str):
    def selected(result: EvalResult, db: Database):
        return [(name, dept) for name, dept in result.tuples(pred)]
    return selected


def _subset_of(pred: str, base: str, position: int = 0):
    """Invariant: every value in ``pred`` appears in ``base``."""
    def predicate(result: EvalResult, db: Database):
        names = {row[position] for row in db.relation(base)}
        stray = {row[position] for row in result.tuples(pred)} - names
        if stray:
            return (f"{pred} contains value(s) outside {base}: "
                    f"{sorted(stray)[:4]}")
        return None
    return predicate


# -- scenario builders -------------------------------------------------------


def zipf_stratified_k2() -> Scenario:
    """Two samples per department over a Zipf-skewed ``emp``."""
    spec = SelectionSpec(blocks=_emp_blocks,
                         selected=_emp_selected("sample"), k=2)
    return Scenario(
        name="zipf-stratified-k2",
        description="exactly-2-per-dept sampling over Zipf group sizes",
        program="sample(N, D) :- emp[2](N, D, T), T < 2.",
        workload=lambda: workloads.zipf_employees(6, 48, seed=7),
        queries=("sample",),
        assertions=(
            AnswerInvariant("sample-subset-of-emp",
                            _subset_of("sample", "emp")),
            GroupCardinality(spec),
            UniformSelection(spec),
            ChoiceStability(),
        ))


def mixture_one_rep() -> Scenario:
    """One representative per department over bimodal group sizes."""
    spec = SelectionSpec(blocks=_emp_blocks,
                         selected=_emp_selected("rep"), k=1)
    return Scenario(
        name="mixture-one-rep",
        description="one-per-group sampling over mixture-model sizes "
                    "(Example 4 shape)",
        program="rep(N, D) :- emp[2](N, D, 0).",
        workload=lambda: workloads.mixture_employees(2, 6, 12, 3, seed=11),
        queries=("rep",),
        assertions=(
            GroupCardinality(spec),
            UniformSelection(spec),
            ChoiceStability(),
        ))


def man_woman_ab() -> Scenario:
    """The paper's Example 2: a two-way A/B partition of a population."""
    def blocks(db: Database) -> dict:
        return {(x,): ((x, "male"), (x, "female"))
                for (x,) in db.relation("person")}

    def selected(result: EvalResult, db: Database):
        return [(x, "male") for (x,) in result.tuples("man")] \
            + [(x, "female") for (x,) in result.tuples("woman")]

    def partition(result: EvalResult, db: Database):
        men = result.tuples("man")
        women = result.tuples("woman")
        persons = {row for row in db.relation("person")}
        if men & women:
            return f"{len(men & women)} person(s) are both man and woman"
        if (men | women) != persons:
            return (f"partition incomplete: {len(men | women)} of "
                    f"{len(persons)} person(s) assigned")
        return None

    spec = SelectionSpec(blocks=blocks, selected=selected, k=1)
    return Scenario(
        name="man-woman-ab",
        description="A/B assignment via two-way guess blocks (Example 2)",
        program="""
            sex_guess(X, male) :- person(X).
            sex_guess(X, female) :- person(X).
            man(X) :- sex_guess[1](X, male, 1).
            woman(X) :- sex_guess[1](X, female, 1).
        """,
        workload=lambda: workloads.people(40),
        queries=("man", "woman"),
        assertions=(
            AnswerInvariant("man-woman-partition", partition),
            GroupCardinality(spec),
            UniformSelection(spec),
            ChoiceStability(),
        ))


def top2_salary_per_dept() -> Scenario:
    """Deterministic top-2-by-salary per department via negation."""
    def expected(db: Database):
        rows = list(db.relation("emp"))
        out = []
        for name, dept, salary in rows:
            higher = {m for m, d, s in rows if d == dept and salary < s}
            if len(higher) < 2:
                out.append((name, dept))
        return out

    return Scenario(
        name="top2-salary-per-dept",
        description="top-k-per-group as negation over salary comparisons",
        program="""
            beats(M, N) :- emp(N, D, S), emp(M, D, T), S < T.
            beaten_twice(N) :- beats(M1, N), beats(M2, N), M1 != M2.
            top2(N, D) :- emp(N, D, S), not beaten_twice(N).
        """,
        workload=lambda: workloads.employees(5, 4, salary_range=(50, 150),
                                             seed=3),
        queries=("top2",),
        assertions=(
            ExactAnswer(expected),
            PerfEnvelope(max_wall_s=10.0),
        ))


def sample_after_negation() -> Scenario:
    """Sampling over a negation-derived IDB relation."""
    def juniors(db: Database) -> dict:
        blocks: dict = {}
        for name, dept, salary in db.relation("emp"):
            if salary <= 80:
                blocks.setdefault((dept,), []).append((name, dept))
        return {key: tuple(sorted(items)) for key, items in blocks.items()}

    def junior_subset(result: EvalResult, db: Database):
        allowed = {item for items in juniors(db).values()
                   for item in items}
        stray = set(result.tuples("pick")) - allowed
        if stray:
            return f"picked non-junior(s): {sorted(stray)[:4]}"
        return None

    spec = SelectionSpec(blocks=juniors,
                         selected=_emp_selected("pick"), k=1)
    return Scenario(
        name="sample-after-negation",
        description="one junior per dept, juniors defined by negation",
        program="""
            senior(N, D) :- emp(N, D, S), 80 < S.
            junior(N, D) :- emp(N, D, S), not senior(N, D).
            pick(N, D) :- junior[2](N, D, 0).
        """,
        workload=lambda: workloads.employees(4, 3, salary_range=(40, 120),
                                             seed=5),
        queries=("pick",),
        assertions=(
            AnswerInvariant("pick-is-junior", junior_subset),
            GroupCardinality(spec),
            UniformSelection(spec),
            ChoiceStability(),
        ))


def dept_size_via_tids() -> Scenario:
    """The §5 counting construction: group sizes from max tid + 1."""
    def expected(db: Database):
        sizes: dict = {}
        for _, dept in db.relation("emp"):
            sizes[dept] = sizes.get(dept, 0) + 1
        return [(dept, count) for dept, count in sizes.items()]

    def assignment_independent(result: EvalResult, db: Database):
        want = frozenset(expected(db))
        got = result.tuples("dept_size")
        if got != want:
            return (f"dept_size depends on the drawn assignment: "
                    f"{len(got ^ want)} differing tuple(s)")
        return None

    return Scenario(
        name="dept-size-via-tids",
        description="deterministic aggregate built from the "
                    "non-deterministic tid primitive",
        program="""
            has_tid(D, T) :- emp[2](N, D, T).
            smaller(D, T) :- has_tid(D, T), has_tid(D, T2), T < T2.
            max_tid(D, T) :- has_tid(D, T), not smaller(D, T).
            dept_size(D, C) :- max_tid(D, T), C = T + 1.
        """,
        workload=lambda: workloads.zipf_employees(5, 25, seed=2),
        queries=("dept_size",),
        assertions=(
            ExactAnswer(expected),
            AnswerInvariant("assignment-independent",
                            assignment_independent),
            ChoiceStability(),
        ))


def global_sample_3() -> Scenario:
    """Three samples from the whole relation (the ungrouped ``p[∅]``)."""
    def blocks(db: Database) -> dict:
        return {(): tuple(sorted(name for name, _ in db.relation("emp")))}

    def selected(result: EvalResult, db: Database):
        return [name for (name,) in result.tuples("pick")]

    spec = SelectionSpec(blocks=blocks, selected=selected, k=3)
    return Scenario(
        name="global-sample-3",
        description="k-of-n sampling with the empty grouping",
        program="pick(N) :- emp[](N, D, T), T < 3.",
        workload=lambda: workloads.employees(4, 3, seed=9),
        queries=("pick",),
        assertions=(
            AnswerInvariant("pick-subset-of-emp",
                            _subset_of("pick", "emp")),
            GroupCardinality(spec),
            UniformSelection(spec),
            ChoiceStability(),
        ))


def subset_exact_answers() -> Scenario:
    """Example 2's guess-and-select subset: the answer set is 2^n."""
    def expected(db: Database):
        names = sorted(x for (x,) in db.relation("person"))
        return [
            [(x,) for x in combo]
            for size in range(len(names) + 1)
            for combo in combinations(names, size)]

    return Scenario(
        name="subset-exact-answers",
        description="exact answer-set enumeration of the arbitrary-subset "
                    "query",
        program="""
            guess(X, yes) :- person(X).
            guess(X, no) :- person(X).
            subset(X) :- guess[1](X, yes, 1).
        """,
        workload=lambda: workloads.people(4),
        queries=("subset",),
        assertions=(
            AnswerSetEquals(expected),
            AnswerInvariant("subset-of-person",
                            _subset_of("subset", "person")),
        ))


def chain_reach() -> Scenario:
    """Pure-Datalog control: recursive reachability, exact and bounded."""
    def expected(db: Database):
        n = len(db.relation("edge"))
        return [(f"n{i}", f"n{j}")
                for i in range(n + 1) for j in range(i + 1, n + 1)]

    return Scenario(
        name="chain-reach",
        description="deterministic recursion control (no ID-atoms)",
        program="""
            reach(X, Y) :- edge(X, Y).
            reach(X, Y) :- edge(X, Z), reach(Z, Y).
        """,
        workload=lambda: workloads.chain_graph(40),
        queries=("reach",),
        assertions=(
            ExactAnswer(expected),
            PerfEnvelope(max_wall_s=10.0, max_derived=5000),
        ))


def zipf_large_k3() -> Scenario:
    """Scale probe: 1200 rows, 30 Zipf departments, k=3 (slow profile)."""
    spec = SelectionSpec(blocks=_emp_blocks,
                         selected=_emp_selected("sample"), k=3)
    return Scenario(
        name="zipf-large-k3",
        description="stratified sampling at scale over heavy Zipf skew",
        program="sample(N, D) :- emp[2](N, D, T), T < 3.",
        workload=lambda: workloads.zipf_employees(30, 1200, seed=13),
        queries=("sample",),
        seeds=tuple(range(25)),
        tags=frozenset({"slow"}),
        assertions=(
            GroupCardinality(spec),
            UniformSelection(spec),
            ChoiceStability(),
            PerfEnvelope(max_wall_s=60.0),
        ))


def builtin_suite() -> list[Scenario]:
    """The full built-in suite, in documentation order."""
    return [
        zipf_stratified_k2(),
        mixture_one_rep(),
        man_woman_ab(),
        top2_salary_per_dept(),
        sample_after_negation(),
        dept_size_via_tids(),
        global_sample_3(),
        subset_exact_answers(),
        chain_reach(),
        zipf_large_k3(),
    ]


__all__ = ["builtin_suite"] + [
    "zipf_stratified_k2", "mixture_one_rep", "man_woman_ab",
    "top2_salary_per_dept", "sample_after_negation", "dept_size_via_tids",
    "global_sample_3", "subset_exact_answers", "chain_reach",
    "zipf_large_k3",
]
