"""The scenario runner: suites × the engine×plan matrix → EvalReports.

:class:`ScenarioRunner` executes every scenario of a suite under every
requested (engine, plan) combination, partitioning the assertion work
the way the assertions themselves declare it:

* ``matrix=True`` assertions (exact answers, invariants, cardinality)
  run on every combination — they are cheap and catch engine-specific
  bugs;
* ``matrix=False`` assertions (chi-square uniformity, choice stability,
  perf envelopes) run once, on the primary combination, because their
  cost scales with the seed count;
* a synthetic **differential** case per scenario cross-checks the
  combinations against each other: canonical answers must be identical
  everywhere, and for non-deterministic programs one recorded
  :class:`~repro.core.choicelog.ChoiceLog` must replay to identical
  answers under every combination (digest-checked by the replay
  machinery itself).

Reports flush to disk inside a ``finally:`` — a suite that dies halfway
still leaves a valid, schema-stamped partial report, matching the
``run --trace`` / ``--metrics`` contract (PR 3/4).
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Optional, Sequence, TextIO, Union

from ..datalog.executor import check_engine_mode
from ..datalog.planner import check_plan_mode
from ..errors import ReproError
from .report import AssertionResult, CaseResult, EvalReport
from .scenario import (ENGINES, PLANS, Scenario, ScenarioContext,
                       log_digest)

#: Seeds used per statistical scenario in the quick profile.
QUICK_SEEDS = 20


class ScenarioRunner:
    """Executes a scenario suite and accumulates an :class:`EvalReport`.

    Args:
        scenarios: The suite.
        engines: Engine modes to exercise (default both).
        plans: Planner modes to exercise (default both).
        seeds: Override the per-scenario sampling seeds (e.g. trimmed
            for a quick profile); None keeps each scenario's own.
        differential: Emit the cross-combination differential case.
        quick: Quick profile — skip scenarios tagged ``slow`` and trim
            seeds to :data:`QUICK_SEEDS` (unless ``seeds`` overrides).
        meta: Extra report metadata (suite name, CI job, ...).
        progress: Optional callback ``(message: str) -> None`` invoked
            as cases finish (the CLI points this at stderr).
    """

    def __init__(self, scenarios: Sequence[Scenario],
                 engines: Sequence[str] = ENGINES,
                 plans: Sequence[str] = PLANS,
                 seeds: Optional[Sequence[int]] = None,
                 differential: bool = True,
                 quick: bool = False,
                 meta: Optional[dict] = None,
                 progress: Optional[Callable[[str], None]] = None) -> None:
        names = [s.name for s in scenarios]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise ReproError(
                f"duplicate scenario name(s): {sorted(duplicates)}")
        self.scenarios = list(scenarios)
        self.engines = tuple(check_engine_mode(e) for e in engines)
        self.plans = tuple(check_plan_mode(p) for p in plans)
        self.differential = differential
        self.quick = quick
        if seeds is not None:
            self.seeds: Optional[tuple[int, ...]] = tuple(seeds)
        elif quick:
            self.seeds = tuple(range(QUICK_SEEDS))
        else:
            self.seeds = None
        self.meta = dict(meta or {})
        self._progress = progress

    # -- suite execution ---------------------------------------------------

    def run(self, out: Union[str, TextIO, None] = None) -> EvalReport:
        """Run the suite; always flush a (possibly partial) report.

        Args:
            out: Report sink (path or file object).  Written in a
                ``finally:`` so a crash mid-suite still leaves a valid
                partial JSON report on disk.
        """
        report = EvalReport(meta={
            **self.meta,
            "engines": list(self.engines), "plans": list(self.plans),
            "quick": self.quick,
            "scenarios": [s.name for s in self._selected()],
        })
        try:
            for scenario in self._selected():
                self._run_scenario(scenario, report)
            report.complete = True
        finally:
            if out is not None:
                report.save(out)
        return report

    def _selected(self) -> list[Scenario]:
        if not self.quick:
            return self.scenarios
        return [s for s in self.scenarios if "slow" not in s.tags]

    def _note(self, message: str) -> None:
        if self._progress is not None:
            self._progress(message)

    def _seeds_for(self, scenario: Scenario) -> tuple[int, ...]:
        return self.seeds if self.seeds is not None else scenario.seeds

    def _run_scenario(self, scenario: Scenario, report: EvalReport) -> None:
        primary = (self.engines[0], self.plans[0])
        contexts: dict[tuple[str, str], ScenarioContext] = {}
        for engine in self.engines:
            for plan in self.plans:
                ctx = ScenarioContext(scenario, engine=engine, plan=plan,
                                      seeds=self._seeds_for(scenario))
                contexts[(engine, plan)] = ctx
                is_primary = (engine, plan) == primary
                assertions = [
                    a for a in scenario.assertions
                    if a.matrix or is_primary]
                report.add(self._run_case(scenario, ctx, assertions))
                self._note(f"{scenario.name} [{engine}/{plan}] done")
        if self.differential and len(contexts) > 1:
            report.add(self._differential_case(scenario, contexts))
            self._note(f"{scenario.name} [differential] done")

    def _run_case(self, scenario: Scenario, ctx: ScenarioContext,
                  assertions: Sequence) -> CaseResult:
        case = CaseResult(scenario=scenario.name, engine=ctx.engine_mode,
                          plan=ctx.plan_mode)
        start = perf_counter()
        try:
            for assertion in assertions:
                case.assertions.append(assertion.check(ctx))
        except Exception as exc:  # noqa: BLE001 — reported, not swallowed
            case.error = f"{type(exc).__name__}: {exc}"
        case.wall_s = perf_counter() - start
        return case

    # -- the cross-combination differential check --------------------------

    def _differential_case(self, scenario: Scenario,
                           contexts: dict) -> CaseResult:
        case = CaseResult(scenario=scenario.name, engine="matrix",
                          plan="differential")
        start = perf_counter()
        try:
            case.assertions.append(
                self._check_canonical_agreement(scenario, contexts))
            program_has_ids = next(
                iter(contexts.values())).engine.program.has_id_atoms()
            if program_has_ids:
                case.assertions.append(
                    self._check_replay_agreement(scenario, contexts))
        except Exception as exc:  # noqa: BLE001
            case.error = f"{type(exc).__name__}: {exc}"
        case.wall_s = perf_counter() - start
        return case

    def _check_canonical_agreement(self, scenario: Scenario,
                                   contexts: dict) -> AssertionResult:
        """Canonical answers must be identical across every combination."""
        baseline_key = (self.engines[0], self.plans[0])
        baseline = contexts[baseline_key].canonical()
        for (engine, plan), ctx in contexts.items():
            if (engine, plan) == baseline_key:
                continue
            result = ctx.canonical()
            for pred in scenario.queries:
                if result.tuples(pred) != baseline.tuples(pred):
                    delta = len(result.tuples(pred)
                                ^ baseline.tuples(pred))
                    return AssertionResult(
                        "differential-canonical", False,
                        f"{engine}/{plan} disagrees with "
                        f"{'/'.join(baseline_key)} on {pred} "
                        f"({delta} differing tuple(s))",
                        {"engine": engine, "plan": plan, "pred": pred})
        return AssertionResult(
            "differential-canonical", True,
            f"{len(contexts)} combination(s) agree on "
            f"{len(scenario.queries)} predicate(s)",
            {"combinations": len(contexts)})

    def _check_replay_agreement(self, scenario: Scenario,
                                contexts: dict) -> AssertionResult:
        """One recorded log must replay identically everywhere.

        The replay provider digest-checks every block, so a combination
        that reshapes an ID-relation's base fails loudly rather than
        silently diverging.
        """
        seed = self._seeds_for(scenario)[0] if self._seeds_for(scenario) \
            else 0
        primary_ctx = contexts[(self.engines[0], self.plans[0])]
        recorded, log = primary_ctx.record(seed)
        digest = log_digest(log)
        for (engine, plan), ctx in contexts.items():
            replayed = ctx.engine.replay(ctx.db, log)
            for pred in scenario.queries:
                if replayed.tuples(pred) != recorded.tuples(pred):
                    return AssertionResult(
                        "differential-replay", False,
                        f"{engine}/{plan} replayed the recorded choice "
                        f"log to a different {pred} relation",
                        {"engine": engine, "plan": plan, "pred": pred,
                         "log_digest": digest})
        return AssertionResult(
            "differential-replay", True,
            f"choice log {digest} replays identically under "
            f"{len(contexts)} combination(s)",
            {"combinations": len(contexts), "log_digest": digest,
             "seed": seed})


def run_suite(scenarios: Sequence[Scenario],
              out: Union[str, TextIO, None] = None,
              **kwargs) -> EvalReport:
    """One-call convenience: build a runner and run it."""
    return ScenarioRunner(scenarios, **kwargs).run(out)


__all__ = ["QUICK_SEEDS", "ScenarioRunner", "run_suite"]
