"""Statistical verification primitives for the scenario harness.

The signature queries of the paper — ``emp[{2}](N, D, I), I < k`` — are
*non-deterministic*: no exact answer comparison can verify that the
engine samples them correctly.  What CAN be verified is the shape of the
distribution over many seeded runs: under :class:`RandomAssignment`
every ID-function is drawn uniformly, so the selection counts of the
tuples of one block follow the uniform k-of-b sampling-without-
replacement law.  This module provides the chi-square machinery the
:class:`~repro.eval.scenario.UniformSelection` assertion folds those
counts through — pure stdlib, no scipy.

Pearson's statistic for k-of-b sampling needs a finite-population
correction: within one trial the k selections are exclusive, so the
count vector is negatively correlated and the raw statistic
under-disperses by ``(b - k) / (b - 1)``.  :func:`selection_chi_square`
applies the correction per block, after which the summed statistic is
asymptotically chi-square with ``sum(b - 1)`` degrees of freedom.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..errors import ReproError

#: Series/continued-fraction iteration cap (converges in far fewer).
_MAX_ITER = 500
_EPS = 3e-12


def _gamma_p_series(s: float, x: float) -> float:
    """Regularized lower incomplete gamma P(s, x) by power series."""
    term = 1.0 / s
    total = term
    a = s
    for _ in range(_MAX_ITER):
        a += 1.0
        term *= x / a
        total += term
        if abs(term) < abs(total) * _EPS:
            break
    return total * math.exp(-x + s * math.log(x) - math.lgamma(s))


def _gamma_q_contfrac(s: float, x: float) -> float:
    """Regularized upper incomplete gamma Q(s, x) by continued fraction."""
    tiny = 1e-300
    b = x + 1.0 - s
    c = 1.0 / tiny
    d = 1.0 / b
    h = d
    for i in range(1, _MAX_ITER + 1):
        an = -i * (i - s)
        b += 2.0
        d = an * d + b
        if abs(d) < tiny:
            d = tiny
        c = b + an / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < _EPS:
            break
    return h * math.exp(-x + s * math.log(x) - math.lgamma(s))


def chi_square_sf(stat: float, df: int) -> float:
    """Survival function of the chi-square distribution.

    ``P(X >= stat)`` for ``X ~ chi2(df)`` — the p-value of an observed
    Pearson statistic.  Uses the regularized incomplete gamma function
    (series below the ``s + 1`` knee, continued fraction above), accurate
    to ~1e-10 over the ranges the harness exercises.
    """
    if df <= 0:
        raise ReproError(f"chi-square needs positive df, got {df}")
    if stat < 0:
        raise ReproError(f"chi-square statistic must be >= 0, got {stat}")
    if stat == 0:
        return 1.0
    s, x = df / 2.0, stat / 2.0
    if x < s + 1.0:
        return max(0.0, min(1.0, 1.0 - _gamma_p_series(s, x)))
    return max(0.0, min(1.0, _gamma_q_contfrac(s, x)))


def chi_square_statistic(observed: Sequence[float],
                         expected: Sequence[float]) -> float:
    """Plain Pearson ``sum((O - E)^2 / E)`` over matched categories."""
    if len(observed) != len(expected):
        raise ReproError(
            f"observed/expected length mismatch: "
            f"{len(observed)} vs {len(expected)}")
    stat = 0.0
    for obs, exp in zip(observed, expected):
        if exp <= 0:
            raise ReproError(f"expected count must be positive, got {exp}")
        stat += (obs - exp) ** 2 / exp
    return stat


@dataclass(frozen=True)
class ChiSquareResult:
    """Outcome of a chi-square tolerance check.

    Attributes:
        statistic: The (correction-adjusted) Pearson statistic.
        df: Degrees of freedom.
        p_value: ``P(chi2(df) >= statistic)``.
        trials: Number of seeded runs folded in.
        categories: Number of counted items (over all blocks).
    """

    statistic: float
    df: int
    p_value: float
    trials: int
    categories: int

    def uniform_at(self, alpha: float) -> bool:
        """True when uniformity is NOT rejected at significance alpha."""
        return self.p_value >= alpha

    def as_dict(self) -> dict:
        """JSON-ready measurement payload for reports."""
        return {"statistic": round(self.statistic, 6), "df": self.df,
                "p_value": self.p_value, "trials": self.trials,
                "categories": self.categories}


def selection_chi_square(counts: Mapping, blocks: Mapping[object, Iterable],
                         k: int, trials: int) -> ChiSquareResult:
    """Chi-square test that per-block k-of-b selection counts are uniform.

    Args:
        counts: item -> number of trials that selected it.  Items absent
            from the mapping count zero.
        blocks: block key -> the items of that block (the full population
            the sampler chose from).
        k: Selections per block per trial (blocks with ``b <= k`` are
            always selected entirely — zero variance — and are verified
            exactly instead of statistically).
        trials: Number of seeded runs the counts were accumulated over.

    Returns:
        A :class:`ChiSquareResult`; blocks smaller than ``k + 1`` items
        contribute no degrees of freedom.

    Raises:
        ReproError: when a saturated block's counts are not exactly
            ``trials`` (the sampler violated the exactly-k invariant —
            not a statistical failure, a hard bug), or when no block
            leaves any degrees of freedom to test.
    """
    if trials <= 0:
        raise ReproError(f"need at least one trial, got {trials}")
    stat = 0.0
    df = 0
    categories = 0
    for key, members in sorted(blocks.items(), key=lambda kv: repr(kv[0])):
        items = list(members)
        b = len(items)
        if b == 0:
            continue
        categories += b
        if b <= k:
            for item in items:
                got = counts.get(item, 0)
                if got != trials:
                    raise ReproError(
                        f"block {key!r} has {b} item(s) <= k={k}, so "
                        f"{item!r} must be selected every trial; counted "
                        f"{got}/{trials}")
            continue
        expected = trials * k / b
        block_stat = sum(
            (counts.get(item, 0) - expected) ** 2 / expected
            for item in items)
        # Finite-population correction: the k selections within a trial
        # are exclusive, shrinking the count variance by (b-k)/(b-1).
        stat += block_stat * (b - 1) / (b - k)
        df += b - 1
    if df == 0:
        raise ReproError(
            "no block is larger than k; every selection is forced and "
            "there is nothing to test statistically")
    return ChiSquareResult(statistic=stat, df=df,
                           p_value=chi_square_sf(stat, df),
                           trials=trials, categories=categories)


__all__ = ["ChiSquareResult", "chi_square_sf", "chi_square_statistic",
           "selection_chi_square"]
