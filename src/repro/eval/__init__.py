"""Declarative scenario harness with statistical verification.

The paper's signature queries are non-deterministic, so no exact answer
comparison can verify them; this package verifies their *distribution*
instead.  A :class:`Scenario` bundles a program, a seeded workload, and
typed assertions — exact answer predicates for deterministic queries,
chi-square uniformity and choice-log stability for sampling ones, perf
envelopes for both — and :class:`ScenarioRunner` executes suites across
the engine×plan matrix into schema-stamped JSON :class:`EvalReport`\\ s.

Surface: ``repro-idlog eval`` (CLI), :func:`builtin_suite` (the shipped
scenarios), ``docs/SCENARIOS.md`` (the assertion vocabulary).
"""

from .report import (REPORT_KIND, AssertionResult, CaseResult, EvalReport,
                     format_report)
from .runner import QUICK_SEEDS, ScenarioRunner, run_suite
from .scenario import (DEFAULT_SEEDS, ENGINES, PLANS, AnswerInvariant,
                       AnswerSetEquals, Assertion, ChoiceStability,
                       ExactAnswer, GroupCardinality, PerfEnvelope,
                       Scenario, ScenarioContext, SelectionSpec,
                       UniformSelection, log_digest)
from .stats import (ChiSquareResult, chi_square_sf, chi_square_statistic,
                    selection_chi_square)
from .suite import builtin_suite

__all__ = [
    "REPORT_KIND", "QUICK_SEEDS", "DEFAULT_SEEDS", "ENGINES", "PLANS",
    "Assertion", "AssertionResult", "AnswerInvariant", "AnswerSetEquals",
    "CaseResult", "ChiSquareResult", "ChoiceStability", "EvalReport",
    "ExactAnswer", "GroupCardinality", "PerfEnvelope", "Scenario",
    "ScenarioContext", "ScenarioRunner", "SelectionSpec",
    "UniformSelection", "builtin_suite", "chi_square_sf",
    "chi_square_statistic", "format_report", "log_digest", "run_suite",
    "selection_chi_square",
]
