"""Two-sorted terms for IDLOG / DATALOG programs.

The paper (Section 2) works in a two-sorted first-order language: sort *u*
(uninterpreted constants, drawn from a countably infinite universe U) and
sort *i* (the interpreted domain, the natural numbers).  Relation types are
written as 0/1 strings; we model them as tuples over :class:`Sort`.

Ground values are represented by plain Python values — ``str`` for u-constants
and ``int`` for i-constants — so ground tuples are ordinary hashable tuples.
Term objects (:class:`Var`, :class:`Const`) appear only inside program syntax.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union

Value = Union[str, int]
"""A ground value: ``str`` for sort u, ``int`` for sort i."""


class Sort(enum.Enum):
    """The two sorts of the language.

    The paper encodes relation types as 0/1 sequences: 0 for uninterpreted
    attributes and 1 for interpreted (natural number) attributes; ``Sort.U``
    and ``Sort.I`` correspond to 0 and 1 respectively.
    """

    U = 0
    I = 1  # noqa: E741 - the paper's name for the interpreted sort

    def __repr__(self) -> str:
        return f"Sort.{self.name}"


RelationType = tuple[Sort, ...]
"""The type of a relation: one :class:`Sort` per attribute."""


def sort_of_value(value: Value) -> Sort:
    """Return the sort of a ground value.

    >>> sort_of_value("alice")
    Sort.U
    >>> sort_of_value(7)
    Sort.I
    """
    if isinstance(value, bool):
        raise TypeError("booleans are not values of either sort")
    if isinstance(value, int):
        if value < 0:
            raise ValueError(
                f"sort i is the natural numbers; got negative value {value}")
        return Sort.I
    if isinstance(value, str):
        return Sort.U
    raise TypeError(f"not a ground value: {value!r} ({type(value).__name__})")


def type_of_tuple(values: tuple[Value, ...]) -> RelationType:
    """Return the relation type of a ground tuple."""
    return tuple(sort_of_value(v) for v in values)


def parse_type(spec: str) -> RelationType:
    """Parse a 0/1 string (the paper's notation) into a relation type.

    >>> parse_type("001")
    (Sort.U, Sort.U, Sort.I)
    """
    sorts = []
    for ch in spec:
        if ch == "0":
            sorts.append(Sort.U)
        elif ch == "1":
            sorts.append(Sort.I)
        else:
            raise ValueError(f"relation type must be a 0/1 string, got {spec!r}")
    return tuple(sorts)


def format_type(reltype: RelationType) -> str:
    """Render a relation type in the paper's 0/1 notation."""
    return "".join("1" if s is Sort.I else "0" for s in reltype)


@dataclass(frozen=True, slots=True)
class Var:
    """A logic variable.

    Variables are untyped in the syntax; their sort is inferred from use.
    Names conventionally start with an uppercase letter or ``_``.
    """

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Const:
    """A constant term wrapping a ground :data:`Value`."""

    value: Value

    @property
    def sort(self) -> Sort:
        """The sort of the wrapped value."""
        return sort_of_value(self.value)

    def __str__(self) -> str:
        if isinstance(self.value, int):
            return str(self.value)
        if self.value.isidentifier() and self.value[:1].islower():
            return self.value
        return "'" + self.value.replace("\\", "\\\\").replace("'", "\\'") + "'"


Term = Union[Var, Const]
"""A term in program syntax: a variable or a constant."""


def is_ground(term: Term) -> bool:
    """Return ``True`` when the term is a constant."""
    return isinstance(term, Const)


def term_vars(terms: tuple[Term, ...]) -> frozenset[Var]:
    """Return the set of variables occurring in a sequence of terms."""
    return frozenset(t for t in terms if isinstance(t, Var))


def fresh_var_factory(prefix: str = "_V"):
    """Return a callable producing fresh, numbered variables.

    Used by program transformations (choice translation, adornment rewriting)
    that must invent variables not clashing with user variables; the prefix
    starts with ``_`` which the parser reserves.
    """
    counter = 0

    def fresh() -> Var:
        nonlocal counter
        counter += 1
        return Var(f"{prefix}{counter}")

    return fresh
