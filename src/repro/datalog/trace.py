"""Structured tracing and profiling for the evaluation stack.

The planner (PR 1) and the batch executor (PR 2) gave the engine real
performance behavior; this module makes that behavior *observable*.  In
the LDL++ tradition — where much of the system's practical usability came
from being able to see why a plan was slow — every evaluation mode can
emit **span events** (stratum start/end, delta rounds, clause firings,
plan choices, pipeline compilations, ID-relation materializations,
incremental fast-path/fallback decisions) carrying wall time, the same
probe/firing/derived counters :class:`~repro.datalog.seminaive.EvalStats`
totals, and relation cardinalities.

Design rules:

* **The hot path pays nothing by default.**  Instrumented sites guard on
  ``tracer is not None``; with no tracer installed there is no event
  construction, no clock call, nothing.  Enabling even the no-op
  :class:`NullTracer` only adds two clock reads per *clause execution*
  (per fixpoint round, not per tuple), which the benchmark runner keeps
  under a few percent of batch-engine wall time.
* **One emission primitive.**  A tracer is anything with
  ``emit(kind, **fields) -> None``; the event vocabulary is the module's
  ``EV_*`` constants.  This keeps the protocol trivial to implement
  (tests use :class:`CallbackTracer`) and trivial to serialize
  (:class:`JsonTracer` writes one JSON object per event).
* **Profiles are folds over the event stream.**  :class:`TimingTracer`
  aggregates events into per-stratum and per-clause
  :class:`StratumProfile` / :class:`ClauseProfile` rows;
  :func:`format_profile` renders them as the ``EXPLAIN ANALYZE``-style
  table the CLI's ``profile`` command prints.

Tracers reach an evaluation either explicitly (the ``tracer=`` knob on
:class:`~repro.datalog.engine.DatalogEngine`,
:class:`~repro.core.engine.IdlogEngine`,
:class:`~repro.datalog.incremental.IncrementalEngine`,
:class:`~repro.datalog.topdown.TopDownEngine` and
:func:`~repro.datalog.seminaive.evaluate`) or ambiently via
:func:`use_tracer`, which installs a process-wide default picked up at
evaluation time — how the benchmark runner profiles kernels it does not
construct itself.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional, Protocol, TextIO, Union

#: Format version stamped on every serialized observability artifact —
#: each :class:`JsonTracer` event, :meth:`Profile.as_dict`, and the
#: metrics snapshot (:mod:`repro.datalog.metrics`).  Consumers (the
#: benchmark trajectory comparator, dashboards) check it to detect
#: format drift; bump it on any backwards-incompatible field change.
SCHEMA_VERSION = 1

# -- event vocabulary --------------------------------------------------------

EV_EVAL_START = "eval_start"
EV_EVAL_END = "eval_end"
EV_STRATUM_START = "stratum_start"
EV_STRATUM_END = "stratum_end"
EV_ROUND = "round"
EV_CLAUSE_FIRE = "clause_fire"
EV_PLAN_BUILT = "plan_built"
EV_PLAN_DRIFT = "plan_drift"
EV_PIPELINE_COMPILED = "pipeline_compiled"
EV_ID_MATERIALIZED = "id_materialized"
EV_ID_CHOICE = "id_choice"
EV_INCREMENTAL = "incremental"
EV_TOPDOWN_ROUND = "topdown_round"
EV_TOPDOWN_QUERY = "topdown_query"

EVENT_KINDS = (
    EV_EVAL_START, EV_EVAL_END, EV_STRATUM_START, EV_STRATUM_END,
    EV_ROUND, EV_CLAUSE_FIRE, EV_PLAN_BUILT, EV_PLAN_DRIFT,
    EV_PIPELINE_COMPILED, EV_ID_MATERIALIZED, EV_ID_CHOICE,
    EV_INCREMENTAL, EV_TOPDOWN_ROUND, EV_TOPDOWN_QUERY,
)

#: A clause (or join stage) whose q-error reaches this factor is flagged
#: as *misestimated* — in the EXPLAIN ANALYZE table (a ``!`` on the q-err
#: column), in ``Profile.plan_quality()`` blocks, and in the
#: ``idlog_plan_misestimates_total`` metric family.
MISESTIMATE_THRESHOLD = 4.0


def q_error(estimated: float, actual: float) -> float:
    """The q-error of one estimate: ``max(est/actual, actual/est)``.

    Both sides are smoothed by +1 so zero estimates against zero actuals
    score a perfect 1.0 instead of dividing by zero, and an estimate of 0
    against an actual of 9 scores 10 — small absolute misses on tiny
    cardinalities stay small.

    >>> q_error(100, 100)
    1.0
    >>> q_error(9, 0)
    10.0
    >>> q_error(0, 0)
    1.0
    """
    est = float(estimated) + 1.0
    act = float(actual) + 1.0
    return max(est / act, act / est)


@dataclass(frozen=True)
class TraceEvent:
    """One emitted span event: a kind plus its payload fields."""

    kind: str
    fields: dict

    def get(self, name: str, default=None):
        """Field accessor (sugar for ``event.fields.get``)."""
        return self.fields.get(name, default)


class Tracer(Protocol):
    """Anything that can receive span events.

    Implementations must treat ``emit`` as fire-and-forget: raising from a
    tracer aborts the evaluation (deliberately — a broken trace file should
    not be silently half-written).
    """

    def emit(self, kind: str, **fields) -> None:
        """Record one event."""
        ...


class NullTracer:
    """The no-op tracer: every event is discarded.

    Exists so callers can pass an always-valid tracer object; internally
    the engines prefer ``tracer=None``, which skips even the clock reads.
    """

    def emit(self, kind: str, **fields) -> None:
        pass


class CallbackTracer:
    """Tracer that records events (and optionally forwards them).

    Args:
        callback: Optional hook invoked with each :class:`TraceEvent`;
            the event is appended to :attr:`events` either way.

    The test suite's tracer: event-order and payload assertions read
    :attr:`events`; hook-based tests pass a callback.
    """

    def __init__(self,
                 callback: Optional[Callable[[TraceEvent], None]] = None,
                 ) -> None:
        self.events: list[TraceEvent] = []
        self._callback = callback

    def emit(self, kind: str, **fields) -> None:
        event = TraceEvent(kind, fields)
        self.events.append(event)
        if self._callback is not None:
            self._callback(event)

    def kinds(self) -> list[str]:
        """The event kinds in emission order (handy in assertions)."""
        return [event.kind for event in self.events]


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in value]
    return str(value)


class JsonTracer:
    """Tracer writing one JSON object per event (JSONL).

    Every line is ``{"event": <kind>, "seq": <n>, "schema": 1,
    ...fields}`` with non-primitive field values stringified — the schema
    documented in ``docs/OBSERVABILITY.md`` and consumed by the benchmark
    trajectory tooling.  ``schema`` is :data:`SCHEMA_VERSION`, stamped on
    every event so a consumer can reject a stream mid-way, not just at
    the head.

    Args:
        sink: A path to open (truncated) or an open text file object
            (left open on :meth:`close` when caller-owned).

    Usable as a context manager::

        with JsonTracer("trace.jsonl") as tracer:
            evaluate(program, db, tracer=tracer)
    """

    def __init__(self, sink: Union[str, TextIO]) -> None:
        if isinstance(sink, str):
            self._file: TextIO = open(sink, "w", encoding="utf-8")
            self._owns = True
        else:
            self._file = sink
            self._owns = False
        self._seq = 0
        self._closed = False

    def emit(self, kind: str, **fields) -> None:
        record = {"event": kind, "seq": self._seq,
                  "schema": SCHEMA_VERSION}
        self._seq += 1
        for name, value in fields.items():
            record[name] = _jsonable(value)
        self._file.write(json.dumps(record) + "\n")

    @property
    def events_written(self) -> int:
        """Number of JSONL lines emitted so far."""
        return self._seq

    def close(self) -> None:
        """Flush and (for path-opened sinks) close the underlying file.

        Idempotent, so error-path cleanup (the CLI's ``finally:``) can
        close unconditionally even when the success path already did.
        """
        if self._closed:
            return
        self._closed = True
        self._file.flush()
        if self._owns:
            self._file.close()

    def __enter__(self) -> "JsonTracer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class TeeTracer:
    """Fan one event stream out to several tracers (e.g. timing + JSONL)."""

    def __init__(self, tracers: list) -> None:
        self.tracers = list(tracers)

    def emit(self, kind: str, **fields) -> None:
        for tracer in self.tracers:
            tracer.emit(kind, **fields)


#: Context fields a :class:`ContextTracer` stamps onto every event it
#: forwards.  The server's request-scoped tracing uses exactly these —
#: ``docs/OBSERVABILITY.md`` documents them and ``tests/test_docs.py``
#: keeps the two in sync.
CONTEXT_FIELDS = ("request_id", "session_id")


class ContextTracer:
    """Stamp fixed context fields onto every event, then forward.

    The server composes one per request around its shared tracer stack
    (metrics fold + timing + optional JSONL), so every span event an
    evaluation emits carries ``request_id``/``session_id`` —
    attribution that a process-global tracer cannot provide when
    sessions run concurrently.

    Same zero-cost-when-off discipline as the rest of the module: a
    :class:`ContextTracer` only exists while a request asked for (or
    the server configured) per-request observability; with nothing
    enabled the engines still see ``tracer=None`` and pay nothing.

    Args:
        inner: The tracer (often a :class:`TeeTracer`) receiving the
            stamped events.
        **context: The fields to stamp (``None`` values are dropped).
            Event payloads win on a field-name collision, so a kind
            that legitimately carries e.g. ``request_id`` itself is
            never clobbered.
    """

    def __init__(self, inner: Tracer, **context) -> None:
        self.inner = inner
        self.context = {name: value for name, value in context.items()
                        if value is not None}

    def emit(self, kind: str, **fields) -> None:
        self.inner.emit(kind, **{**self.context, **fields})


# -- the ambient tracer ------------------------------------------------------

_ambient: Optional[Tracer] = None


def current_tracer() -> Optional[Tracer]:
    """The ambient tracer installed by :func:`use_tracer`, or None."""
    return _ambient


@contextmanager
def use_tracer(tracer: Optional[Tracer]) -> Iterator[Optional[Tracer]]:
    """Install ``tracer`` as the process-wide default for the block.

    Evaluations that were not handed an explicit tracer pick this one up
    *at evaluation time* — which is how the benchmark runner profiles
    kernels whose engines it does not construct.  Nesting restores the
    previous ambient tracer on exit.
    """
    global _ambient
    previous = _ambient
    _ambient = tracer
    try:
        yield tracer
    finally:
        _ambient = previous


def resolve_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """An explicit tracer if given, else the ambient one (else None).

    A :class:`NullTracer` normalizes to ``None``: no event it receives is
    observable, so the engines may keep their fully uninstrumented hot
    path — this is what makes the "no-op tracer" genuinely free.
    """
    resolved = tracer if tracer is not None else _ambient
    if type(resolved) is NullTracer:
        return None
    return resolved


# -- profiles: folding the event stream -------------------------------------

@dataclass
class StageProfile:
    """Estimated-vs-actual totals for one join stage of one clause.

    One row per literal position of the clause's compiled pipeline,
    accumulated across calls: ``est_rows``/``est_probes`` sum the
    planner's :class:`~repro.datalog.planner.LiteralEstimate` figures at
    fire time, ``actual_rows``/``actual_probes`` the batch the stage
    really produced and the probes it really charged.
    """

    index: int
    literal: str = ""
    calls: int = 0
    est_rows: float = 0.0
    actual_rows: int = 0
    est_probes: float = 0.0
    actual_probes: int = 0

    @property
    def rows_q_error(self) -> float:
        """q-error of the stage's output-cardinality estimate."""
        return q_error(self.est_rows, self.actual_rows)

    @property
    def probes_q_error(self) -> float:
        """q-error of the stage's probe-count estimate."""
        return q_error(self.est_probes, self.actual_probes)


@dataclass
class ClauseProfile:
    """Aggregated execution profile of one clause within one stratum.

    ``calls`` counts clause executions (one per fixpoint round per delta
    variant); ``rows`` the head tuples produced (duplicates included,
    i.e. firings) and ``new`` the tuples that were actually novel.
    ``pipelines_compiled`` counts batch-pipeline compilations for the
    clause; cache hits are therefore ``calls - pipelines_compiled`` when
    the batch engine is on.

    Plan quality: when the batch executor captured per-stage estimates
    (``clause_fire`` events carrying ``stages``), ``est_probes`` /
    ``est_rows`` accumulate the planner's totals, :attr:`stages` the
    per-stage breakdown, and the q-error properties compare them with
    the actual counters.  ``plan_drifts`` counts mid-fixpoint order
    flips (``plan_drift`` events).
    """

    clause: str
    stratum: int
    calls: int = 0
    wall_s: float = 0.0
    probes: int = 0
    firings: int = 0
    new: int = 0
    plan_mode: str = ""
    plan_cost: Optional[float] = None
    plans_built: int = 0
    pipelines_compiled: int = 0
    est_probes: float = 0.0
    est_rows: float = 0.0
    estimated_calls: int = 0
    plan_drifts: int = 0
    stages: dict[int, StageProfile] = field(default_factory=dict)

    @property
    def pipeline_hits(self) -> int:
        """Pipeline-cache hits (meaningful under the batch engine)."""
        return max(0, self.calls - self.pipelines_compiled)

    @property
    def probe_q_error(self) -> Optional[float]:
        """q-error of the total-probe estimate, None without estimates."""
        if not self.estimated_calls:
            return None
        return q_error(self.est_probes, self.probes)

    @property
    def worst_stage_q_error(self) -> Optional[float]:
        """Worst per-stage cardinality q-error, None without estimates."""
        if not self.stages:
            return None
        return max(stage.rows_q_error for stage in self.stages.values())

    @property
    def misestimated(self) -> bool:
        """True when any q-error reaches :data:`MISESTIMATE_THRESHOLD`."""
        worst = max(self.probe_q_error or 0.0,
                    self.worst_stage_q_error or 0.0)
        return worst >= MISESTIMATE_THRESHOLD


@dataclass
class StratumProfile:
    """Aggregated profile of one stratum."""

    stratum: int
    heads: tuple[str, ...] = ()
    rounds: int = 0
    wall_s: float = 0.0
    cardinalities: dict[str, int] = field(default_factory=dict)


@dataclass
class Profile:
    """The in-memory profile a :class:`TimingTracer` accumulates."""

    meta: dict = field(default_factory=dict)
    strata: dict[int, StratumProfile] = field(default_factory=dict)
    clauses: dict[tuple[int, str], ClauseProfile] = field(
        default_factory=dict)
    events: int = 0

    def clause_rows(self) -> list[ClauseProfile]:
        """Clause profiles ordered by (stratum, first emission)."""
        return sorted(self.clauses.values(), key=lambda c: c.stratum)

    def total_wall_s(self) -> float:
        """Total clause-execution wall time (excludes bookkeeping)."""
        return sum(c.wall_s for c in self.clauses.values())

    def as_dict(self) -> dict:
        """JSON-ready form (what the benchmark trajectory records).

        Stamped with :data:`SCHEMA_VERSION` so BENCH/trace consumers can
        detect format drift.
        """
        return {
            "schema": SCHEMA_VERSION,
            "meta": _jsonable(self.meta),
            "strata": [
                {"stratum": s.stratum, "heads": list(s.heads),
                 "rounds": s.rounds, "wall_s": round(s.wall_s, 6),
                 "cardinalities": dict(s.cardinalities)}
                for s in sorted(self.strata.values(),
                                key=lambda s: s.stratum)],
            "clauses": [self._clause_dict(c) for c in self.clause_rows()],
        }

    @staticmethod
    def _clause_dict(c: ClauseProfile) -> dict:
        entry = {"clause": c.clause, "stratum": c.stratum,
                 "calls": c.calls, "wall_s": round(c.wall_s, 6),
                 "probes": c.probes, "firings": c.firings, "new": c.new,
                 "plan": c.plan_mode or None,
                 "plan_cost": c.plan_cost,
                 "pipelines_compiled": c.pipelines_compiled,
                 "pipeline_hits": c.pipeline_hits}
        if c.estimated_calls:
            entry["est_probes"] = round(c.est_probes, 3)
            entry["est_rows"] = round(c.est_rows, 3)
            entry["q_error"] = round(c.probe_q_error, 3)
            entry["worst_stage_q_error"] = \
                round(c.worst_stage_q_error or 0.0, 3)
            entry["misestimated"] = c.misestimated
            entry["plan_drifts"] = c.plan_drifts
            entry["stages"] = [
                {"index": s.index, "literal": s.literal, "calls": s.calls,
                 "est_rows": round(s.est_rows, 3),
                 "actual_rows": s.actual_rows,
                 "est_probes": round(s.est_probes, 3),
                 "actual_probes": s.actual_probes,
                 "q_error": round(s.rows_q_error, 3)}
                for _, s in sorted(c.stages.items())]
        elif c.plan_drifts:
            entry["plan_drifts"] = c.plan_drifts
        return entry

    def plan_quality(self) -> dict:
        """Estimate-vs-actual summary across all clauses with estimates.

        The compact block ``run`` responses, ``BENCH_*.json`` records and
        the server's ``plans`` aggregate carry: per-clause q-errors
        sorted worst-first plus the median/max/misestimate/drift
        roll-up the compare.py gate consumes.  Clauses that never ran
        with estimate capture (interp engine, tracing off) are absent.
        """
        rows = []
        for c in self.clause_rows():
            profile_q = c.probe_q_error
            if profile_q is None:
                continue
            rows.append({
                "clause": c.clause, "stratum": c.stratum,
                "calls": c.calls,
                "est_probes": round(c.est_probes, 3),
                "probes": c.probes,
                "q_error": round(profile_q, 3),
                "worst_stage_q_error": round(c.worst_stage_q_error or 0.0,
                                             3),
                "misestimated": c.misestimated,
                "plan_drifts": c.plan_drifts,
            })
        # One miss measure throughout: a clause's q-error is the worst
        # of its probe-total and per-stage row errors — the same number
        # the tables render and the misestimate flag thresholds on.
        rows.sort(key=lambda r: (-max(r["q_error"],
                                      r["worst_stage_q_error"]),
                                 r["clause"]))
        q_errors = sorted(max(r["q_error"], r["worst_stage_q_error"])
                          for r in rows)
        if q_errors:
            mid = len(q_errors) // 2
            median = q_errors[mid] if len(q_errors) % 2 \
                else (q_errors[mid - 1] + q_errors[mid]) / 2.0
        else:
            median = None
        return {
            "schema": SCHEMA_VERSION,
            "clauses": rows,
            "median_q_error": round(median, 3) if median is not None
            else None,
            "max_q_error": max(rows[0]["q_error"],
                               rows[0]["worst_stage_q_error"])
            if rows else None,
            "misestimates": sum(r["misestimated"] for r in rows),
            "misestimate_threshold": MISESTIMATE_THRESHOLD,
            "plan_drifts": sum(c.plan_drifts
                               for c in self.clauses.values()),
        }


class TimingTracer:
    """Tracer folding the event stream into an in-memory :class:`Profile`.

    One instance can span several evaluations (e.g. an incremental
    engine's materialization plus its maintenance passes); the profile
    keeps accumulating.  Use a fresh instance per measurement when
    isolation matters.
    """

    def __init__(self) -> None:
        self.profile = Profile()

    def emit(self, kind: str, **fields) -> None:
        profile = self.profile
        profile.events += 1
        if kind == EV_CLAUSE_FIRE:
            key = (fields.get("stratum", 0), fields["clause"])
            row = profile.clauses.get(key)
            if row is None:
                row = ClauseProfile(fields["clause"],
                                    fields.get("stratum", 0))
                profile.clauses[key] = row
            row.calls += 1
            row.wall_s += fields.get("wall_s", 0.0)
            row.probes += fields.get("probes", 0)
            row.firings += fields.get("firings", 0)
            row.new += fields.get("new", 0)
            stages = fields.get("stages")
            if stages:
                row.estimated_calls += 1
                for i, captured in enumerate(stages):
                    stage = row.stages.get(i)
                    if stage is None:
                        stage = row.stages[i] = StageProfile(
                            i, captured.get("literal", ""))
                    stage.calls += 1
                    stage.est_rows += captured.get("est_rows", 0.0)
                    stage.actual_rows += captured.get("actual_rows", 0)
                    stage.est_probes += captured.get("est_probes", 0.0)
                    stage.actual_probes += captured.get("actual_probes", 0)
                    row.est_probes += captured.get("est_probes", 0.0)
                # The final stage's output estimate is the clause's
                # estimated result cardinality.
                row.est_rows += stages[-1].get("est_rows", 0.0)
        elif kind == EV_PLAN_DRIFT:
            key = (fields.get("stratum", 0), fields["clause"])
            row = profile.clauses.get(key)
            if row is None:
                row = ClauseProfile(fields["clause"],
                                    fields.get("stratum", 0))
                profile.clauses[key] = row
            row.plan_drifts += 1
        elif kind == EV_PLAN_BUILT:
            key = (fields.get("stratum", 0), fields["clause"])
            row = profile.clauses.get(key)
            if row is None:
                row = ClauseProfile(fields["clause"],
                                    fields.get("stratum", 0))
                profile.clauses[key] = row
            row.plans_built += 1
            row.plan_mode = fields.get("mode", row.plan_mode)
            row.plan_cost = fields.get("cost", row.plan_cost)
        elif kind == EV_PIPELINE_COMPILED:
            key = (fields.get("stratum", 0), fields["clause"])
            row = profile.clauses.get(key)
            if row is None:
                row = ClauseProfile(fields["clause"],
                                    fields.get("stratum", 0))
                profile.clauses[key] = row
            row.pipelines_compiled += 1
        elif kind == EV_STRATUM_START:
            index = fields.get("stratum", 0)
            stratum = profile.strata.get(index)
            if stratum is None:
                profile.strata[index] = StratumProfile(
                    index, tuple(fields.get("heads", ())))
        elif kind == EV_STRATUM_END:
            index = fields.get("stratum", 0)
            stratum = profile.strata.get(index)
            if stratum is None:
                stratum = StratumProfile(index)
                profile.strata[index] = stratum
            stratum.rounds += fields.get("rounds", 0)
            stratum.wall_s += fields.get("wall_s", 0.0)
            for pred, size in fields.get("cardinalities", {}).items():
                stratum.cardinalities[pred] = size
        elif kind == EV_EVAL_START:
            for name in ("program", "plan", "engine"):
                if name in fields:
                    profile.meta[name] = fields[name]
        elif kind == EV_EVAL_END:
            profile.meta["wall_s"] = \
                profile.meta.get("wall_s", 0.0) + fields.get("wall_s", 0.0)
            profile.meta["evaluations"] = \
                profile.meta.get("evaluations", 0) + 1


# -- the EXPLAIN ANALYZE table ----------------------------------------------

def _clip(text: str, width: int) -> str:
    if len(text) <= width:
        return text
    return text[:width - 1] + "…"


def _ms(seconds: float) -> str:
    return f"{seconds * 1000:.2f}"


def _q_err_cell(row: ClauseProfile) -> str:
    """The q-err column: worst q-error, ``!``-flagged past the
    misestimate threshold, ``-`` when no estimates were captured."""
    profile_q = row.probe_q_error
    if profile_q is None:
        return "-"
    worst = max(profile_q, row.worst_stage_q_error or 0.0)
    return f"{worst:.1f}" + ("!" if row.misestimated else "")


def format_profile(profile: Profile,
                   clause_width: Optional[int] = None) -> str:
    """Render a profile as an ``EXPLAIN ANALYZE``-style text table.

    One section per stratum (with its fixpoint rounds, wall time and
    final head-relation cardinalities), one row per clause with the
    columns ``calls | time | probes | est probes | q-err | firings |
    new | plan | pipelines`` — time is clause-execution wall time in
    milliseconds, ``est probes`` the planner's probe estimate summed
    over the calls, ``q-err`` the worst probe/stage-cardinality q-error
    (``!`` flags a misestimate at or past
    :data:`MISESTIMATE_THRESHOLD`; ``-`` means no estimates were
    captured, e.g. under the interp engine), ``plan`` the planning mode
    (with the estimated probe cost when the cost planner produced one),
    ``pipelines`` the batch pipeline compilations ``+`` cache hits.

    ``clause_width`` defaults to the longest clause text (floored at
    44 columns), so no clause is ever truncated out of grep reach; pass
    an explicit width to clip long clauses with an ellipsis (the full
    text is always in :meth:`Profile.as_dict`).
    """
    meta = profile.meta
    header_bits = []
    for name in ("program", "plan", "engine"):
        if name in meta:
            header_bits.append(f"{name}={meta[name]}")
    if "wall_s" in meta:
        header_bits.append(f"wall={_ms(meta['wall_s'])} ms")
    lines = ["EXPLAIN ANALYZE"
             + (f"  ({', '.join(header_bits)})" if header_bits else "")]
    if not profile.clauses:
        lines.append("  (no clause executions traced)")
        return "\n".join(lines)
    if clause_width is None:
        clause_width = max([44] + [len(c.clause)
                                   for c in profile.clauses.values()])

    columns = ("calls", "time ms", "probes", "est probes", "q-err",
               "firings", "new", "plan", "pipelines")
    widths = (6, 9, 9, 11, 7, 9, 7, 14, 10)
    head = "  " + "clause".ljust(clause_width) + "  " + "  ".join(
        c.rjust(w) for c, w in zip(columns, widths))

    by_stratum: dict[int, list[ClauseProfile]] = {}
    for row in profile.clause_rows():
        by_stratum.setdefault(row.stratum, []).append(row)

    for index in sorted(by_stratum):
        stratum = profile.strata.get(index)
        bits = [f"stratum {index}"]
        if stratum is not None:
            if stratum.heads:
                bits.append(f"defines {', '.join(stratum.heads)}")
            bits.append(f"{stratum.rounds} round(s)")
            bits.append(f"{_ms(stratum.wall_s)} ms")
            if stratum.cardinalities:
                cards = ", ".join(f"{p}={n}" for p, n in
                                  sorted(stratum.cardinalities.items()))
                bits.append(f"final sizes: {cards}")
        lines.append(": ".join([bits[0], "  ".join(bits[1:])])
                     if len(bits) > 1 else bits[0])
        lines.append(head)
        for row in sorted(by_stratum[index],
                          key=lambda r: (-r.wall_s, r.clause)):
            plan = row.plan_mode or "-"
            if row.plan_cost is not None:
                plan = f"{plan}:{row.plan_cost:.0f}"
            est_probes = f"{row.est_probes:.0f}" \
                if row.estimated_calls else "-"
            # No compile event means no batch pipeline ever ran this
            # clause (interp engine), so "hits" would be meaningless.
            pipelines = f"{row.pipelines_compiled}+{row.pipeline_hits}" \
                if row.pipelines_compiled else "-"
            cells = (str(row.calls), _ms(row.wall_s), str(row.probes),
                     est_probes, _q_err_cell(row),
                     str(row.firings), str(row.new),
                     _clip(plan, widths[7]), pipelines)
            lines.append(
                "  " + _clip(row.clause, clause_width).ljust(clause_width)
                + "  " + "  ".join(c.rjust(w)
                                   for c, w in zip(cells, widths)))
    totals = (f"total: {sum(c.calls for c in profile.clauses.values())} "
              f"clause execution(s), {_ms(profile.total_wall_s())} ms, "
              f"{sum(c.probes for c in profile.clauses.values())} probes, "
              f"{sum(c.new for c in profile.clauses.values())} new "
              f"tuple(s)")
    lines.append(totals)
    return "\n".join(lines)
