"""Safety checking via body planning (the paper's Section 2.2).

The paper requires every use of an arithmetic predicate to be *safe*: a
sufficient number of its arguments must be positively bound in the same
clause body.  We realize this, as deductive database systems do, by
*planning*: a clause is safe iff some ordering of its body literals

* evaluates every arithmetic literal under an allowed binding pattern
  (see :mod:`repro.datalog.builtins` for the per-predicate tables — for
  ``+`` these are exactly the paper's ``bbb, bbn, bnb, nbb, nnb``),
* evaluates every negative literal with all of its variables bound, and
* ends with every head variable bound by a positive literal.

The planner is greedy with full back-pressure: filters (arithmetic and
negative literals) are scheduled as soon as they become evaluable, positive
relation literals are chosen to maximize already-bound variables.  Because
filters never bind fewer variables by running early and positive literals
are always selectable, the greedy strategy finds an ordering whenever one
exists.  The evaluator reuses the same planner, so "checked safe" coincides
with "evaluable".
"""

from __future__ import annotations

from typing import Optional

from ..errors import SafetyError
from .ast import Atom, ChoiceAtom, Clause, Literal, Program
from .builtins import builtin_spec
from .terms import Const, Var


def binding_pattern(atom: Atom, bound: frozenset[Var]) -> str:
    """The b/n binding pattern of an atom's arguments given bound vars.

    Constants count as bound; a variable repeated within the atom counts as
    bound only if bound from outside (the extra occurrences act as filters,
    which the evaluator checks when consuming builtin solutions).
    """
    return "".join(
        "b" if isinstance(a, Const) or a in bound else "n"
        for a in atom.args)


def _selectable(literal: Literal, bound: frozenset[Var]) -> bool:
    atom = literal.atom
    if isinstance(atom, ChoiceAtom):
        raise SafetyError(
            "choice operators must be compiled away before planning; "
            "use the repro.choice front end")
    if atom.is_builtin:
        pattern = binding_pattern(atom, bound)
        if literal.positive:
            return builtin_spec(atom.pred).allows(pattern)
        return "n" not in pattern
    if literal.positive:
        return True
    return atom.vars <= bound


def _binds(literal: Literal) -> frozenset[Var]:
    if literal.positive:
        return literal.atom.vars
    return frozenset()


def _bound_var_count(literal: Literal, bound: frozenset[Var]) -> int:
    return sum(1 for v in literal.atom.vars if v in bound)


def _take_first(first: Literal, remaining: list[Literal]) -> None:
    """Validate and remove the forced-first literal from ``remaining``.

    Shared with :mod:`repro.datalog.planner` so the cost-based planner
    accepts and rejects forced-first literals exactly like this module.
    """
    if first not in remaining:
        raise SafetyError("forced first literal is not in the body")
    if not first.positive or not isinstance(first.atom, Atom) \
            or first.atom.is_builtin:
        raise SafetyError(
            "only a positive relation literal can be forced first")
    remaining.remove(first)


def _choose_filter(remaining: list[Literal],
                   bound: frozenset[Var]) -> Optional[Literal]:
    """The filter (builtin or negative literal) to schedule next, if any.

    Filters are scheduled as soon as they become evaluable; among evaluable
    ones, the one with the most bound variables is preferred so pure tests
    run before value-generating builtins.  Both planners share this pass,
    which is what keeps "plannable" identical between them.
    """
    chosen: Optional[Literal] = None
    for literal in remaining:
        atom = literal.atom
        is_filter = (isinstance(atom, Atom) and atom.is_builtin) \
            or not literal.positive
        if is_filter and _selectable(literal, bound):
            if chosen is None or _bound_var_count(literal, bound) \
                    > _bound_var_count(chosen, bound):
                chosen = literal
    return chosen


def _stuck_error(clause: Clause, remaining: list[Literal],
                 bound: frozenset[Var]) -> SafetyError:
    stuck = ", ".join(str(lit) for lit in remaining)
    return SafetyError(
        f"clause {clause} is unsafe: cannot schedule {stuck} "
        f"(bound variables: {sorted(v.name for v in bound)})")


def _check_head_bound(clause: Clause, bound: frozenset[Var]) -> None:
    unbound_head = clause.head.vars - bound
    if unbound_head:
        names = sorted(v.name for v in unbound_head)
        raise SafetyError(
            f"clause {clause} is unsafe: head variables {names} are never "
            "positively bound")


def order_body(clause: Clause,
               initially_bound: frozenset[Var] = frozenset(),
               first: Optional[Literal] = None) -> tuple[Literal, ...]:
    """Return a safe evaluation order for the clause body.

    Args:
        clause: The clause to plan.
        initially_bound: Variables already bound before the body runs.
        first: Optional positive relation literal forced to run first (used
            by semi-naive evaluation to lead with the delta literal).

    Raises:
        SafetyError: when no safe ordering exists, with a description of the
            stuck literals or the unbound head variables.
    """
    remaining = list(clause.body)
    ordered: list[Literal] = []
    bound = frozenset(initially_bound)

    if first is not None:
        _take_first(first, remaining)
        ordered.append(first)
        bound |= _binds(first)

    while remaining:
        # Pass 1: any evaluable filter (builtin or negative literal).
        chosen = _choose_filter(remaining, bound)
        # Pass 2: otherwise the positive relation literal sharing the most
        # bound variables (join selectivity heuristic).
        if chosen is None:
            best = -1
            for literal in remaining:
                if not _selectable(literal, bound):
                    continue
                score = _bound_var_count(literal, bound)
                if score > best:
                    best = score
                    chosen = literal
        if chosen is None:
            raise _stuck_error(clause, remaining, bound)
        remaining.remove(chosen)
        ordered.append(chosen)
        bound |= _binds(chosen)

    _check_head_bound(clause, bound)
    return tuple(ordered)


def check_clause(clause: Clause) -> None:
    """Raise :class:`SafetyError` if the clause cannot be planned."""
    order_body(clause)


def check_program(program: Program) -> None:
    """Check every clause of the program for safety.

    Raises:
        SafetyError: on the first unsafe clause.
    """
    for clause in program.clauses:
        check_clause(clause)
