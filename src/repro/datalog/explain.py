"""EXPLAIN: human-readable evaluation plans for programs.

Renders what the engine will actually do — strata in evaluation order,
each clause's planned literal ordering with the binding pattern every
literal runs under, plus (for IDLOG programs) the ID-groupings and the
tid bounds the group-limit optimization derived.  Used by the CLI's
``explain`` command and handy when debugging safety errors.

:func:`explain_plan` is the cost-aware variant: given a database it
renders the order the cost-based planner picks together with the
cardinalities, estimated matches and estimated probes behind each choice
— an EXPLAIN for the engine, including the semi-naive delta variants of
recursive clauses.
"""

from __future__ import annotations

from typing import Optional, Union

from .ast import Atom, Literal, Program
from .database import Database
from .parser import parse_program
from .planner import ClausePlan, check_plan_mode, plan_body
from .pretty import format_atom, format_clause, format_literal
from .safety import binding_pattern, order_body
from .stratify import stratify
from .terms import Var
from .trace import ClauseProfile, Profile, StageProfile


def _describe_literal(literal: Literal, bound: frozenset[Var]) -> str:
    atom = literal.atom
    assert isinstance(atom, Atom)
    rendered = format_atom(atom)
    if not literal.positive:
        return f"not {rendered}  [anti-join, all bound]"
    if atom.is_builtin:
        return f"{rendered}  [builtin, pattern {binding_pattern(atom, bound)}]"
    pattern = binding_pattern(atom, bound)
    kind = "id-scan" if atom.is_id else "scan"
    if "b" in pattern:
        kind = "id-probe" if atom.is_id else "index probe"
    return f"{rendered}  [{kind}, pattern {pattern}]"


def explain_program(program: Union[str, Program]) -> str:
    """Render the full evaluation plan of a program as text.

    The program must be safe and stratified (errors propagate with their
    usual diagnostics — which is itself useful: ``explain`` fails exactly
    where evaluation would).
    """
    if isinstance(program, str):
        program = parse_program(program)
    strat = stratify(program)
    lines: list[str] = [f"program: {program.name}",
                        f"strata: {strat.depth}"]

    if program.has_id_atoms():
        from ..core.program import compute_tid_limits
        limits = compute_tid_limits(program)
        lines.append("id-predicates:")
        for (pred, group), limit in sorted(
                limits.items(), key=lambda kv: (kv[0][0], sorted(kv[0][1]))):
            bound = "unbounded (full materialization)" if limit is None \
                else f"tid < {limit} ({limit} tuple(s) per sub-relation)"
            lines.append(f"  {pred}[{','.join(map(str, sorted(group)))}]"
                         f" -> {bound}")

    heads = program.head_predicates
    for level, stratum in enumerate(strat.strata):
        defined = sorted(stratum & heads)
        if not defined:
            continue
        lines.append(f"stratum {level}: defines {', '.join(defined)}")
        for clause in program.clauses:
            if clause.head.pred not in stratum:
                continue
            lines.append(f"  {clause.head} :-")
            if not clause.body:
                lines.append("    (fact)")
                continue
            bound: frozenset[Var] = frozenset()
            for literal in order_body(clause):
                lines.append(f"    {_describe_literal(literal, bound)}")
                if literal.positive:
                    bound |= literal.atom.vars
    return "\n".join(lines)


def _format_count(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return f"{value:.2f}"


def _match_stage(actuals: ClauseProfile, rendered: str,
                 used: set[int]) -> Optional[StageProfile]:
    """The recorded stage for one rendered literal (first unused match).

    Stages are matched by literal text rather than position: the
    recorded profile aggregates the clause's delta variants, whose
    pipelines may order the same literals differently.
    """
    for index, stage in sorted(actuals.stages.items()):
        if index not in used and stage.literal == rendered:
            used.add(index)
            return stage
    return None


def _render_plan(plan: ClausePlan, indent: str,
                 actuals: Optional[ClauseProfile] = None) -> list[str]:
    lines = []
    used: set[int] = set()
    for est in plan.estimates:
        rendered = format_literal(est.literal)
        line = (f"{indent}{rendered}  [{est.kind}, pattern {est.pattern}, "
                f"est matches {_format_count(est.matches)}, "
                f"est probes {_format_count(est.probes)}]")
        if actuals is not None:
            stage = _match_stage(actuals, rendered, used)
            if stage is not None:
                line += (f"  {{actual rows {stage.actual_rows}, "
                         f"actual probes {stage.actual_probes}, "
                         f"q-err {stage.rows_q_error:.1f}}}")
        lines.append(line)
    tail = f"{indent}=> est cost {_format_count(plan.cost)} probes"
    if actuals is not None and actuals.estimated_calls:
        tail += (f"  {{actual {actuals.probes} probes over "
                 f"{actuals.calls} call(s), "
                 f"q-err {actuals.probe_q_error:.1f}"
                 + ("  MISESTIMATE" if actuals.misestimated else "")
                 + "}")
    lines.append(tail)
    return lines


def explain_plan(program: Union[str, Program],
                 db: Optional[Database] = None,
                 plan: str = "cost",
                 profile: Optional[Profile] = None) -> str:
    """Render the planner's chosen orders with their cost estimates.

    For programs without ID-atoms the program is first evaluated to its
    fixpoint on ``db`` so the rendered cardinalities are the ones the
    recursive rounds actually see; IDLOG programs are costed against the
    raw input database (planning never materializes ID-relations).

    Args:
        program: Source text or a parsed program (must be safe/stratified).
        db: Input database supplying cardinalities; without one every
            relation is treated as empty and only the orders are
            meaningful.
        plan: ``"cost"`` (default) or ``"greedy"`` — handy for rendering
            both and diffing them.
        profile: Optional recorded
            :class:`~repro.datalog.trace.Profile` (e.g. a
            :class:`~repro.datalog.trace.TimingTracer`'s after a run of
            the same program).  Estimated figures then carry the
            recorded actuals and their q-error side by side, with
            ``MISESTIMATE`` flagged past the threshold — actuals sum
            over every call the profile recorded.
    """
    check_plan_mode(plan)
    if isinstance(program, str):
        program = parse_program(program)
    strat = stratify(program)

    recorded: dict[str, ClauseProfile] = {}
    if profile is not None:
        for row in profile.clause_rows():
            existing = recorded.get(row.clause)
            if existing is None or (row.estimated_calls
                                    and not existing.estimated_calls):
                recorded[row.clause] = row

    if db is None:
        sizes = Database()
        note = "no database given; all relations assumed empty"
    elif program.has_id_atoms():
        sizes = db
        note = "cardinalities from the input EDB (ID-relations not " \
               "materialized at plan time)"
    else:
        from .seminaive import evaluate
        sizes, _ = evaluate(program, db, plan=plan)
        note = "cardinalities from the fixpoint on the given database"

    def resolver(pred: str):
        return sizes.relation(pred) if pred in sizes else None

    lines = [f"program: {program.name} (plan={plan})",
             f"note: {note}",
             f"strata: {strat.depth}"]
    if profile is not None:
        calls = sum(row.calls for row in recorded.values())
        lines.insert(2, "actuals: from recorded profile, summed over "
                        f"{calls} clause execution(s)")
    heads = program.head_predicates
    for level, stratum in enumerate(strat.strata):
        defined = sorted(stratum & heads)
        if not defined:
            continue
        lines.append(f"stratum {level}: defines {', '.join(defined)}")
        for clause in program.clauses:
            if clause.head.pred not in stratum:
                continue
            lines.append(f"  {clause.head} :-")
            if not clause.body:
                lines.append("    (fact)")
                continue
            body_plan = plan_body(clause, resolver, mode=plan)
            lines.extend(_render_plan(body_plan, "    ",
                                      recorded.get(format_clause(clause))))
            # Semi-naive delta variants: one per in-stratum positive
            # relation literal, with that literal forced first.
            for position, literal in enumerate(clause.body):
                atom = literal.atom
                if not (isinstance(atom, Atom) and literal.positive
                        and not atom.is_builtin and not atom.is_id
                        and atom.pred in stratum and atom.pred in heads):
                    continue
                delta_plan = plan_body(clause, resolver,
                                       first=literal, mode=plan)
                order = " -> ".join(
                    ("Δ" if i == 0 else "")
                    + (format_atom(est.literal.atom) if est.literal.positive
                       else f"not {format_atom(est.literal.atom)}")
                    for i, est in enumerate(delta_plan.estimates))
                lines.append(
                    f"    Δ-variant (delta at body position "
                    f"{position + 1}): {order}  "
                    f"[est cost {_format_count(delta_plan.cost)} probes]")
    return "\n".join(lines)
