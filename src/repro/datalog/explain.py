"""EXPLAIN: human-readable evaluation plans for programs.

Renders what the engine will actually do — strata in evaluation order,
each clause's planned literal ordering with the binding pattern every
literal runs under, plus (for IDLOG programs) the ID-groupings and the
tid bounds the group-limit optimization derived.  Used by the CLI's
``explain`` command and handy when debugging safety errors.
"""

from __future__ import annotations

from typing import Union

from .ast import Atom, Literal, Program
from .parser import parse_program
from .pretty import format_atom
from .safety import binding_pattern, order_body
from .stratify import stratify
from .terms import Var


def _describe_literal(literal: Literal, bound: frozenset[Var]) -> str:
    atom = literal.atom
    assert isinstance(atom, Atom)
    rendered = format_atom(atom)
    if not literal.positive:
        return f"not {rendered}  [anti-join, all bound]"
    if atom.is_builtin:
        return f"{rendered}  [builtin, pattern {binding_pattern(atom, bound)}]"
    pattern = binding_pattern(atom, bound)
    kind = "id-scan" if atom.is_id else "scan"
    if "b" in pattern:
        kind = "id-probe" if atom.is_id else "index probe"
    return f"{rendered}  [{kind}, pattern {pattern}]"


def explain_program(program: Union[str, Program]) -> str:
    """Render the full evaluation plan of a program as text.

    The program must be safe and stratified (errors propagate with their
    usual diagnostics — which is itself useful: ``explain`` fails exactly
    where evaluation would).
    """
    if isinstance(program, str):
        program = parse_program(program)
    strat = stratify(program)
    lines: list[str] = [f"program: {program.name}",
                        f"strata: {strat.depth}"]

    if program.has_id_atoms():
        from ..core.program import compute_tid_limits
        limits = compute_tid_limits(program)
        lines.append("id-predicates:")
        for (pred, group), limit in sorted(
                limits.items(), key=lambda kv: (kv[0][0], sorted(kv[0][1]))):
            bound = "unbounded (full materialization)" if limit is None \
                else f"tid < {limit} ({limit} tuple(s) per sub-relation)"
            lines.append(f"  {pred}[{','.join(map(str, sorted(group)))}]"
                         f" -> {bound}")

    heads = program.head_predicates
    for level, stratum in enumerate(strat.strata):
        defined = sorted(stratum & heads)
        if not defined:
            continue
        lines.append(f"stratum {level}: defines {', '.join(defined)}")
        for clause in program.clauses:
            if clause.head.pred not in stratum:
                continue
            lines.append(f"  {clause.head} :-")
            if not clause.body:
                lines.append("    (fact)")
                continue
            bound: frozenset[Var] = frozenset()
            for literal in order_body(clause):
                lines.append(f"    {_describe_literal(literal, bound)}")
                if literal.positive:
                    bound |= literal.atom.vars
    return "\n".join(lines)
