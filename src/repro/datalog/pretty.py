"""Pretty-printing of programs back to parseable source text.

``parse_program(to_source(p))`` always reproduces ``p`` (round-trip property,
checked by tests).  Comparisons are rendered infix (``N < 2``), other
arithmetic predicates prefix (``+(N, L, M)``) — both forms the parser accepts.
"""

from __future__ import annotations

from .ast import Atom, ChoiceAtom, Clause, Literal, Program

_INFIX = frozenset({"<", "<=", ">", ">=", "=", "!="})


def format_atom(atom) -> str:
    """Render a body atom (ordinary, ID, builtin or choice)."""
    if isinstance(atom, ChoiceAtom):
        return str(atom)
    if isinstance(atom, Atom) and atom.group is None and atom.pred in _INFIX:
        left, right = atom.args
        return f"{left} {atom.pred} {right}"
    return str(atom)


def format_literal(literal: Literal) -> str:
    """Render a literal, prefixing ``not`` when negative."""
    text = format_atom(literal.atom)
    return text if literal.positive else f"not {text}"


def format_clause(clause: Clause) -> str:
    """Render one clause, terminated by a period."""
    if not clause.body:
        return f"{clause.head}."
    body = ", ".join(format_literal(lit) for lit in clause.body)
    return f"{clause.head} :- {body}."


def to_source(program: Program) -> str:
    """Render a whole program, one clause per line."""
    return "\n".join(format_clause(c) for c in program.clauses) + "\n"
