"""Abstract syntax for DATALOG / IDLOG / DATALOG^C programs.

The same clause representation serves the plain Datalog engine, the IDLOG
engine (which adds *ID-atoms* ``p[s](X̄, N)``) and the DATALOG^C front end
(which adds the *choice atom* ``choice((X̄), (Ȳ))``).  Engines that do not
support a construct reject it during validation rather than at run time.

Terminology follows the paper:

* An **ID-atom** is an atom whose predicate is the ID-version ``p[s]`` of an
  ordinary predicate ``p``; it has one extra, final argument holding the tid.
  ``s`` is a set of 1-based argument positions of ``p`` (the *grouping*).
* A clause head must be an ordinary (non-ID) atom containing neither ``succ``
  nor equality (Section 2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Optional, Union

from ..errors import SchemaError
from .builtins import builtin_spec, is_builtin_name
from .terms import Const, Term, Value, Var, term_vars


@dataclass(frozen=True, slots=True)
class Atom:
    """An atom ``p(t1, ..., tn)`` or ID-atom ``p[s](t1, ..., tn, N)``.

    Attributes:
        pred: Name of the *base* predicate ``p``.
        args: Argument terms.  For an ID-atom the final argument is the tid.
        group: ``None`` for an ordinary atom; a frozenset of 1-based argument
            positions of the base predicate for an ID-atom (may be empty —
            the paper's most primitive ``p[∅]`` form).
    """

    pred: str
    args: tuple[Term, ...]
    group: Optional[frozenset[int]] = None

    def __post_init__(self) -> None:
        if self.group is not None:
            base_arity = len(self.args) - 1
            if base_arity < 0:
                raise SchemaError(f"ID-atom {self.pred} needs a tid argument")
            bad = [i for i in self.group if not 1 <= i <= base_arity]
            if bad:
                raise SchemaError(
                    f"ID-atom {self.pred}[{sorted(self.group)}]: grouping "
                    f"positions {bad} outside 1..{base_arity}")
        if self.is_builtin and len(self.args) != builtin_spec(self.pred).arity:
            raise SchemaError(
                f"builtin {self.pred} used with arity {len(self.args)}, "
                f"expected {builtin_spec(self.pred).arity}")

    @property
    def is_id(self) -> bool:
        """True for an ID-atom ``p[s](...)``."""
        return self.group is not None

    @property
    def is_builtin(self) -> bool:
        """True for an arithmetic predicate (``succ``, ``+``, ``<``, ...)."""
        return self.group is None and is_builtin_name(self.pred)

    @property
    def base_arity(self) -> int:
        """The arity of the base predicate (excluding the tid of an ID-atom)."""
        return len(self.args) - (1 if self.is_id else 0)

    @property
    def vars(self) -> frozenset[Var]:
        """The variables occurring in this atom."""
        return term_vars(self.args)

    def substitute(self, subst: Mapping[Var, Value]) -> "Atom":
        """Apply a substitution of ground values for variables."""
        new_args = tuple(
            Const(subst[a]) if isinstance(a, Var) and a in subst else a
            for a in self.args)
        return Atom(self.pred, new_args, self.group)

    def rename_pred(self, new_name: str) -> "Atom":
        """Return a copy of this atom with a different predicate name."""
        return Atom(new_name, self.args, self.group)

    def __str__(self) -> str:
        group = ""
        if self.group is not None:
            group = "[" + ",".join(str(i) for i in sorted(self.group)) + "]"
        return f"{self.pred}{group}({', '.join(str(a) for a in self.args)})"


@dataclass(frozen=True, slots=True)
class ChoiceAtom:
    """The choice operator ``choice((X̄), (Ȳ))`` of DATALOG^C (§3.2.2),
    generalized to the *multiple-choice* operators the paper's §3.3 calls
    for: ``choice2((X̄), (Ȳ))`` keeps two ``Ȳ`` per ``X̄``-value, ``choice3``
    three, and so on ("the inadequacy of defining general sampling queries
    by the choice operator motivates the need of having multiple-choice
    operators ... IDLOG can be thought of as a natural framework for
    expressing these operators").

    Non-deterministically restricts the clause's satisfying tuples so that
    every ``X̄``-value keeps exactly ``count`` distinct ``Ȳ`` combinations
    (all of them when the group is smaller).  Only the DATALOG^C front end
    accepts choice atoms.
    """

    domain: tuple[Var, ...]
    range: tuple[Var, ...]
    count: int = 1

    def __post_init__(self) -> None:
        if self.count < 1:
            raise SchemaError(
                f"choice{self.count} is meaningless; count must be >= 1")

    @property
    def vars(self) -> frozenset[Var]:
        """All variables mentioned by the operator."""
        return frozenset(self.domain) | frozenset(self.range)

    def __str__(self) -> str:
        dom = ", ".join(str(v) for v in self.domain)
        rng = ", ".join(str(v) for v in self.range)
        suffix = "" if self.count == 1 else str(self.count)
        return f"choice{suffix}(({dom}), ({rng}))"


BodyAtom = Union[Atom, ChoiceAtom]


@dataclass(frozen=True, slots=True)
class Literal:
    """A possibly negated body atom."""

    atom: BodyAtom
    positive: bool = True

    def __post_init__(self) -> None:
        if not self.positive and isinstance(self.atom, ChoiceAtom):
            raise SchemaError("choice operators cannot be negated")

    @property
    def vars(self) -> frozenset[Var]:
        """The variables occurring in this literal."""
        return self.atom.vars

    def negate(self) -> "Literal":
        """Return the complementary literal."""
        return Literal(self.atom, not self.positive)

    def __str__(self) -> str:
        return str(self.atom) if self.positive else f"not {self.atom}"


@dataclass(frozen=True, slots=True)
class Clause:
    """A clause ``head :- body`` (a fact when the body is empty).

    Head restrictions from the paper are enforced: the head must be an
    ordinary atom whose predicate is neither arithmetic nor equality.
    """

    head: Atom
    body: tuple[Literal, ...] = ()

    def __post_init__(self) -> None:
        if self.head.is_id:
            raise SchemaError(f"clause head {self.head} must not be an ID-atom")
        if self.head.is_builtin:
            raise SchemaError(
                f"clause head {self.head} must not use an arithmetic predicate")

    @property
    def is_fact(self) -> bool:
        """True when the clause has an empty body and a ground head."""
        return not self.body and not self.head.vars

    @property
    def vars(self) -> frozenset[Var]:
        """All variables in the clause."""
        result = self.head.vars
        for lit in self.body:
            result |= lit.vars
        return result

    @property
    def body_atoms(self) -> Iterator[Atom]:
        """The ordinary/ID atoms of the body (choice atoms excluded)."""
        return (lit.atom for lit in self.body if isinstance(lit.atom, Atom))

    @property
    def choice_atoms(self) -> tuple[ChoiceAtom, ...]:
        """The choice atoms of the body."""
        return tuple(lit.atom for lit in self.body
                     if isinstance(lit.atom, ChoiceAtom))

    def replace_body(self, body: tuple[Literal, ...]) -> "Clause":
        """Return a copy of this clause with a different body."""
        return Clause(self.head, body)

    def __str__(self) -> str:
        if not self.body:
            return f"{self.head}."
        return f"{self.head} :- {', '.join(str(lit) for lit in self.body)}."


@dataclass(frozen=True)
class Program:
    """A finite set of clauses, kept in source order.

    Provides the predicate-level views the paper uses: input predicates
    (EDB), output predicates (IDB), and the *related-to* closure ``P/q``.
    """

    clauses: tuple[Clause, ...] = ()
    name: str = "program"

    def __post_init__(self) -> None:
        self._check_arities()

    def _check_arities(self) -> None:
        arities: dict[str, int] = {}
        for clause in self.clauses:
            for atom in self._all_atoms(clause):
                if atom.is_builtin:
                    continue
                arity = atom.base_arity
                seen = arities.setdefault(atom.pred, arity)
                if seen != arity:
                    raise SchemaError(
                        f"predicate {atom.pred} used with arities "
                        f"{seen} and {arity}")

    @staticmethod
    def _all_atoms(clause: Clause) -> Iterator[Atom]:
        yield clause.head
        yield from clause.body_atoms

    @property
    def head_predicates(self) -> frozenset[str]:
        """Predicates defined by some clause (the paper's output predicates)."""
        return frozenset(c.head.pred for c in self.clauses)

    @property
    def body_predicates(self) -> frozenset[str]:
        """Non-arithmetic base predicates occurring in some body."""
        preds = set()
        for clause in self.clauses:
            for atom in clause.body_atoms:
                if not atom.is_builtin:
                    preds.add(atom.pred)
        return frozenset(preds)

    @property
    def input_predicates(self) -> frozenset[str]:
        """Predicates used in bodies but never defined (the EDB)."""
        return self.body_predicates - self.head_predicates

    @property
    def predicates(self) -> frozenset[str]:
        """All non-arithmetic predicates of the program."""
        return self.head_predicates | self.body_predicates

    @property
    def id_groupings(self) -> frozenset[tuple[str, frozenset[int]]]:
        """Every (base predicate, grouping) pair used by an ID-atom."""
        pairs = set()
        for clause in self.clauses:
            for atom in clause.body_atoms:
                if atom.is_id:
                    pairs.add((atom.pred, atom.group))
        return frozenset(pairs)

    def arity(self, pred: str) -> int:
        """The arity of ``pred`` as used in this program."""
        for clause in self.clauses:
            for atom in self._all_atoms(clause):
                if not atom.is_builtin and atom.pred == pred:
                    return atom.base_arity
        raise KeyError(f"predicate {pred} does not occur in the program")

    def clauses_defining(self, pred: str) -> tuple[Clause, ...]:
        """The clauses whose head predicate is ``pred``."""
        return tuple(c for c in self.clauses if c.head.pred == pred)

    def related_to(self, query: str) -> frozenset[str]:
        """The predicates of the program portion ``P/query`` (Section 3.1).

        A clause is related to ``query`` if its head predicate appears in a
        clause defining ``query`` or, recursively, in a clause related to it.
        """
        related = {query}
        frontier = [query]
        while frontier:
            pred = frontier.pop()
            for clause in self.clauses_defining(pred):
                for atom in clause.body_atoms:
                    if not atom.is_builtin and atom.pred not in related:
                        related.add(atom.pred)
                        frontier.append(atom.pred)
        return frozenset(related)

    def restrict_to(self, query: str) -> "Program":
        """The program portion ``P/query``: clauses related to ``query``."""
        related = self.related_to(query)
        return Program(
            tuple(c for c in self.clauses if c.head.pred in related),
            name=f"{self.name}/{query}")

    def u_constants(self) -> frozenset[str]:
        """All uninterpreted constants mentioned by the program.

        These form the set ``C`` making the defined query C-generic
        (Section 3.1).
        """
        consts = set()
        for clause in self.clauses:
            for atom in self._all_atoms(clause):
                for term in atom.args:
                    if isinstance(term, Const) and isinstance(term.value, str):
                        consts.add(term.value)
        return frozenset(consts)

    def extend(self, clauses: tuple[Clause, ...]) -> "Program":
        """Return a new program with extra clauses appended."""
        return Program(self.clauses + clauses, name=self.name)

    def has_choice(self) -> bool:
        """True when any clause uses the choice operator."""
        return any(c.choice_atoms for c in self.clauses)

    def has_id_atoms(self) -> bool:
        """True when any body uses an ID-atom."""
        return bool(self.id_groupings)

    def __str__(self) -> str:
        return "\n".join(str(c) for c in self.clauses)

    def __iter__(self) -> Iterator[Clause]:
        return iter(self.clauses)

    def __len__(self) -> int:
        return len(self.clauses)


def fact(pred: str, *values: Value) -> Clause:
    """Convenience constructor for a ground fact clause.

    >>> str(fact("emp", "ann", "toys"))
    'emp(ann, toys).'
    """
    return Clause(Atom(pred, tuple(Const(v) for v in values)))
