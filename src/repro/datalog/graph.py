"""Predicate dependency graphs.

For a clause ``h :- b1, ..., bn`` each non-arithmetic body atom contributes
an edge from its base predicate to ``h``.  An edge is **strict** when the
body literal is negative *or* is an ID-literal: the ID-relation of ``p`` can
only be materialized once ``p`` is complete, so ``p[s]`` constrains strata
exactly like negation (DESIGN.md, Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from .ast import Atom, Program


@dataclass(frozen=True, slots=True)
class Edge:
    """A dependency edge ``source -> target`` (target depends on source)."""

    source: str
    target: str
    strict: bool


@dataclass
class DependencyGraph:
    """Predicate-level dependency graph of a program."""

    nodes: frozenset[str]
    edges: tuple[Edge, ...]
    _successors: dict[str, list[Edge]] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        successors: dict[str, list[Edge]] = {n: [] for n in self.nodes}
        for edge in self.edges:
            successors[edge.source].append(edge)
        self._successors = successors

    @classmethod
    def of_program(cls, program: Program) -> "DependencyGraph":
        """Build the dependency graph of ``program``.

        Choice atoms contribute no edges (they mention only variables); the
        DATALOG^C front end compiles them away before stratification anyway.
        """
        nodes = set(program.predicates)
        edges = []
        seen: set[Edge] = set()
        for clause in program.clauses:
            target = clause.head.pred
            for literal in clause.body:
                atom = literal.atom
                if not isinstance(atom, Atom) or atom.is_builtin:
                    continue
                strict = (not literal.positive) or atom.is_id
                edge = Edge(atom.pred, target, strict)
                if edge not in seen:
                    seen.add(edge)
                    edges.append(edge)
        return cls(frozenset(nodes), tuple(edges))

    def successors(self, node: str) -> Iterator[Edge]:
        """Outgoing edges of ``node``."""
        return iter(self._successors.get(node, ()))

    def sccs(self) -> list[frozenset[str]]:
        """Strongly connected components in topological order.

        Iterative Tarjan (no recursion limit issues on deep programs);
        components are returned sources-first.
        """
        index: dict[str, int] = {}
        lowlink: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        components: list[frozenset[str]] = []
        counter = 0

        for root in sorted(self.nodes):
            if root in index:
                continue
            work: list[tuple[str, Iterator[Edge]]] = [
                (root, self.successors(root))]
            index[root] = lowlink[root] = counter
            counter += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, successors = work[-1]
                advanced = False
                for edge in successors:
                    succ = edge.target
                    if succ not in index:
                        index[succ] = lowlink[succ] = counter
                        counter += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append((succ, self.successors(succ)))
                        advanced = True
                        break
                    if succ in on_stack:
                        lowlink[node] = min(lowlink[node], index[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index[node]:
                    component = set()
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.add(member)
                        if member == node:
                            break
                    components.append(frozenset(component))
        # Tarjan emits components in reverse topological order.
        components.reverse()
        return components

    def edges_between(self, sources: Iterable[str],
                      targets: Iterable[str]) -> Iterator[Edge]:
        """Edges from any node in ``sources`` to any node in ``targets``."""
        target_set = frozenset(targets)
        for source in sources:
            for edge in self.successors(source):
                if edge.target in target_set:
                    yield edge
