"""Static sort inference for the two-sorted language (§2.2).

The paper's language is two-sorted, but the surface syntax leaves sorts
implicit ("we will not mention the sorts of variables and predicates if
they can be inferred from the context").  This module does that
inference: a union-find over *sort variables* — one per (predicate,
column) and one per (clause, variable) — with constraints from

* numeric / string constants at a position,
* arithmetic predicates (all i-sorted, except the polymorphic ``=``/``!=``),
* tid positions of ID-atoms (sort i),
* shared variables within a clause, and
* every occurrence of a predicate.

The result is a signature per predicate (``Sort`` per column, or ``None``
where unconstrained) — and a :class:`~repro.errors.SchemaError` pinpointing
any clause that uses one column both ways, *before* evaluation would hit
it as a runtime type error.  Databases can be validated against the
inferred signatures up front.
"""

from __future__ import annotations

from typing import Optional, Union

from ..errors import SchemaError
from .ast import Atom, Program
from .database import Database
from .parser import parse_program
from .terms import Const, Sort, Var

_POLYMORPHIC = frozenset({"=", "!="})


class _SortVars:
    """Union-find over sort variables with optional Sort labels."""

    def __init__(self) -> None:
        self._parent: dict = {}
        self._label: dict = {}

    def _find(self, key):
        self._parent.setdefault(key, key)
        root = key
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[key] != root:
            self._parent[key], key = root, self._parent[key]
        return root

    def unify(self, a, b, context: str) -> None:
        ra, rb = self._find(a), self._find(b)
        if ra == rb:
            return
        la, lb = self._label.get(ra), self._label.get(rb)
        if la is not None and lb is not None and la != lb:
            raise SchemaError(
                f"sort conflict {context}: one side is sort "
                f"{la.name.lower()}, the other {lb.name.lower()}")
        self._parent[ra] = rb
        if la is not None:
            self._label[rb] = la

    def assign(self, key, sort: Sort, context: str) -> None:
        root = self._find(key)
        current = self._label.get(root)
        if current is not None and current != sort:
            raise SchemaError(
                f"sort conflict {context}: inferred both "
                f"{current.name.lower()} and {sort.name.lower()}")
        self._label[root] = sort

    def label(self, key) -> Optional[Sort]:
        return self._label.get(self._find(key))


def infer_signatures(program: Union[str, Program],
                     ) -> dict[str, tuple[Optional[Sort], ...]]:
    """Infer the column sorts of every non-arithmetic predicate.

    Returns:
        Mapping predicate -> tuple of :class:`Sort` (or ``None`` when the
        program leaves the column unconstrained).

    Raises:
        SchemaError: on any sort conflict, naming the clause.
    """
    if isinstance(program, str):
        program = parse_program(program)
    uf = _SortVars()

    for ci, clause in enumerate(program.clauses):
        context = f"in `{clause}`"
        atoms = [(clause.head, True)]
        atoms += [(lit.atom, lit.positive) for lit in clause.body
                  if isinstance(lit.atom, Atom)]
        for atom, _positive in atoms:
            if atom.is_builtin:
                for term in atom.args:
                    key = ("var", ci, term) if isinstance(term, Var) \
                        else None
                    if atom.pred in _POLYMORPHIC:
                        continue  # polymorphic equality constrains nothing
                    if isinstance(term, Const):
                        if not isinstance(term.value, int):
                            raise SchemaError(
                                f"arithmetic argument {term} is not "
                                f"numeric {context}")
                    else:
                        uf.assign(key, Sort.I, context)
                if atom.pred in _POLYMORPHIC:
                    left, right = atom.args
                    lk = ("var", ci, left) if isinstance(left, Var) else None
                    rk = ("var", ci, right) if isinstance(right, Var) \
                        else None
                    if lk is not None and rk is not None:
                        uf.unify(lk, rk, context)
                    elif lk is not None and isinstance(right, Const):
                        uf.assign(lk, _sort_of(right), context)
                    elif rk is not None and isinstance(left, Const):
                        uf.assign(rk, _sort_of(left), context)
                continue
            base = atom.base_arity
            for j, term in enumerate(atom.args):
                if atom.is_id and j == base:
                    # The tid column: always sort i, not a base column.
                    if isinstance(term, Var):
                        uf.assign(("var", ci, term), Sort.I, context)
                    continue
                column = ("col", atom.pred, j)
                if isinstance(term, Const):
                    uf.assign(column, _sort_of(term), context)
                else:
                    uf.unify(column, ("var", ci, term), context)

    signatures: dict[str, tuple[Optional[Sort], ...]] = {}
    for pred in sorted(program.predicates):
        arity = program.arity(pred)
        signatures[pred] = tuple(
            uf.label(("col", pred, j)) for j in range(arity))
    return signatures


def _sort_of(const: Const) -> Sort:
    return Sort.I if isinstance(const.value, int) else Sort.U


def check_database_sorts(program: Union[str, Program],
                         db: Database) -> None:
    """Validate a database against the program's inferred signatures.

    Raises:
        SchemaError: when some stored relation's column carries the wrong
            sort for how the program uses it.
    """
    if isinstance(program, str):
        program = parse_program(program)
    signatures = infer_signatures(program)
    for pred, signature in signatures.items():
        if pred not in db:
            continue
        relation = db.relation(pred)
        actual = relation.schema
        if actual is None:
            continue  # empty relation constrains nothing
        if len(actual) != len(signature):
            raise SchemaError(
                f"relation {pred} has arity {len(actual)}, the program "
                f"uses it with arity {len(signature)}")
        for j, (inferred, stored) in enumerate(zip(signature, actual)):
            if inferred is not None and inferred != stored:
                raise SchemaError(
                    f"relation {pred}, column {j + 1}: stored sort "
                    f"{stored.name.lower()} but the program requires "
                    f"{inferred.name.lower()}")


def format_signatures(signatures: dict[str, tuple[Optional[Sort], ...]],
                      ) -> str:
    """Render signatures in the paper's 0/1 notation (``?`` = unknown)."""
    lines = []
    for pred, signature in sorted(signatures.items()):
        rendered = "".join(
            "?" if s is None else ("1" if s is Sort.I else "0")
            for s in signature)
        lines.append(f"{pred}/{len(signature)}: {rendered}")
    return "\n".join(lines)
