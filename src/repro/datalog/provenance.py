"""Provenance: why is this tuple in the result?

Given a materialized evaluation, :func:`explain_tuple` reconstructs one
derivation tree for a tuple — the clause instance that produced it, with
each positive body fact recursively explained and each negative/builtin
literal recorded as a leaf check.  Reconstruction runs against the final
relations, which is sound for stratified programs: every derived fact has
a derivation whose positive sub-facts are themselves in the final
relations, with strictly smaller height at the same stratum.

Trees render as indented text (``format_tree``) for debugging and the
shell's ``.why`` command.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..errors import EvaluationError
from .ast import Atom, Clause, Program
from .database import Database
from .parser import parse_program
from .safety import order_body
from .seminaive import EvalStats, RelationStore, _solve_literals
from .terms import Const, Value, Var

Fact = tuple[str, tuple[Value, ...]]


@dataclass(frozen=True)
class Derivation:
    """One node of a derivation tree.

    Attributes:
        fact: The derived (pred, row).
        clause: The clause instance used, or None for EDB facts.
        children: Derivations of the positive body facts, in body order.
        checks: Ground builtin / negative literals the instance passed.
    """

    fact: Fact
    clause: Optional[Clause] = None
    children: tuple["Derivation", ...] = ()
    checks: tuple[str, ...] = ()

    @property
    def is_edb(self) -> bool:
        """True for a base-fact leaf."""
        return self.clause is None

    @property
    def height(self) -> int:
        """Leaf = 0; otherwise 1 + max child height."""
        if not self.children:
            return 0
        return 1 + max(child.height for child in self.children)

    def facts_used(self) -> frozenset[Fact]:
        """Every fact appearing anywhere in the tree."""
        used = {self.fact}
        for child in self.children:
            used |= child.facts_used()
        return frozenset(used)


def format_tree(derivation: Derivation, indent: str = "") -> str:
    """Render a derivation tree as indented text."""
    pred, row = derivation.fact
    rendered = f"{pred}({', '.join(map(str, row))})"
    if derivation.is_edb:
        lines = [f"{indent}{rendered}   [edb]"]
    else:
        lines = [f"{indent}{rendered}   [via {derivation.clause}]"]
        for check in derivation.checks:
            lines.append(f"{indent}  ✓ {check}")
        for child in derivation.children:
            lines.append(format_tree(child, indent + "  "))
    return "\n".join(lines)


class Explainer:
    """Builds derivation trees against a finished evaluation.

    Args:
        program: The evaluated program.
        database: The *result* database (all relations materialized) — as
            returned by ``DatalogEngine.run(db).database`` or
            ``IdlogEngine.run(db).database``.
        id_relations: For IDLOG programs, the concrete ID-relations the
            evaluation used — ``EvalResult.id_relations``.  Without them
            the support of ID-literals cannot be reconstructed.
    """

    def __init__(self, program: Union[str, Program],
                 database: Database, id_relations=None) -> None:
        if isinstance(program, str):
            program = parse_program(program)
        self.program = program
        self.database = database

        class _Provider:
            def __init__(self, table) -> None:
                self._table = dict(table or {})

            def materialize(self, pred, group, base, stats):
                relation = self._table.get((pred, group))
                if relation is None:
                    raise EvaluationError(
                        f"no ID-relation recorded for {pred}"
                        f"[{sorted(group)}]; pass EvalResult.id_relations "
                        "to Explainer")
                return relation

        stats = EvalStats()
        self._store = RelationStore(_Provider(id_relations), stats)
        for pred in program.predicates:
            if pred in database:
                self._store.install(pred, database.relation(pred))
            else:
                from .database import Relation
                self._store.install(pred, Relation(program.arity(pred)))

    def explain(self, pred: str, row: tuple[Value, ...],
                max_depth: int = 200) -> Derivation:
        """One derivation of ``pred(row)``.

        Raises:
            EvaluationError: when the tuple is not in the relation, or no
                clause instance re-derives it (inconsistent inputs).
        """
        return self._explain((pred, tuple(row)), max_depth, set())

    def _explain(self, fact: Fact, depth: int,
                 visiting: set[Fact]) -> Derivation:
        pred, row = fact
        if depth <= 0:
            raise EvaluationError("derivation search exceeded max_depth")
        relation = self.database.relation(pred) if pred in self.database \
            else None
        if relation is None or row not in relation:
            raise EvaluationError(
                f"{pred}{row!r} is not in the result — nothing to explain")
        if pred in self.program.input_predicates \
                or pred not in self.program.head_predicates:
            return Derivation(fact)
        if fact in visiting:
            raise EvaluationError(
                f"cyclic support for {pred}{row!r}")  # pragma: no cover

        visiting = visiting | {fact}
        for clause in self.program.clauses_defining(pred):
            derivation = self._try_clause(clause, fact, depth, visiting)
            if derivation is not None:
                return derivation
        raise EvaluationError(
            f"no clause instance derives {pred}{row!r}; was the database "
            "produced by this program?")

    def _try_clause(self, clause: Clause, fact: Fact, depth: int,
                    visiting: set[Fact]) -> Optional[Derivation]:
        _, row = fact
        subst: dict[Var, Value] = {}
        for term, value in zip(clause.head.args, row):
            if isinstance(term, Const):
                if term.value != value:
                    return None
            else:
                bound = subst.get(term)
                if bound is None:
                    subst[term] = value
                elif bound != value:
                    return None
        if not clause.body:
            return Derivation(fact, clause)
        plan = order_body(clause, initially_bound=frozenset(subst))
        stats = EvalStats()
        for final in _solve_literals(plan, 0, dict(subst), self._store,
                                     stats, {}):
            head = tuple(
                t.value if isinstance(t, Const) else final[t]
                for t in clause.head.args)
            if head != row:
                continue
            derivation = self._build_node(clause, fact, final, depth,
                                          visiting)
            if derivation is not None:
                return derivation
        return None

    def _build_node(self, clause: Clause, fact: Fact,
                    subst: dict[Var, Value], depth: int,
                    visiting: set[Fact]) -> Optional[Derivation]:
        children = []
        checks = []
        for literal in clause.body:
            atom = literal.atom
            assert isinstance(atom, Atom)
            ground = tuple(
                t.value if isinstance(t, Const) else subst[t]
                for t in atom.args)
            if atom.is_builtin or not literal.positive:
                prefix = "" if literal.positive else "not "
                checks.append(
                    f"{prefix}{atom.pred}({', '.join(map(str, ground))})")
                continue
            if atom.is_id:
                # ID-facts are leaves: their support is the assignment.
                children.append(Derivation((f"{atom.pred}[id]", ground)))
                continue
            sub_fact = (atom.pred, ground)
            if sub_fact in visiting:
                return None  # this instance supports itself; try another
            try:
                children.append(self._explain(sub_fact, depth - 1,
                                              visiting))
            except EvaluationError:
                return None
        return Derivation(fact, clause, tuple(children), tuple(checks))


def explain_tuple(program: Union[str, Program], database: Database,
                  pred: str, row: tuple[Value, ...],
                  id_relations=None) -> Derivation:
    """One-shot: build a derivation with a fresh :class:`Explainer`."""
    return Explainer(program, database, id_relations).explain(pred, row)
