"""Cost-based clause planning for the bottom-up engines.

:func:`repro.datalog.safety.order_body` orders a clause body purely
syntactically: filters as soon as they are evaluable, positive literals by
the number of already-bound variables, ties broken by source order.  That
never looks at relation cardinalities, so a clause written
``q() :- big(X, Y), small(Y)`` scans the big relation first and probes the
small one once per scanned tuple — swamping exactly the intermediate-tuple
savings the paper's Section 4 optimizations are after.

This module adds a *cost-based* planner in the LDL++ tradition of
cardinality-aware rule compilation:

* **Same safety envelope.**  The cost planner shares the filter-scheduling
  pass, forced-first validation, stuck diagnosis and head-variable check
  with ``order_body``, so it raises :class:`SafetyError` on exactly the
  clauses ``order_body`` rejects — "checked safe" still coincides with
  "evaluable" for every plan mode.
* **Cost model.**  Positive relation literals are chosen to minimize the
  estimated number of join probes, using relation cardinalities and
  per-position distinct-value counts (:meth:`Relation.column_stats`) under
  the textbook uniform-distribution independence assumptions.  Under the
  columnar store those counts are one C-level ``set()`` pass per
  ``array('q')`` code vector (code equality is value equality, so distinct
  codes = distinct constants), which keeps re-costing cheap enough to run
  inside the fixpoint.  The estimate mirrors the engine's actual counter:
  one probe per tuple an index lookup (or full scan) yields, with a floor
  of one probe per lookup.
* **Plan caching.**  :class:`ClausePlanner` compiles one plan per
  (clause, delta-position) pair and reuses it across fixpoint rounds; a
  cost plan is re-costed only when some body relation's cardinality has
  drifted by more than ``recost_threshold`` (a factor, default 2.0) since
  the plan was built.  ``EvalStats.plans_built`` / ``plans_reused`` count
  the cache behavior.

The same planner object serves the plain Datalog engine and the IDLOG
engine; ID-atoms are costed through their *base* relation (planning never
materializes an ID-relation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..errors import SchemaError
from .ast import Atom, Clause, Literal
from .database import Relation
from .pretty import format_clause, format_literal
from .safety import (_binds, _bound_var_count, _check_head_bound,
                     _choose_filter, _selectable, _stuck_error, _take_first,
                     binding_pattern, order_body)
from .terms import Const, Var
from .trace import EV_PLAN_BUILT, EV_PLAN_DRIFT

GREEDY = "greedy"
COST = "cost"
PLAN_MODES = (GREEDY, COST)

#: Maps a base predicate name to its current relation (``None`` when the
#: planner has no statistics for it; estimates then fall back to neutral
#: defaults).  ID-atoms are looked up under their base predicate.
Resolver = Callable[[str], Optional[Relation]]


def check_plan_mode(plan: str) -> str:
    """Validate a ``plan=`` knob value, returning it unchanged.

    Raises:
        SchemaError: when ``plan`` is not one of :data:`PLAN_MODES`.
    """
    if plan not in PLAN_MODES:
        raise SchemaError(
            f"unknown plan mode {plan!r}; expected one of {PLAN_MODES}")
    return plan


def _no_stats(pred: str) -> Optional[Relation]:
    """Default resolver: no cardinality information available."""
    return None


@dataclass(frozen=True)
class LiteralEstimate:
    """The cost model's view of one scheduled literal.

    Attributes:
        literal: The scheduled literal.
        kind: ``scan`` / ``index probe`` / ``builtin`` / ``anti-join``
            (``id-scan`` / ``id-probe`` for ID-atoms).
        pattern: The b/n binding pattern the literal runs under.
        matches: Expected tuples yielded per input substitution.
        probes: Estimated total probes this literal contributes.
        rows: Estimated substitutions flowing to the next literal.
    """

    literal: Literal
    kind: str
    pattern: str
    matches: float
    probes: float
    rows: float


@dataclass(frozen=True)
class ClausePlan:
    """A compiled evaluation order plus the estimates that justified it.

    Attributes:
        clause: The planned clause.
        mode: ``"greedy"`` or ``"cost"``.
        order: The literal evaluation order.
        estimates: Per-literal cost annotations, parallel to ``order``.
        cost: Total estimated probes for one evaluation of the clause.
        cardinalities: Snapshot of ``(base predicate, size)`` pairs at
            planning time — what :class:`ClausePlanner` compares against to
            decide whether a cached plan has gone stale.
    """

    clause: Clause
    mode: str
    order: tuple[Literal, ...]
    estimates: tuple[LiteralEstimate, ...]
    cost: float
    cardinalities: tuple[tuple[str, int], ...]


def _positive_estimate(atom: Atom, bound: frozenset[Var],
                       resolver: Resolver) -> tuple[float, float]:
    """(matches, survivors) per input substitution for a relation literal.

    ``matches`` models what ``Relation.match`` yields for the probe pattern
    (constants and outside-bound variables select an index); ``survivors``
    additionally discounts repeated unbound variables, which only filter
    after the probe.  ID-atoms are estimated from their base relation, with
    the tid position treated as uniform over the expected block size.
    """
    relation = resolver(atom.pred)
    if relation is None:
        return 1.0, 1.0
    size = len(relation)
    if size == 0:
        return 0.0, 0.0
    distinct = relation.column_stats()
    base_args = atom.args[:-1] if atom.is_id else atom.args
    probe_selectivity = 1.0
    extra_selectivity = 1.0
    seen: set[Var] = set()
    for i, term in enumerate(base_args):
        d = max(1, distinct[i]) if i < len(distinct) else 1
        if isinstance(term, Const) or term in bound:
            probe_selectivity /= d
        elif isinstance(term, Var) and term in seen:
            extra_selectivity /= d
        if isinstance(term, Var):
            seen.add(term)
    if atom.is_id:
        # The tid column is uniform over 0..blocksize-1; the expected block
        # size is |R| over the number of grouping-key combinations.
        groups = 1
        for position in atom.group:
            groups *= max(1, distinct[position - 1])
        groups = min(groups, size)
        block = max(1, -(-size // groups))
        tid = atom.args[-1]
        if isinstance(tid, Const) or tid in bound:
            probe_selectivity /= block
        elif isinstance(tid, Var) and tid in seen:
            extra_selectivity /= block
    matches = size * probe_selectivity
    return matches, matches * extra_selectivity


def _filter_estimate(literal: Literal,
                     bound: frozenset[Var]) -> tuple[float, float]:
    """(matches, survivors) for a builtin or negated literal."""
    atom = literal.atom
    if isinstance(atom, Atom) and atom.is_builtin and literal.positive \
            and "n" in binding_pattern(atom, bound):
        # Value-generating builtin (e.g. nnb-plus): a couple of solutions.
        return 2.0, 2.0
    # Ground test (comparison, negated builtin, or anti-join).
    return 1.0, 0.5


def _literal_kind(literal: Literal, bound: frozenset[Var]) -> str:
    atom = literal.atom
    assert isinstance(atom, Atom)
    if not literal.positive:
        return "anti-join"
    if atom.is_builtin:
        return "builtin"
    pattern = binding_pattern(atom, bound)
    if "b" in pattern:
        return "id-probe" if atom.is_id else "index probe"
    return "id-scan" if atom.is_id else "scan"


def _annotate(clause: Clause, order: tuple[Literal, ...], mode: str,
              resolver: Resolver,
              initially_bound: frozenset[Var]) -> ClausePlan:
    """Attach cost estimates to an already-chosen order."""
    bound = frozenset(initially_bound)
    rows = 1.0
    cost = 0.0
    estimates: list[LiteralEstimate] = []
    for literal in order:
        atom = literal.atom
        assert isinstance(atom, Atom)
        pattern = binding_pattern(atom, bound)
        if atom.is_builtin or not literal.positive:
            matches, factor = _filter_estimate(literal, bound)
            survivors = rows * factor
        else:
            matches, per_row = _positive_estimate(atom, bound, resolver)
            survivors = rows * per_row
        # The engine counts one probe per yielded tuple, with a floor of
        # one probe per lookup (see seminaive._solve_literals).
        probes = rows * max(1.0, matches)
        cost += probes
        estimates.append(LiteralEstimate(
            literal, _literal_kind(literal, bound), pattern,
            matches, probes, survivors))
        rows = survivors
        bound |= _binds(literal)
    snapshot = tuple(sorted({
        atom.pred: len(resolver(atom.pred) or ())
        for atom in clause.body_atoms if not atom.is_builtin}.items()))
    return ClausePlan(clause, mode, tuple(order), tuple(estimates),
                      cost, snapshot)


def plan_body(clause: Clause,
              resolver: Resolver = _no_stats,
              initially_bound: frozenset[Var] = frozenset(),
              first: Optional[Literal] = None,
              mode: str = COST) -> ClausePlan:
    """Plan a clause body, returning the order plus its cost estimates.

    With ``mode="greedy"`` the order is exactly
    :func:`~repro.datalog.safety.order_body`'s (annotated with the same
    cost model, which is what lets EXPLAIN show both plans side by side).
    With ``mode="cost"`` positive relation literals are chosen to minimize
    estimated probes instead of maximizing bound variables.

    Raises:
        SafetyError: on exactly the clauses ``order_body`` rejects.
        SchemaError: on an unknown ``mode``.
    """
    check_plan_mode(mode)
    if mode == GREEDY:
        order = order_body(clause, initially_bound, first)
        return _annotate(clause, order, mode, resolver, initially_bound)

    remaining = list(clause.body)
    ordered: list[Literal] = []
    bound = frozenset(initially_bound)
    rows = 1.0
    if first is not None:
        _take_first(first, remaining)
        ordered.append(first)
        bound |= _binds(first)

    while remaining:
        # Pass 1: identical filter scheduling to order_body.
        chosen = _choose_filter(remaining, bound)
        if chosen is None:
            # Pass 2: the cheapest selectable positive relation literal.
            best_key: Optional[tuple] = None
            best_rows = rows
            for position, literal in enumerate(remaining):
                if not _selectable(literal, bound):
                    continue
                matches, survivors = _positive_estimate(
                    literal.atom, bound, resolver)
                key = (rows * max(1.0, matches), rows * survivors,
                       -_bound_var_count(literal, bound), position)
                if best_key is None or key < best_key:
                    best_key = key
                    chosen = literal
                    best_rows = rows * survivors
            if chosen is not None:
                rows = best_rows
        if chosen is None:
            raise _stuck_error(clause, remaining, bound)
        remaining.remove(chosen)
        ordered.append(chosen)
        bound |= _binds(chosen)

    _check_head_bound(clause, bound)
    return _annotate(clause, tuple(ordered), mode, resolver, initially_bound)


class ClausePlanner:
    """Compiled-plan cache shared by one evaluation.

    One planner instance lives for the duration of one fixpoint evaluation
    (or one engine, if the caller prefers); plans are keyed by
    ``(clause identity, delta position)``.  Greedy plans never go stale
    (the greedy order ignores cardinalities); cost plans are re-costed
    when any body relation's cardinality has drifted by more than
    ``recost_threshold`` since the plan was compiled.

    Args:
        mode: ``"greedy"`` (the syntactic order) or ``"cost"``.
        recost_threshold: Staleness factor; a cached cost plan is rebuilt
            when some body relation's cardinality grew or shrank by more
            than this factor (compared with +1 smoothing so tiny relations
            do not thrash the cache).
        tracer: Optional span-event receiver; every *built* plan (cache
            misses and re-costings, not cache hits) emits one
            ``plan_built`` event carrying the chosen order and its
            estimated cost.  The :attr:`stratum` attribute labels those
            events and is maintained by the stratum loop.
    """

    def __init__(self, mode: str = GREEDY,
                 recost_threshold: float = 2.0,
                 tracer=None) -> None:
        self.mode = check_plan_mode(mode)
        self.recost_threshold = recost_threshold
        self.tracer = tracer
        #: Stratum index stamped on emitted events (set by the caller).
        self.stratum = 0
        self._plans: dict[tuple[int, Optional[int]], ClausePlan] = {}

    def plan(self, clause: Clause, resolver: Resolver = _no_stats,
             delta_index: Optional[int] = None,
             stats=None) -> ClausePlan:
        """The (cached) plan for one clause / delta-position pair.

        Args:
            clause: The clause to plan.
            resolver: Current relation lookup for cost estimates.
            delta_index: Source position of the semi-naive delta literal,
                forced to run first (``None`` for the naive variant).
            stats: Optional :class:`~repro.datalog.seminaive.EvalStats`
                whose ``plans_built`` / ``plans_reused`` counters to bump.
        """
        key = (id(clause), delta_index)
        cached = self._plans.get(key)
        if cached is not None and \
                (self.mode == GREEDY or not self._stale(cached, resolver)):
            if stats is not None:
                stats.plans_reused += 1
            return cached
        first = clause.body[delta_index] if delta_index is not None else None
        plan = plan_body(clause, resolver, first=first, mode=self.mode)
        self._plans[key] = plan
        if stats is not None:
            stats.plans_built += 1
        if self.tracer is not None:
            text = format_clause(clause)
            self.tracer.emit(
                EV_PLAN_BUILT, clause=text,
                stratum=self.stratum, delta_index=delta_index,
                mode=self.mode, cost=plan.cost,
                recosted=cached is not None,
                order=" -> ".join(format_literal(lit)
                                  for lit in plan.order))
            # The plan-drift audit trail: re-costing that actually flips
            # the chosen order mid-fixpoint (not mere re-costing, which
            # usually re-derives the same order with fresher numbers).
            if cached is not None and plan.order != cached.order:
                self.tracer.emit(
                    EV_PLAN_DRIFT, clause=text,
                    stratum=self.stratum, delta_index=delta_index,
                    mode=self.mode,
                    old_cost=cached.cost, new_cost=plan.cost,
                    old_order=" -> ".join(format_literal(lit)
                                          for lit in cached.order),
                    new_order=" -> ".join(format_literal(lit)
                                          for lit in plan.order))
        return plan

    def order(self, clause: Clause, resolver: Resolver = _no_stats,
              delta_index: Optional[int] = None,
              stats=None) -> tuple[Literal, ...]:
        """Like :meth:`plan`, returning just the literal order."""
        return self.plan(clause, resolver, delta_index, stats).order

    def _stale(self, plan: ClausePlan, resolver: Resolver) -> bool:
        threshold = self.recost_threshold
        for pred, old in plan.cardinalities:
            relation = resolver(pred)
            new = len(relation) if relation is not None else 0
            low, high = sorted((old, new))
            if high + 1 > threshold * (low + 1):
                return True
        return False
