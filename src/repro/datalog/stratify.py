"""Stratification of programs with negation and ID-literals.

A program is stratified when its predicates can be assigned stratum numbers
such that every positive body dependency is non-increasing and every strict
dependency (negation or ID-literal) strictly decreases.  The paper's
"stratified IDLOG" (Theorem 1, Theorem 6) is exactly this condition with
ID-literals counted as strict.

Stratum numbers are computed on the condensation of the dependency graph as
the longest strict-edge path from any source, which yields the minimal
stratification (and, for Theorem 2's translated programs, the paper's four
strata).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import StratificationError
from .ast import Program
from .graph import DependencyGraph


@dataclass(frozen=True)
class Stratification:
    """The result of stratifying a program.

    Attributes:
        strata: Predicates grouped by stratum, lowest first.
        level: Mapping predicate -> stratum index.
    """

    strata: tuple[frozenset[str], ...]
    level: dict[str, int]

    @property
    def depth(self) -> int:
        """Number of strata."""
        return len(self.strata)

    def stratum_of(self, pred: str) -> int:
        """The stratum index of ``pred`` (EDB predicates are stratum 0)."""
        return self.level.get(pred, 0)


def stratify(program: Program) -> Stratification:
    """Stratify ``program`` or raise :class:`StratificationError`.

    Raises:
        StratificationError: when some predicate depends on itself through
            negation or an ID-literal.
    """
    graph = DependencyGraph.of_program(program)
    components = graph.sccs()
    component_of: dict[str, int] = {}
    for i, component in enumerate(components):
        for pred in component:
            component_of[pred] = i

    # A strict edge inside one SCC means recursion through negation/tids.
    for edge in graph.edges:
        if edge.strict and component_of[edge.source] == component_of[edge.target]:
            kind = "an ID-literal or negation"
            raise StratificationError(
                f"predicate {edge.target} depends on {edge.source} through "
                f"{kind} inside a recursive component: program is not "
                "stratified")

    # Longest-path levels over the condensation: components arrive in
    # topological order, so one forward pass suffices.
    level_of_component = [0] * len(components)
    for i, component in enumerate(components):
        for pred in component:
            for edge in graph.successors(pred):
                j = component_of[edge.target]
                if j == i:
                    continue
                required = level_of_component[i] + (1 if edge.strict else 0)
                if required > level_of_component[j]:
                    level_of_component[j] = required

    level = {pred: level_of_component[component_of[pred]]
             for pred in graph.nodes}
    depth = max(level_of_component, default=-1) + 1
    strata = tuple(
        frozenset(p for p, lv in level.items() if lv == k)
        for k in range(depth))
    return Stratification(strata, level)


def is_stratified(program: Program) -> bool:
    """True when the program admits a stratification."""
    try:
        stratify(program)
    except StratificationError:
        return False
    return True
