"""Arithmetic predicates (the paper's Section 2.2).

The language fixes the interpretation of a family of arithmetic predicates
over sort *i*: ``succ`` (the only primitive one in the paper; the others are
definable from it, but we provide them natively for efficiency), the ternary
operations ``+ - * / mod`` read as ``op(A, B, C)`` meaning ``A op B = C``,
the comparisons ``< <= > >=``, and the (two-sorted) equality ``=`` and
disequality ``!=``.

Each builtin carries a table of *allowed binding patterns* — strings over
``b`` (bound) and ``n`` (unbound) — the paper's sufficient condition for
safety.  For ``+`` the allowed patterns are ``bbb, bbn, bnb, nbb, nnb``
exactly as listed in the paper: ``+(N, L, M)`` with only ``M`` bound has
finitely many solutions (``L + M = 1`` in the paper's example), whereas
``1 + L = M`` has infinitely many and is rejected.

A builtin is *solved* against a partially bound argument tuple; it yields
zero or more fully ground argument tuples.  Patterns that are only
conditionally finite (``*(0, Y, 0)``) raise :class:`UnsafeBuiltinError` at
run time rather than looping forever.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from ..errors import EvaluationError, UnsafeBuiltinError
from .terms import Value

Partial = tuple[Optional[Value], ...]
"""A partially bound argument tuple: ``None`` marks an unbound position."""

Solver = Callable[[Partial], Iterator[tuple[Value, ...]]]


@dataclass(frozen=True)
class BuiltinSpec:
    """Static description of one arithmetic predicate.

    Attributes:
        name: The surface name (``succ``, ``+``, ``<``, ...).
        arity: Number of arguments.
        patterns: Allowed binding patterns (the safety table).
        solve: Generator producing ground solutions for a partial binding.
        numeric: True when every argument must be of sort i.
    """

    name: str
    arity: int
    patterns: frozenset[str]
    solve: Solver
    numeric: bool = True

    def allows(self, pattern: str) -> bool:
        """Return True when ``pattern`` (or a more-bound variant of an
        allowed pattern) is permitted.

        A position that an allowed pattern marks unbound may always be bound
        instead — extra bindings only filter solutions.
        """
        if len(pattern) != self.arity:
            return False
        for allowed in self.patterns:
            if all(p == "b" or a == "n" for p, a in zip(pattern, allowed)):
                return True
        return False


def _require_nat(value: Value, name: str) -> int:
    if not isinstance(value, int) or isinstance(value, bool):
        raise EvaluationError(
            f"arithmetic predicate {name} applied to non-numeric value {value!r}")
    return value


def _solve_succ(args: Partial) -> Iterator[tuple[Value, ...]]:
    a, b = args
    if a is not None:
        a = _require_nat(a, "succ")
        if b is None or b == a + 1:
            yield (a, a + 1)
    elif b is not None:
        b = _require_nat(b, "succ")
        if b >= 1:
            yield (b - 1, b)
    else:
        raise UnsafeBuiltinError("succ with both arguments unbound")


def _solve_add(args: Partial) -> Iterator[tuple[Value, ...]]:
    a, b, c = args
    known = [x if x is None else _require_nat(x, "+") for x in (a, b, c)]
    a, b, c = known
    if a is not None and b is not None:
        total = a + b
        if c is None or c == total:
            yield (a, b, total)
    elif c is not None:
        if a is not None:
            if c >= a:
                yield (a, c - a, c)
        elif b is not None:
            if c >= b:
                yield (c - b, b, c)
        else:
            for x in range(c + 1):  # the paper's nnb pattern: finitely many
                yield (x, c - x, c)
    else:
        raise UnsafeBuiltinError("+ with an unbound result and unbound operand")


def _solve_sub(args: Partial) -> Iterator[tuple[Value, ...]]:
    # -(A, B, C) means A - B = C over the naturals, i.e. A = B + C.
    a, b, c = args
    known = [x if x is None else _require_nat(x, "-") for x in (a, b, c)]
    a, b, c = known
    if a is not None and b is not None:
        if a >= b and (c is None or c == a - b):
            yield (a, b, a - b)
    elif a is not None and c is not None:
        if a >= c:
            yield (a, a - c, c)
    elif b is not None and c is not None:
        yield (b + c, b, c)
    elif a is not None:
        for x in range(a + 1):  # B+C = A: finitely many over the naturals
            yield (a, x, a - x)
    else:
        raise UnsafeBuiltinError("- needs its first argument or two others bound")


def _solve_mul(args: Partial) -> Iterator[tuple[Value, ...]]:
    a, b, c = args
    known = [x if x is None else _require_nat(x, "*") for x in (a, b, c)]
    a, b, c = known
    if a is not None and b is not None:
        prod = a * b
        if c is None or c == prod:
            yield (a, b, prod)
    elif c is not None:
        if a is not None:
            if a == 0:
                if c == 0:
                    raise UnsafeBuiltinError("*(0, Y, 0) has infinitely many solutions")
                return
            if c % a == 0:
                yield (a, c // a, c)
        elif b is not None:
            if b == 0:
                if c == 0:
                    raise UnsafeBuiltinError("*(X, 0, 0) has infinitely many solutions")
                return
            if c % b == 0:
                yield (c // b, b, c)
        else:
            if c == 0:
                raise UnsafeBuiltinError("*(X, Y, 0) has infinitely many solutions")
            d = 1
            while d * d <= c:
                if c % d == 0:
                    yield (d, c // d, c)
                    if d != c // d:
                        yield (c // d, d, c)
                d += 1
    else:
        raise UnsafeBuiltinError("* with an unbound result and unbound operand")


def _solve_div(args: Partial) -> Iterator[tuple[Value, ...]]:
    # /(A, B, C) means floor(A / B) = C; B must be positive.
    a, b, c = args
    known = [x if x is None else _require_nat(x, "/") for x in (a, b, c)]
    a, b, c = known
    if a is None or b is None:
        raise UnsafeBuiltinError("/ requires its first two arguments bound")
    if b == 0:
        raise EvaluationError("division by zero")
    q = a // b
    if c is None or c == q:
        yield (a, b, q)


def _solve_mod(args: Partial) -> Iterator[tuple[Value, ...]]:
    a, b, c = args
    known = [x if x is None else _require_nat(x, "mod") for x in (a, b, c)]
    a, b, c = known
    if a is None or b is None:
        raise UnsafeBuiltinError("mod requires its first two arguments bound")
    if b == 0:
        raise EvaluationError("modulo by zero")
    r = a % b
    if c is None or c == r:
        yield (a, b, r)


def _comparison(name: str, op: Callable[[int, int], bool]) -> Solver:
    def solve(args: Partial) -> Iterator[tuple[Value, ...]]:
        a, b = args
        if a is None or b is None:
            raise UnsafeBuiltinError(f"{name} requires both arguments bound")
        a = _require_nat(a, name)
        b = _require_nat(b, name)
        if op(a, b):
            yield (a, b)

    return solve


def _solve_eq(args: Partial) -> Iterator[tuple[Value, ...]]:
    a, b = args
    if a is not None and b is not None:
        if a == b:
            yield (a, b)
    elif a is not None:
        yield (a, a)
    elif b is not None:
        yield (b, b)
    else:
        raise UnsafeBuiltinError("= with both sides unbound")


def _solve_neq(args: Partial) -> Iterator[tuple[Value, ...]]:
    a, b = args
    if a is None or b is None:
        raise UnsafeBuiltinError("!= requires both sides bound")
    if a != b:
        yield (a, b)


_REGISTRY: dict[str, BuiltinSpec] = {}


def _register(spec: BuiltinSpec) -> None:
    _REGISTRY[spec.name] = spec


_register(BuiltinSpec("succ", 2, frozenset({"bn", "nb"}), _solve_succ))
_register(BuiltinSpec("+", 3, frozenset({"bbn", "bnb", "nbb", "nnb"}), _solve_add))
_register(BuiltinSpec("-", 3, frozenset({"bbn", "bnb", "nbb", "bnn"}), _solve_sub))
_register(BuiltinSpec("*", 3, frozenset({"bbn", "bnb", "nbb", "nnb"}), _solve_mul))
_register(BuiltinSpec("/", 3, frozenset({"bbn"}), _solve_div))
_register(BuiltinSpec("mod", 3, frozenset({"bbn"}), _solve_mod))
_register(BuiltinSpec("<", 2, frozenset({"bb"}), _comparison("<", lambda a, b: a < b)))
_register(BuiltinSpec("<=", 2, frozenset({"bb"}), _comparison("<=", lambda a, b: a <= b)))
_register(BuiltinSpec(">", 2, frozenset({"bb"}), _comparison(">", lambda a, b: a > b)))
_register(BuiltinSpec(">=", 2, frozenset({"bb"}), _comparison(">=", lambda a, b: a >= b)))
_register(BuiltinSpec("=", 2, frozenset({"bn", "nb"}), _solve_eq, numeric=False))
_register(BuiltinSpec("!=", 2, frozenset({"bb"}), _solve_neq, numeric=False))


def is_builtin_name(name: str) -> bool:
    """Return True when ``name`` denotes an arithmetic predicate."""
    return name in _REGISTRY


def builtin_spec(name: str) -> BuiltinSpec:
    """Look up the :class:`BuiltinSpec` for ``name``.

    Raises:
        KeyError: if ``name`` is not a builtin.
    """
    return _REGISTRY[name]


def builtin_names() -> frozenset[str]:
    """The names of all arithmetic predicates."""
    return frozenset(_REGISTRY)
