"""Counting-based view maintenance (Gupta–Mumick–Subrahmanian).

The second classic maintenance algorithm, complementary to the DRed path
in :mod:`repro.datalog.incremental`: every derived tuple carries its
**number of distinct derivations**.  A change is propagated as a stream
of single-tuple *flips* (tuple appeared / disappeared): for each clause
consuming the flipped tuple, the derivation instances involving it are
counted — with inclusion–exclusion when the clause mentions the predicate
several times — and the signed counts cascade; a derived tuple flips
exactly when its count crosses zero.  No over-delete/re-derive phase.

Counting is exact for **non-recursive** positive programs (a recursive
tuple can support itself, making counts ill-founded), so
:class:`CountingEngine` rejects recursion and leaves that territory to
DRed.  The A7 ablation compares the two on workloads where both apply.
"""

from __future__ import annotations

from itertools import combinations
from typing import Union

from ..errors import EvaluationError, SchemaError
from .ast import Atom, Clause, Program
from .database import Database, Relation
from .parser import parse_program
from .safety import check_program, order_body
from .seminaive import EvalStats, RelationStore, _solve_literals
from .stratify import stratify
from .terms import Const, Value

Fact = tuple[str, tuple[Value, ...]]


def _check_supported(program: Program) -> None:
    if program.has_choice() or program.has_id_atoms():
        raise SchemaError("counting maintenance covers plain Datalog")
    for clause in program.clauses:
        for literal in clause.body:
            if not literal.positive and not literal.atom.is_builtin:
                raise SchemaError(
                    "counting maintenance does not support negation")
        for atom in clause.body_atoms:
            if not atom.is_builtin \
                    and atom.pred in program.related_to(clause.head.pred) \
                    and clause.head.pred in program.related_to(atom.pred):
                raise SchemaError(
                    f"recursive predicate {clause.head.pred}: derivation "
                    "counts are ill-founded under recursion — use the "
                    "DRed IncrementalEngine instead")


class CountingEngine:
    """Materialized non-recursive views with derivation counts.

    Example:
        >>> engine = CountingEngine(
        ...     "hop2(X, Z) :- edge(X, Y), edge(Y, Z).")
        >>> engine.start(Database.from_facts({"edge": [
        ...     ("a", "b"), ("b", "c")]}))
        >>> engine.count("hop2", ("a", "c"))
        1
    """

    def __init__(self, program: Union[str, Program]) -> None:
        if isinstance(program, str):
            program = parse_program(program)
        _check_supported(program)
        check_program(program)
        self.program = program
        strat = stratify(program)
        self._level = strat.level
        # Consumers: pred -> [(clause, positions of pred in its body)].
        self._consumers: dict[str, list[tuple[Clause, tuple[int, ...]]]] = {}
        for clause in program.clauses:
            by_pred: dict[str, list[int]] = {}
            for i, literal in enumerate(clause.body):
                atom = literal.atom
                if isinstance(atom, Atom) and not atom.is_builtin:
                    by_pred.setdefault(atom.pred, []).append(i)
            for pred, positions in by_pred.items():
                self._consumers.setdefault(pred, []).append(
                    (clause, tuple(positions)))
        self._live: dict[str, Relation] = {}
        self._counts: dict[str, dict[tuple, int]] = {}
        self.stats = EvalStats()

    # -- lifecycle ----------------------------------------------------------

    def start(self, db: Database) -> None:
        """Materialize with derivation counts (per-predicate, in
        dependency order)."""
        self._live = {}
        self._counts = {p: {} for p in self.program.head_predicates}
        for pred in self.program.predicates:
            arity = self.program.arity(pred)
            if pred in self.program.head_predicates:
                self._live[pred] = Relation(arity)
            elif pred in db:
                self._live[pred] = db.relation(pred).copy()
            else:
                self._live[pred] = Relation(arity)
        store = self._store()
        for pred in sorted(self.program.head_predicates,
                           key=lambda p: (self._level[p], p)):
            for clause in self.program.clauses_defining(pred):
                for row in self._instances(clause, store, {}):
                    bucket = self._counts[pred]
                    bucket[row] = bucket.get(row, 0) + 1
            for row in self._counts[pred]:
                self._live[pred].add(row)

    def _store(self) -> RelationStore:
        store = RelationStore(None, EvalStats())
        for pred, relation in self._live.items():
            store.install(pred, relation)
        return store

    def _require_started(self) -> None:
        if not self._live:
            raise EvaluationError("call start(db) first")

    # -- reads ---------------------------------------------------------------

    def relation(self, pred: str) -> frozenset[tuple]:
        """The current tuples of a predicate."""
        self._require_started()
        return self._live[pred].frozen()

    def count(self, pred: str, row: tuple[Value, ...]) -> int:
        """The number of distinct derivations of a derived tuple."""
        self._require_started()
        return self._counts.get(pred, {}).get(tuple(row), 0)

    # -- instance counting -----------------------------------------------------

    def _instances(self, clause: Clause, store: RelationStore,
                   overrides_by_body_index: dict[int, Relation],
                   ) -> list[tuple]:
        """Head tuples of all satisfying instances, with positions in
        ``overrides_by_body_index`` (body-order indexes) pinned to the
        given relations."""
        first = None
        if overrides_by_body_index:
            first_index = min(overrides_by_body_index)
            first = clause.body[first_index]
        plan = order_body(clause, first=first)
        # Map body-order overrides onto plan positions (equal literals are
        # interchangeable, so greedy matching is sound).
        remaining = dict(overrides_by_body_index)
        plan_overrides: dict[int, Relation] = {}
        for plan_pos, literal in enumerate(plan):
            hit = next((bi for bi, _ in remaining.items()
                        if clause.body[bi] == literal), None)
            if hit is not None:
                plan_overrides[plan_pos] = remaining.pop(hit)
        assert not remaining
        stats = EvalStats()
        heads = []
        for subst in _solve_literals(plan, 0, {}, store, stats,
                                     plan_overrides):
            heads.append(tuple(
                t.value if isinstance(t, Const) else subst[t]
                for t in clause.head.args))
        self.stats.probes += stats.probes
        return heads

    # -- writes -----------------------------------------------------------------

    def add_fact(self, pred: str, row: tuple[Value, ...]) -> int:
        """Insert one EDB tuple; returns how many tuples flipped state."""
        return self._update(pred, tuple(row), +1)

    def delete_fact(self, pred: str, row: tuple[Value, ...]) -> int:
        """Delete one EDB tuple; derived tuples die exactly when their
        derivation count reaches zero."""
        return self._update(pred, tuple(row), -1)

    def _update(self, pred: str, row: tuple[Value, ...], sign: int) -> int:
        self._require_started()
        if pred not in self.program.input_predicates:
            raise SchemaError(
                f"{pred} is not an input predicate of the program")
        relation = self._live.get(pred)
        if relation is None:
            relation = Relation(len(row))
            self._live[pred] = relation
        if sign > 0 and row in relation:
            return 0
        if sign < 0 and row not in relation:
            return 0
        flips = [(pred, row, sign)]
        changed = 0
        while flips:
            flip_pred, tuple_, flip_sign = flips.pop(0)
            changed += 1
            if flip_sign > 0:
                self._live[flip_pred].add(tuple_)
            # Count instances involving the tuple, in the state WHERE THE
            # TUPLE IS PRESENT (for deletion: before removal).
            deltas = self._consume_flip(flip_pred, tuple_, flip_sign)
            if flip_sign < 0:
                self._live[flip_pred].discard(tuple_)
            for head_pred, head_row, diff in deltas:
                bucket = self._counts[head_pred]
                old = bucket.get(head_row, 0)
                new = old + diff
                if new:
                    bucket[head_row] = new
                else:
                    bucket.pop(head_row, None)
                if old <= 0 < new:
                    flips.append((head_pred, head_row, +1))
                elif new <= 0 < old:
                    flips.append((head_pred, head_row, -1))
        return changed

    def _consume_flip(self, pred: str, row: tuple[Value, ...],
                      sign: int) -> list[tuple[str, tuple, int]]:
        """Signed per-head derivation-count deltas caused by one flip.

        Instances involving the flipped tuple = by inclusion–exclusion
        over the clause's occurrences of ``pred``:
        Σ_{∅≠S} (−1)^{|S|+1} · #(instances with every position in S
        bound to the tuple).
        """
        store = self._store()
        pin = Relation(len(row), tuples=[row])
        deltas: list[tuple[str, tuple, int]] = []
        for clause, positions in self._consumers.get(pred, ()):
            for size in range(1, len(positions) + 1):
                term_sign = sign * (1 if size % 2 == 1 else -1)
                for subset in combinations(positions, size):
                    overrides = {i: pin for i in subset}
                    for head in self._instances(clause, store, overrides):
                        deltas.append((clause.head.pred, head, term_sign))
        return deltas
