"""Global dictionary encoding of constants (the columnar-storage substrate).

Every constant a :class:`~repro.datalog.database.Relation` stores is
represented internally as one machine-word *code*; the process-wide
:data:`GLOBAL_POOL` owns the bijection.  The encoding is **tagged** so that
code equality is value equality across both of the paper's sorts without
consulting the pool:

* sort-i naturals (and any int that fits a signed 62-bit word) are encoded
  *inline* as ``(value << 1) | 1`` — odd codes, no dictionary entry, no
  lookup on either encode or decode;
* everything else (sort-u strings, plus the rare oversized int an
  arithmetic builtin may produce) is *interned*: the first encode appends
  the object to the pool and hands out ``index << 1`` — an even code.

Two values are equal iff their codes are equal: distinct strings get
distinct pool slots, ints embed their value, and an odd (int) code can
never collide with an even (interned) code.  That invariant is what lets
the batch executor join, anti-join and project over raw ``array('q')``
columns end-to-end and decode only at answer-materialization boundaries.

The pool is append-only and process-global, like CPython's own string
intern table: codes handed out once stay valid for the life of the
process, so compiled pipelines may bake constant codes into closures and
snapshots may be taken at any time.  :meth:`ConstantPool.clear` exists for
tests that simulate a fresh process (the storage round-trip does it for
real, in a subprocess) and must never run while encoded relations are
alive.
"""

from __future__ import annotations

import sys
from typing import Iterable, Optional

from .terms import Sort, Value

#: Ints in [INLINE_MIN, INLINE_MAX] encode inline in a signed 64-bit slot
#: (one bit spent on the tag).  Anything outside is interned like a string.
INLINE_MIN = -(1 << 61)
INLINE_MAX = (1 << 61) - 1


class ConstantPool:
    """An append-only intern table mapping constants to tagged int codes."""

    __slots__ = ("_codes", "_objects")

    def __init__(self) -> None:
        self._codes: dict[Value, int] = {}
        self._objects: list[Value] = []

    def encode(self, value: Value) -> int:
        """The code of ``value``, interning it on first sight."""
        if type(value) is int and INLINE_MIN <= value <= INLINE_MAX:
            return (value << 1) | 1
        code = self._codes.get(value)
        if code is None:
            code = len(self._objects) << 1
            self._codes[value] = code
            self._objects.append(value)
        return code

    def try_encode(self, value: Value) -> Optional[int]:
        """The code of ``value`` if it already has one, else None.

        Probe paths (``match`` patterns, ``__contains__``) use this so
        membership tests against values the database has never seen do
        not grow the pool.
        """
        if type(value) is int and INLINE_MIN <= value <= INLINE_MAX:
            return (value << 1) | 1
        return self._codes.get(value)

    def decode(self, code: int) -> Value:
        """The value of a code previously handed out by :meth:`encode`."""
        if code & 1:
            return code >> 1
        return self._objects[code >> 1]

    def encode_row(self, row: tuple[Value, ...]) -> tuple[int, ...]:
        """Encode every component of a tuple."""
        return tuple(map(self.encode, row))

    def decode_row(self, codes: Iterable[int]) -> tuple[Value, ...]:
        """Decode a tuple of codes back to values."""
        return tuple(map(self.decode, codes))

    def decode_column(self, codes: Iterable[int]) -> list[Value]:
        """Decode a whole code column in one pass.

        The answer-materialization boundary decodes column-wise (one list
        comprehension per column, then a C-level ``zip`` into row tuples)
        instead of calling :meth:`decode` per cell.
        """
        objects = self._objects
        return [code >> 1 if code & 1 else objects[code >> 1]
                for code in codes]

    def sort_of_code(self, code: int) -> Sort:
        """The paper's sort of an encoded constant (without full decode)."""
        if code & 1:
            return Sort.I
        return Sort.I if isinstance(self._objects[code >> 1], int) else Sort.U

    def __len__(self) -> int:
        """Number of *interned* constants (inline ints are free)."""
        return len(self._objects)

    def __contains__(self, value: Value) -> bool:
        return self.try_encode(value) is not None

    def stats(self) -> dict:
        """Size report: interned constants and their approximate bytes.

        The pool is shared global state (one copy per process however many
        relations reference a constant), so :meth:`Database.stats` reports
        it separately from per-relation resident bytes — the same way one
        would account for the interpreter's own intern table.
        """
        approx = sys.getsizeof(self._codes) + sys.getsizeof(self._objects)
        approx += sum(sys.getsizeof(obj) for obj in self._objects)
        return {"constants": len(self._objects), "approx_bytes": approx}

    def clear(self) -> None:
        """Forget every interned constant (testing only).

        Any relation encoded against the old contents becomes garbage;
        callers own that hazard.  The storage round-trip test proves the
        honest version of this — reloading a snapshot in a subprocess
        whose pool really is empty.
        """
        self._codes.clear()
        self._objects.clear()


#: The process-wide pool every :class:`Relation` encodes against.
GLOBAL_POOL = ConstantPool()
