"""Arithmetic defined from ``succ`` (the paper's §2.2 claim, executable).

The paper fixes only ``succ`` as primitive and notes that "more
complicated arithmetic predicates, such as +, −, *, / (of sort (i,i,i)),
and < (of sort (i,i)), can be defined by IDLOG programs using the
predicate succ".  This module carries out that construction: a program
defining ``plus``, ``minus``, ``times``, ``div``, ``lt`` and ``le`` over
an explicitly bounded initial segment of ℕ (the bound comes from a unary
EDB relation ``top(B)``, which keeps every clause safe and the fixpoint
finite).

The engine's native builtins remain the fast path; tests check the
defined relations agree with them on the whole bounded segment —
the claim, verified rather than assumed.
"""

from __future__ import annotations

from .database import Database
from .engine import DatalogEngine

ARITHMETIC_FROM_SUCC = """
    % the bounded number line: num(0..B) for top(B)
    num(0) :- top(B).
    num(M) :- num(N), top(B), N < B, succ(N, M).

    % order, from succ
    lt(N, M) :- num(N), succ(N, M), num(M).
    lt(N, M) :- lt(N, K), succ(K, M), num(M).
    le(N, N) :- num(N).
    le(N, M) :- lt(N, M).

    % addition: N + 0 = N;  N + (M+1) = (N+M) + 1
    plus(N, 0, N) :- num(N).
    plus(N, M2, S2) :- plus(N, M, S), succ(M, M2), succ(S, S2),
                       top(B), S2 <= B.

    % subtraction over the naturals: A - B = C iff B + C = A
    minus(A, B, C) :- plus(B, C, A).

    % multiplication: N * 0 = 0;  N * (M+1) = N*M + N.  The num(M2) guard
    % keeps the fixpoint finite: 0 * M = 0 holds for EVERY M, so without
    % it the second argument would grow forever.
    times(N, 0, 0) :- num(N).
    times(N, M2, P2) :- times(N, M, P), succ(M, M2), num(M2),
                        plus(P, N, P2).

    % floor division: A / B = Q iff B*Q <= A < B·(Q+1).  Defined when
    % B·(Q+1) still fits inside the bounded segment (a boundary artifact
    % of working over num(0..B) rather than all of ℕ).
    div(A, B, Q) :- times(B, Q, P), le(P, A), num(A),
                    succ(Q, Q2), times(B, Q2, P2), lt(A, P2).
"""
"""A Datalog program defining +, −, *, /, <, <= from ``succ`` alone."""


def arithmetic_db(bound: int) -> Database:
    """The input database: ``top(bound)`` fixes the number-line segment."""
    if bound < 0:
        raise ValueError("the arithmetic bound must be a natural number")
    return Database.from_facts({"top": [(bound,)]})


def defined_arithmetic(bound: int):
    """Evaluate the succ-defined arithmetic up to ``bound``.

    Returns:
        The :class:`~repro.datalog.engine.EvalResult` whose relations
        ``plus``, ``minus``, ``times``, ``div``, ``lt``, ``le`` hold the
        defined arithmetic over 0..bound.
    """
    engine = DatalogEngine(ARITHMETIC_FROM_SUCC)
    return engine.run(arithmetic_db(bound))
