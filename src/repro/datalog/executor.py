"""Batch-compiled join execution for the bottom-up engines.

:mod:`repro.datalog.seminaive` evaluates clause bodies tuple-at-a-time:
``_solve_literals`` recurses per literal and copies a substitution dict per
binding — the dominant constant-factor cost on every recursive benchmark.
This module compiles each *planned* clause body (the literal order still
comes from :class:`~repro.datalog.planner.ClausePlanner` or
:func:`~repro.datalog.safety.order_body` — planning and execution stay
separate concerns) into a pipeline of set-oriented operators over *binding
batches*:

* a **batch** is a fixed variable layout ``tuple[Var, ...]`` plus a list of
  positional binding rows — no per-row dicts;
* each positive relation literal becomes one **hash join**: the coded index
  on the literal's bound positions is built (or reused, via
  :meth:`Relation.index_on_coded`) once, then probed for the whole incoming
  batch;
* negated literals and builtins become **batch filters** (anti-join /
  solver calls per row);
* the head becomes a single **projection** producing the derived tuples.

Since the columnar-storage rewrite the pipelines run over **constant
codes** end-to-end (see :mod:`repro.datalog.pool`): batch rows are tuples
of int codes, clause constants are encoded once at compile time (the pool
is append-only, so baking codes into closures is safe), joins probe
int-keyed indexes and extend rows straight out of the ``array('q')``
columns, and anti-joins test coded membership — no Python-object hashing
or equality anywhere on the hot path.  Only builtins decode: solvers
compute over real values (arithmetic, comparisons), so their inputs are
decoded per row and their outputs re-encoded.  :meth:`BatchExecutor
.execute` decodes the derived head tuples for value-level callers; the
semi-naive loop uses :meth:`BatchExecutor.execute_coded` and keeps codes
all the way into relation storage.

Semi-naive deltas need no special machinery: the delta override at the
forced-first position is just a different build side for the first join.

**Probe accounting** intentionally matches the interpreter and the
planner's cost model: one probe per bucket row touched on the probe side,
with a floor of one probe per lookup — so an index probe that finds an
empty bucket (or a scan of an empty relation) still costs one, and
``EvalStats.probes`` is comparable across ``engine="interp"`` and
``engine="batch"`` runs of the same plan.  The differential tests assert
the counters are *equal*, not merely similar.
"""

from __future__ import annotations

from operator import itemgetter
from typing import TYPE_CHECKING, Callable, Optional

from ..errors import EvaluationError, SchemaError
from .ast import Atom, Clause, Literal
from .builtins import builtin_spec
from .database import Relation
from .pool import GLOBAL_POOL
from .pretty import format_clause, format_literal
from .safety import order_body
from .terms import Const, Value, Var
from .trace import EV_PIPELINE_COMPILED

if TYPE_CHECKING:  # pragma: no cover - type-only imports (avoids a cycle)
    from .planner import ClausePlanner
    from .seminaive import EvalStats, RelationStore

_POOL = GLOBAL_POOL

INTERP = "interp"
BATCH = "batch"
ENGINE_MODES = (INTERP, BATCH)

#: A batch of binding rows.  The variable layout is implicit in the
#: compiled pipeline; rows are tuples of constant codes, one slot per
#: variable.
Batch = list[tuple[int, ...]]


def check_engine_mode(engine: str) -> str:
    """Validate an ``engine=`` knob value, returning it unchanged.

    Raises:
        SchemaError: when ``engine`` is not one of :data:`ENGINE_MODES`.
    """
    if engine not in ENGINE_MODES:
        raise SchemaError(
            f"unknown engine mode {engine!r}; expected one of {ENGINE_MODES}")
    return engine


# -- compile-time argument classification -----------------------------------

def _arg_parts(args: tuple, layout: dict[Var, int]):
    """Classify an atom's arguments against the current batch layout.

    Returns ``(bound_positions, key_parts, new_positions, eq_pairs,
    first_seen)``:

    * ``bound_positions`` — atom positions whose value is known per input
      row (constants and layout variables), in increasing order — exactly
      the positions ``Relation.match`` would select an index on;
    * ``key_parts`` — parallel ``(is_var, payload)`` pairs building the
      probe key (payload = layout slot for variables, the constant's
      *code* for constants);
    * ``new_positions`` — atom positions holding the *first* occurrence of
      each unbound variable (the values a join appends to the row);
    * ``eq_pairs`` — ``(first, dup)`` atom-position pairs for repeated
      unbound variables, checked against the matched tuple.
    """
    bound_positions: list[int] = []
    key_parts: list[tuple[bool, object]] = []
    new_positions: list[int] = []
    eq_pairs: list[tuple[int, int]] = []
    first_seen: dict[Var, int] = {}
    for i, term in enumerate(args):
        if isinstance(term, Const):
            bound_positions.append(i)
            key_parts.append((False, _POOL.encode(term.value)))
        elif term in layout:
            bound_positions.append(i)
            key_parts.append((True, layout[term]))
        elif term in first_seen:
            eq_pairs.append((first_seen[term], i))
        else:
            first_seen[term] = i
            new_positions.append(i)
    return bound_positions, key_parts, new_positions, eq_pairs, first_seen


def _tuple_fn(parts: list[tuple[bool, object]]) -> Callable[[tuple], tuple]:
    """A row -> tuple builder for ``(is_var, payload)`` parts.

    Specialized for the common shapes: all-variable parts become an
    ``itemgetter``, all-constant parts a precomputed tuple.
    """
    if not parts:
        return lambda row: ()
    if all(is_var for is_var, _ in parts):
        slots = tuple(payload for _, payload in parts)
        if len(slots) == 1:
            slot = slots[0]
            return lambda row: (row[slot],)
        return itemgetter(*slots)
    if not any(is_var for is_var, _ in parts):
        constant = tuple(payload for _, payload in parts)
        return lambda row: constant
    frozen = tuple(parts)
    return lambda row: tuple(
        row[payload] if is_var else payload for is_var, payload in frozen)


def _key_fn(parts: list[tuple[bool, object]]) -> Callable[[tuple], object]:
    """A row -> probe-key builder matching ``Relation.index_on_coded``.

    Single-position indexes are keyed by the bare scalar code (no per-probe
    tuple allocation); multi-position indexes by the code tuple.
    """
    if len(parts) == 1:
        is_var, payload = parts[0]
        if is_var:
            slot = payload
            return lambda row: row[slot]
        return lambda row: payload
    return _tuple_fn(parts)


def _decoded_tuple_fn(parts: list[tuple[bool, object]]) -> Callable:
    """A coded-row -> *value* tuple builder (the builtin boundary).

    Variable payloads are decoded per row; constant payloads are already
    values (``None`` marks an unbound solver position).
    """
    decode = _POOL.decode
    frozen = tuple(parts)
    if not frozen:
        return lambda row: ()
    return lambda row: tuple(
        decode(row[payload]) if is_var else payload
        for is_var, payload in frozen)


def _extract_fn(positions: list[int]) -> Callable[[tuple, tuple], tuple]:
    """A (row, match) -> extended-row builder appending matched values."""
    if not positions:
        return lambda row, match: row
    if len(positions) == 1:
        p0 = positions[0]
        return lambda row, match: row + (match[p0],)
    if len(positions) == 2:
        p0, p1 = positions
        return lambda row, match: row + (match[p0], match[p1])
    frozen = tuple(positions)
    return lambda row, match: row + tuple(match[p] for p in frozen)


class _Op:
    """One compiled pipeline operator.

    Attributes:
        atom: The source atom (used to resolve the relation at run time;
            ``None`` for builtins, which need no relation).
        run: ``run(batch, relation, stats) -> batch``.
        fuse: Shape metadata ``(positions, key_slot, out_pos, new_slot)``
            when this op is a head-fusable hash join (bound on one
            variable, no equality checks, exactly one new position);
            ``None`` otherwise.
    """

    __slots__ = ("atom", "run", "fuse")

    def __init__(self, atom: Optional[Atom], run, fuse=None) -> None:
        self.atom = atom
        self.run = run
        self.fuse = fuse


def _compile_join(literal: Literal, layout: dict[Var, int]) -> _Op:
    """A positive relation literal as one hash join (or scan + filter)."""
    atom = literal.atom
    assert isinstance(atom, Atom)
    bound, key_parts, new_positions, eq_pairs, first_seen = \
        _arg_parts(atom.args, layout)
    for var in first_seen:
        layout[var] = len(layout)
    eq = tuple(eq_pairs)
    arity = len(atom.args)
    whole_row = not bound and not eq and new_positions == list(range(arity))
    fuse = None

    if bound:
        positions = tuple(bound)
        key_of = _key_fn(key_parts)
        # The overwhelmingly common probe key is one already-bound
        # variable; reading the slot inline saves a call per input row.
        single_slot: Optional[int] = None
        if len(key_parts) == 1 and key_parts[0][0]:
            single_slot = key_parts[0][1]

        if not eq and len(new_positions) == 1 and single_slot is not None:
            out_pos = new_positions[0]
            slot = single_slot
            fuse = (positions, slot, out_pos, len(layout) - 1)

            def run(batch: Batch, relation: Relation, stats) -> Batch:
                out: Batch = []
                append = out.append
                get = relation.index_on_coded(positions).get
                col = relation.coded_columns()[out_pos]
                # Every bucket element emits exactly one row here, so the
                # hit count IS len(out); only misses need a counter.
                misses = 0
                for row in batch:
                    bucket = get(row[slot])
                    if bucket is None:
                        misses += 1
                    elif len(bucket) == 1:
                        append(row + (col[bucket[0]],))
                    else:
                        for r in bucket:
                            append(row + (col[r],))
                stats.probes += len(out) + misses
                return out
        elif not eq and not new_positions:
            # Semijoin shape: every bucket row re-emits the input row.
            def run(batch: Batch, relation: Relation, stats) -> Batch:
                out: Batch = []
                extend_out = out.extend
                get = relation.index_on_coded(positions).get
                probes = 0
                for row in batch:
                    bucket = get(key_of(row))
                    if bucket:
                        n = len(bucket)
                        probes += n
                        extend_out([row] * n)
                    else:
                        probes += 1
                stats.probes += probes
                return out
        elif not eq and len(new_positions) == 1:
            out_pos = new_positions[0]

            def run(batch: Batch, relation: Relation, stats) -> Batch:
                out: Batch = []
                append = out.append
                get = relation.index_on_coded(positions).get
                col = relation.coded_columns()[out_pos]
                probes = 0
                for row in batch:
                    bucket = get(key_of(row))
                    if bucket:
                        probes += len(bucket)
                        for r in bucket:
                            append(row + (col[r],))
                    else:
                        probes += 1
                stats.probes += probes
                return out
        elif not eq and len(new_positions) == 2:
            out0, out1 = new_positions

            def run(batch: Batch, relation: Relation, stats) -> Batch:
                out: Batch = []
                append = out.append
                get = relation.index_on_coded(positions).get
                columns = relation.coded_columns()
                col0 = columns[out0]
                col1 = columns[out1]
                probes = 0
                for row in batch:
                    bucket = get(key_of(row))
                    if bucket:
                        probes += len(bucket)
                        for r in bucket:
                            append(row + (col0[r], col1[r]))
                    else:
                        probes += 1
                stats.probes += probes
                return out
        else:
            new_pos = tuple(new_positions)

            def run(batch: Batch, relation: Relation, stats) -> Batch:
                out: Batch = []
                append = out.append
                get = relation.index_on_coded(positions).get
                columns = relation.coded_columns()
                probes = 0
                for row in batch:
                    bucket = get(key_of(row))
                    if not bucket:
                        probes += 1
                        continue
                    probes += len(bucket)
                    for r in bucket:
                        if eq and any(columns[i][r] != columns[j][r]
                                      for i, j in eq):
                            continue
                        append(row + tuple(columns[p][r] for p in new_pos))
                stats.probes += probes
                return out
    else:
        extend = _extract_fn(new_positions)

        def run(batch: Batch, relation: Relation, stats) -> Batch:
            # A scan charges every scanned row per input row, floor one.
            size = len(relation)
            stats.probes += max(1, size) * len(batch)
            if not size:
                return []
            matches = relation.coded_rows()
            if whole_row:
                # Common case: all arguments are fresh distinct variables.
                if len(batch) == 1 and not batch[0]:
                    return matches
                return [row + match for row in batch for match in matches]
            out: Batch = []
            append = out.append
            for row in batch:
                for match in matches:
                    if eq and any(match[i] != match[j] for i, j in eq):
                        continue
                    append(extend(row, match))
            return out

    return _Op(atom, run, fuse)


def _compile_antijoin(literal: Literal, layout: dict[Var, int]) -> _Op:
    """A negated relation literal as a batch anti-join filter."""
    atom = literal.atom
    assert isinstance(atom, Atom)
    parts: list[tuple[bool, object]] = []
    for term in atom.args:
        if isinstance(term, Const):
            parts.append((False, _POOL.encode(term.value)))
        elif term in layout:
            parts.append((True, layout[term]))
        else:
            raise EvaluationError(
                f"negated literal {atom} evaluated with unbound variables")
    row_of = _tuple_fn(parts)

    def run(batch: Batch, relation: Relation, stats) -> Batch:
        # Each membership test is one probe, exactly like the interpreter.
        stats.probes += len(batch)
        contains = relation.contains_coded
        return [row for row in batch if not contains(row_of(row))]

    return _Op(atom, run)


def _compile_builtin(literal: Literal, layout: dict[Var, int]) -> _Op:
    """A builtin literal as a per-row solver call (filter or generator).

    Builtins are the decode boundary: solvers compute over real values,
    so bound arguments are decoded per row and generated solutions are
    re-encoded into the batch.
    """
    atom = literal.atom
    assert isinstance(atom, Atom)
    spec = builtin_spec(atom.pred)

    if not literal.positive:
        parts: list[tuple[bool, object]] = []
        for term in atom.args:
            if isinstance(term, Const):
                parts.append((False, term.value))
            elif term in layout:
                parts.append((True, layout[term]))
            else:
                raise EvaluationError(
                    f"negated builtin {atom} evaluated with unbound "
                    "arguments")
        row_of = _decoded_tuple_fn(parts)
        solve = spec.solve

        def run(batch: Batch, relation, stats) -> Batch:
            stats.probes += len(batch)
            return [row for row in batch
                    if not any(True for _ in solve(row_of(row)))]

        return _Op(None, run)

    # Positive builtin: build the partial argument tuple per row, consume
    # the solver's ground solutions, and re-check every position — bound
    # positions because the interpreter's _match_args does, unbound
    # repeated variables because solvers only see the partial tuple.
    partial_parts: list[tuple[bool, object]] = []
    checks: list[tuple[bool, int, object]] = []  # (is_var, pos, payload)
    new_positions: list[int] = []
    eq_pairs: list[tuple[int, int]] = []
    first_seen: dict[Var, int] = {}
    for i, term in enumerate(atom.args):
        if isinstance(term, Const):
            partial_parts.append((False, term.value))
            checks.append((False, i, term.value))
        elif term in layout:
            partial_parts.append((True, layout[term]))
            checks.append((True, i, layout[term]))
        elif term in first_seen:
            partial_parts.append((False, None))
            eq_pairs.append((first_seen[term], i))
        else:
            partial_parts.append((False, None))
            first_seen[term] = i
            new_positions.append(i)
    for var in first_seen:
        layout[var] = len(layout)
    partial_of = _decoded_tuple_fn(partial_parts)
    eq = tuple(eq_pairs)
    new_pos = tuple(new_positions)
    frozen_checks = tuple(checks)
    solve = spec.solve

    def run(batch: Batch, relation, stats) -> Batch:
        out: Batch = []
        append = out.append
        decode = _POOL.decode
        encode = _POOL.encode
        probes = 0
        for row in batch:
            solved = False
            for solution in solve(partial_of(row)):
                solved = True
                probes += 1
                ok = True
                for is_var, pos, payload in frozen_checks:
                    expected = decode(row[payload]) if is_var else payload
                    if solution[pos] != expected:
                        ok = False
                        break
                if ok and eq:
                    ok = all(solution[i] == solution[j] for i, j in eq)
                if ok:
                    append(row + tuple(
                        encode(solution[p]) for p in new_pos))
            if not solved:
                probes += 1
        stats.probes += probes
        return out

    return _Op(None, run)


def _compile_head(head: Atom, layout: dict[Var, int]) -> Callable:
    """The final projection: batch row -> derived (coded) head tuple."""
    parts: list[tuple[bool, object]] = []
    for term in head.args:
        if isinstance(term, Const):
            parts.append((False, _POOL.encode(term.value)))
        else:
            parts.append((True, layout[term]))
    return _tuple_fn(parts)


def _fused_join(op: _Op, head: Atom, layout: dict[Var, int]) -> Optional[_Op]:
    """Fuse the head projection into a final hash join, when possible.

    The last operator of most recursive pipelines is a single-new-variable
    hash join whose output rows immediately get projected to head tuples;
    run separately that materializes one intermediate tuple per derived
    row just to pick slots out of it.  The fused operator emits head
    tuples straight from the probe loop instead.  Returns ``None`` when
    the head shape does not qualify.
    """
    if op.fuse is None:
        return None
    positions, slot, out_pos, new_slot = op.fuse
    # Classify head arguments: row slot, the joined-in value, or constant.
    parts: list[tuple[str, object]] = []
    for term in head.args:
        if isinstance(term, Const):
            parts.append(("const", _POOL.encode(term.value)))
        elif layout[term] == new_slot:
            parts.append(("new", None))
        else:
            parts.append(("row", layout[term]))
    kinds = tuple(kind for kind, _ in parts)

    if kinds == ("row", "new"):
        a = parts[0][1]

        def run(batch: Batch, relation: Relation, stats) -> Batch:
            out: Batch = []
            append = out.append
            get = relation.index_on_coded(positions).get
            col = relation.coded_columns()[out_pos]
            misses = 0
            for row in batch:
                bucket = get(row[slot])
                if bucket is None:
                    misses += 1
                elif len(bucket) == 1:
                    append((row[a], col[bucket[0]]))
                else:
                    ra = row[a]
                    for r in bucket:
                        append((ra, col[r]))
            stats.probes += len(out) + misses
            return out
    elif kinds == ("new", "row"):
        b = parts[1][1]

        def run(batch: Batch, relation: Relation, stats) -> Batch:
            out: Batch = []
            append = out.append
            get = relation.index_on_coded(positions).get
            col = relation.coded_columns()[out_pos]
            misses = 0
            for row in batch:
                bucket = get(row[slot])
                if bucket is None:
                    misses += 1
                elif len(bucket) == 1:
                    append((col[bucket[0]], row[b]))
                else:
                    rb = row[b]
                    for r in bucket:
                        append((col[r], rb))
            stats.probes += len(out) + misses
            return out
    else:
        frozen = tuple(parts)

        def head_row(row: tuple, value: int) -> tuple:
            return tuple(
                value if kind == "new"
                else (row[payload] if kind == "row" else payload)
                for kind, payload in frozen)

        def run(batch: Batch, relation: Relation, stats) -> Batch:
            out: Batch = []
            append = out.append
            get = relation.index_on_coded(positions).get
            col = relation.coded_columns()[out_pos]
            misses = 0
            for row in batch:
                bucket = get(row[slot])
                if bucket is None:
                    misses += 1
                elif len(bucket) == 1:
                    append(head_row(row, col[bucket[0]]))
                else:
                    for r in bucket:
                        append(head_row(row, col[r]))
            stats.probes += len(out) + misses
            return out

    return _Op(op.atom, run)


class _Pipeline:
    """A compiled clause: operator chain plus head projection.

    Cached per (clause, delta position) by :class:`BatchExecutor`; the
    recorded ``order`` detects plan changes (the cost planner may re-order
    a clause when cardinalities drift), which force recompilation.

    When the final operator is a fusable hash join (see
    :func:`_fused_join`), :attr:`fused` replaces both that operator and
    the head projection: its output rows *are* the head tuples.
    """

    __slots__ = ("order", "ops", "head_of", "fused")

    def __init__(self, clause: Clause, order: tuple[Literal, ...]) -> None:
        self.order = order
        layout: dict[Var, int] = {}
        self.ops: list[_Op] = []
        for literal in order:
            atom = literal.atom
            assert isinstance(atom, Atom)
            if atom.is_builtin:
                self.ops.append(_compile_builtin(literal, layout))
            elif literal.positive:
                self.ops.append(_compile_join(literal, layout))
            else:
                self.ops.append(_compile_antijoin(literal, layout))
        self.fused = None
        # Never fuse ops[0]: the delta override must target a live op.
        if len(self.ops) >= 2:
            fused = _fused_join(self.ops[-1], clause.head, layout)
            if fused is not None:
                self.fused = fused
                self.ops.pop()
        self.head_of = _compile_head(clause.head, layout)


class BatchExecutor:
    """Executes planned clauses as batch pipelines, caching compilations.

    One executor lives per evaluation (mirroring
    :class:`~repro.datalog.planner.ClausePlanner`); pipelines are keyed by
    ``(clause identity, delta position)`` and recompiled only when the
    planner hands back a different literal order.

    Args:
        tracer: Optional span-event receiver; every pipeline *compilation*
            (not cache hits) emits one ``pipeline_compiled`` event.  The
            :attr:`stratum` attribute labels those events and is
            maintained by the stratum loop.
    """

    def __init__(self, tracer=None) -> None:
        self.tracer = tracer
        #: Stratum index stamped on emitted events (set by the caller).
        self.stratum = 0
        #: Per-stage estimate-vs-actual capture of the most recent traced
        #: ``execute_coded`` call (None when nothing was captured) — the
        #: semi-naive loop attaches it to the ``clause_fire`` event.
        #: Only maintained while a tracer is installed.
        self.last_stages: Optional[list[dict]] = None
        self._pipelines: dict[tuple[int, Optional[int]], _Pipeline] = {}

    def execute_coded(self, clause: Clause, store: "RelationStore",
                      stats: "EvalStats",
                      delta_index: Optional[int] = None,
                      delta: Optional[Relation] = None,
                      planner: Optional["ClausePlanner"] = None,
                      ) -> list[tuple[int, ...]]:
        """All head tuples derivable from one clause, as coded rows.

        The semi-naive hot path: derived rows stay in code space and flow
        straight into :meth:`Relation.merge_coded`.  Accounting matches
        :meth:`execute` exactly (it is the same computation).
        """
        estimates = None
        if planner is not None:
            plan = planner.plan(clause, store.base_relation,
                                delta_index=delta_index, stats=stats)
            order = plan.order
            estimates = plan.estimates
        else:
            first: Optional[Literal] = None
            if delta_index is not None:
                first = clause.body[delta_index]
            order = order_body(clause, first=first)

        key = (id(clause), delta_index)
        pipeline = self._pipelines.get(key)
        if pipeline is None or pipeline.order != order:
            recompiled = pipeline is not None
            pipeline = _Pipeline(clause, order)
            self._pipelines[key] = pipeline
            stats.pipelines_compiled += 1
            if self.tracer is not None:
                self.tracer.emit(
                    EV_PIPELINE_COMPILED, clause=format_clause(clause),
                    stratum=self.stratum, delta_index=delta_index,
                    recompiled=recompiled,
                    order=" -> ".join(format_literal(lit)
                                      for lit in order))
        else:
            stats.pipelines_reused += 1

        override = delta if delta_index is not None else None
        if self.tracer is not None:
            self.last_stages = None  # never leak a previous call's capture
            if estimates is not None:
                return self._run_instrumented(pipeline, estimates, store,
                                              stats, override)
        batch: Batch = [()]
        for i, op in enumerate(pipeline.ops):
            if op.atom is None:
                batch = op.run(batch, None, stats)
            elif i == 0 and override is not None:
                batch = op.run(batch, override, stats)
            else:
                batch = op.run(batch, store.resolve(op.atom), stats)
            if not batch:
                return []
        fused = pipeline.fused
        if fused is not None:
            batch = fused.run(batch, store.resolve(fused.atom), stats)
            stats.firings += len(batch)
            return batch
        stats.firings += len(batch)
        head_of = pipeline.head_of
        return list(map(head_of, batch))

    def _run_instrumented(self, pipeline: "_Pipeline", estimates,
                          store: "RelationStore", stats: "EvalStats",
                          override) -> list[tuple[int, ...]]:
        """The pipeline loop with per-stage estimate-vs-actual capture.

        Identical computation and accounting to the uninstrumented loop
        in :meth:`execute_coded` — the only addition is snapshotting
        ``stats.probes`` and the batch size around every operator so
        each ``clause_fire`` event can carry ``(est_rows, actual_rows,
        est_probes, actual_probes)`` per join stage.  Stages the
        pipeline never reached (an upstream join emptied the batch)
        are recorded with zero actuals: the planner predicted work
        there that never happened.
        """
        stages: list[dict] = []
        self.last_stages = stages

        def capture(index: int, rows: int, probes: int) -> None:
            est = estimates[index]
            stages.append({
                "literal": format_literal(est.literal),
                "kind": est.kind,
                "est_rows": est.rows, "actual_rows": rows,
                "est_probes": est.probes, "actual_probes": probes})

        def fill_unreached(next_index: int) -> None:
            for index in range(next_index, len(estimates)):
                capture(index, 0, 0)

        batch: Batch = [()]
        for i, op in enumerate(pipeline.ops):
            probes_before = stats.probes
            if op.atom is None:
                batch = op.run(batch, None, stats)
            elif i == 0 and override is not None:
                batch = op.run(batch, override, stats)
            else:
                batch = op.run(batch, store.resolve(op.atom), stats)
            capture(i, len(batch), stats.probes - probes_before)
            if not batch:
                fill_unreached(i + 1)
                return []
        fused = pipeline.fused
        if fused is not None:
            probes_before = stats.probes
            batch = fused.run(batch, store.resolve(fused.atom), stats)
            capture(len(estimates) - 1, len(batch),
                    stats.probes - probes_before)
            stats.firings += len(batch)
            return batch
        stats.firings += len(batch)
        head_of = pipeline.head_of
        return list(map(head_of, batch))

    def execute(self, clause: Clause, store: "RelationStore",
                stats: "EvalStats",
                delta_index: Optional[int] = None,
                delta: Optional[Relation] = None,
                planner: Optional["ClausePlanner"] = None,
                ) -> list[tuple[Value, ...]]:
        """All head tuples derivable from one clause, as value tuples.

        The contract matches ``list(seminaive.evaluate_clause(...))``:
        same tuples, same ``probes``/``firings`` accounting, with
        ``delta``/``delta_index`` substituting the delta relation for the
        body literal at that source position (scheduled first).
        """
        decode_row = _POOL.decode_row
        return [decode_row(coded) for coded in self.execute_coded(
            clause, store, stats, delta_index=delta_index, delta=delta,
            planner=planner)]
