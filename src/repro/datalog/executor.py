"""Batch-compiled join execution for the bottom-up engines.

:mod:`repro.datalog.seminaive` evaluates clause bodies tuple-at-a-time:
``_solve_literals`` recurses per literal and copies a substitution dict per
binding — the dominant constant-factor cost on every recursive benchmark.
This module compiles each *planned* clause body (the literal order still
comes from :class:`~repro.datalog.planner.ClausePlanner` or
:func:`~repro.datalog.safety.order_body` — planning and execution stay
separate concerns) into a pipeline of set-oriented operators over *binding
batches*:

* a **batch** is a fixed variable layout ``tuple[Var, ...]`` plus a list of
  positional binding rows ``tuple[Value, ...]`` — no per-row dicts;
* each positive relation literal becomes one **hash join**: the index on
  the literal's bound positions is built (or reused, via
  :meth:`Relation.index_on`) once, then probed for the whole incoming
  batch;
* negated literals and builtins become **batch filters** (anti-join /
  solver calls per row);
* the head becomes a single **projection** producing the derived tuples.

Semi-naive deltas need no special machinery: the delta override at the
forced-first position is just a different build side for the first join.

**Probe accounting** intentionally matches the interpreter and the
planner's cost model: one probe per bucket row touched on the probe side,
with a floor of one probe per lookup — so an index probe that finds an
empty bucket (or a scan of an empty relation) still costs one, and
``EvalStats.probes`` is comparable across ``engine="interp"`` and
``engine="batch"`` runs of the same plan.  The differential tests assert
the counters are *equal*, not merely similar.
"""

from __future__ import annotations

from operator import itemgetter
from typing import TYPE_CHECKING, Callable, Optional

from ..errors import EvaluationError, SchemaError
from .ast import Atom, Clause, Literal
from .builtins import builtin_spec
from .database import Relation
from .pretty import format_clause, format_literal
from .safety import order_body
from .terms import Const, Value, Var
from .trace import EV_PIPELINE_COMPILED

if TYPE_CHECKING:  # pragma: no cover - type-only imports (avoids a cycle)
    from .planner import ClausePlanner
    from .seminaive import EvalStats, RelationStore

INTERP = "interp"
BATCH = "batch"
ENGINE_MODES = (INTERP, BATCH)

#: A batch of binding rows.  The variable layout is implicit in the
#: compiled pipeline; rows are plain value tuples, one slot per variable.
Batch = list[tuple[Value, ...]]


def check_engine_mode(engine: str) -> str:
    """Validate an ``engine=`` knob value, returning it unchanged.

    Raises:
        SchemaError: when ``engine`` is not one of :data:`ENGINE_MODES`.
    """
    if engine not in ENGINE_MODES:
        raise SchemaError(
            f"unknown engine mode {engine!r}; expected one of {ENGINE_MODES}")
    return engine


# -- compile-time argument classification -----------------------------------

def _arg_parts(args: tuple, layout: dict[Var, int]):
    """Classify an atom's arguments against the current batch layout.

    Returns ``(bound_positions, key_parts, new_positions, eq_pairs)``:

    * ``bound_positions`` — atom positions whose value is known per input
      row (constants and layout variables), in increasing order — exactly
      the positions ``Relation.match`` would select an index on;
    * ``key_parts`` — parallel ``(is_var, payload)`` pairs building the
      probe key (payload = layout slot for variables, the value itself for
      constants);
    * ``new_positions`` — atom positions holding the *first* occurrence of
      each unbound variable (the values a join appends to the row);
    * ``eq_pairs`` — ``(first, dup)`` atom-position pairs for repeated
      unbound variables, checked against the matched tuple.
    """
    bound_positions: list[int] = []
    key_parts: list[tuple[bool, object]] = []
    new_positions: list[int] = []
    eq_pairs: list[tuple[int, int]] = []
    first_seen: dict[Var, int] = {}
    for i, term in enumerate(args):
        if isinstance(term, Const):
            bound_positions.append(i)
            key_parts.append((False, term.value))
        elif term in layout:
            bound_positions.append(i)
            key_parts.append((True, layout[term]))
        elif term in first_seen:
            eq_pairs.append((first_seen[term], i))
        else:
            first_seen[term] = i
            new_positions.append(i)
    return bound_positions, key_parts, new_positions, eq_pairs, first_seen


def _tuple_fn(parts: list[tuple[bool, object]]) -> Callable[[tuple], tuple]:
    """A row -> tuple builder for ``(is_var, payload)`` parts.

    Specialized for the common shapes: all-variable parts become an
    ``itemgetter``, all-constant parts a precomputed tuple.
    """
    if not parts:
        return lambda row: ()
    if all(is_var for is_var, _ in parts):
        slots = tuple(payload for _, payload in parts)
        if len(slots) == 1:
            slot = slots[0]
            return lambda row: (row[slot],)
        return itemgetter(*slots)
    if not any(is_var for is_var, _ in parts):
        constant = tuple(payload for _, payload in parts)
        return lambda row: constant
    frozen = tuple(parts)
    return lambda row: tuple(
        row[payload] if is_var else payload for is_var, payload in frozen)


def _extract_fn(positions: list[int]) -> Callable[[tuple, tuple], tuple]:
    """A (row, match) -> extended-row builder appending matched values."""
    if not positions:
        return lambda row, match: row
    if len(positions) == 1:
        p0 = positions[0]
        return lambda row, match: row + (match[p0],)
    if len(positions) == 2:
        p0, p1 = positions
        return lambda row, match: row + (match[p0], match[p1])
    frozen = tuple(positions)
    return lambda row, match: row + tuple(match[p] for p in frozen)


class _Op:
    """One compiled pipeline operator.

    Attributes:
        atom: The source atom (used to resolve the relation at run time;
            ``None`` for builtins, which need no relation).
        run: ``run(batch, relation, stats) -> batch``.
    """

    __slots__ = ("atom", "run")

    def __init__(self, atom: Optional[Atom], run) -> None:
        self.atom = atom
        self.run = run


def _compile_join(literal: Literal, layout: dict[Var, int]) -> _Op:
    """A positive relation literal as one hash join (or scan + filter)."""
    atom = literal.atom
    assert isinstance(atom, Atom)
    bound, key_parts, new_positions, eq_pairs, first_seen = \
        _arg_parts(atom.args, layout)
    for var in first_seen:
        layout[var] = len(layout)
    extend = _extract_fn(new_positions)
    eq = tuple(eq_pairs)
    arity = len(atom.args)
    whole_row = not bound and not eq and new_positions == list(range(arity))

    if bound:
        positions = tuple(bound)
        key_of = _tuple_fn(key_parts)

        def run(batch: Batch, relation: Relation, stats) -> Batch:
            out: Batch = []
            append = out.append
            get = relation.index_on(positions).get
            probes = 0
            for row in batch:
                bucket = get(key_of(row))
                if not bucket:
                    probes += 1
                    continue
                probes += len(bucket)
                for match in bucket:
                    if eq and any(match[i] != match[j] for i, j in eq):
                        continue
                    append(extend(row, match))
            stats.probes += probes
            return out
    else:

        def run(batch: Batch, relation: Relation, stats) -> Batch:
            # A scan charges every scanned row per input row, floor one.
            size = len(relation)
            stats.probes += max(1, size) * len(batch)
            if not size:
                return []
            if whole_row:
                # Common case: all arguments are fresh distinct variables.
                if len(batch) == 1 and not batch[0]:
                    return list(relation)
                return [row + match for row in batch for match in relation]
            out: Batch = []
            append = out.append
            matches = list(relation)
            for row in batch:
                for match in matches:
                    if eq and any(match[i] != match[j] for i, j in eq):
                        continue
                    append(extend(row, match))
            return out

    return _Op(atom, run)


def _compile_antijoin(literal: Literal, layout: dict[Var, int]) -> _Op:
    """A negated relation literal as a batch anti-join filter."""
    atom = literal.atom
    assert isinstance(atom, Atom)
    parts: list[tuple[bool, object]] = []
    for term in atom.args:
        if isinstance(term, Const):
            parts.append((False, term.value))
        elif term in layout:
            parts.append((True, layout[term]))
        else:
            raise EvaluationError(
                f"negated literal {atom} evaluated with unbound variables")
    row_of = _tuple_fn(parts)

    def run(batch: Batch, relation: Relation, stats) -> Batch:
        # Each membership test is one probe, exactly like the interpreter.
        stats.probes += len(batch)
        return [row for row in batch if row_of(row) not in relation]

    return _Op(atom, run)


def _compile_builtin(literal: Literal, layout: dict[Var, int]) -> _Op:
    """A builtin literal as a per-row solver call (filter or generator)."""
    atom = literal.atom
    assert isinstance(atom, Atom)
    spec = builtin_spec(atom.pred)

    if not literal.positive:
        parts: list[tuple[bool, object]] = []
        for term in atom.args:
            if isinstance(term, Const):
                parts.append((False, term.value))
            elif term in layout:
                parts.append((True, layout[term]))
            else:
                raise EvaluationError(
                    f"negated builtin {atom} evaluated with unbound "
                    "arguments")
        row_of = _tuple_fn(parts)
        solve = spec.solve

        def run(batch: Batch, relation, stats) -> Batch:
            stats.probes += len(batch)
            return [row for row in batch
                    if not any(True for _ in solve(row_of(row)))]

        return _Op(None, run)

    # Positive builtin: build the partial argument tuple per row, consume
    # the solver's ground solutions, and re-check every position — bound
    # positions because the interpreter's _match_args does, unbound
    # repeated variables because solvers only see the partial tuple.
    partial_parts: list[tuple[bool, object]] = []
    checks: list[tuple[bool, int, object]] = []  # (is_var, pos, payload)
    new_positions: list[int] = []
    eq_pairs: list[tuple[int, int]] = []
    first_seen: dict[Var, int] = {}
    for i, term in enumerate(atom.args):
        if isinstance(term, Const):
            partial_parts.append((False, term.value))
            checks.append((False, i, term.value))
        elif term in layout:
            partial_parts.append((True, layout[term]))
            checks.append((True, i, layout[term]))
        elif term in first_seen:
            partial_parts.append((False, None))
            eq_pairs.append((first_seen[term], i))
        else:
            partial_parts.append((False, None))
            first_seen[term] = i
            new_positions.append(i)
    for var in first_seen:
        layout[var] = len(layout)
    partial_of = _tuple_fn(partial_parts)
    extend = _extract_fn(new_positions)
    eq = tuple(eq_pairs)
    frozen_checks = tuple(checks)
    solve = spec.solve

    def run(batch: Batch, relation, stats) -> Batch:
        out: Batch = []
        append = out.append
        probes = 0
        for row in batch:
            solved = False
            for solution in solve(partial_of(row)):
                solved = True
                probes += 1
                ok = True
                for is_var, pos, payload in frozen_checks:
                    expected = row[payload] if is_var else payload
                    if solution[pos] != expected:
                        ok = False
                        break
                if ok and eq:
                    ok = all(solution[i] == solution[j] for i, j in eq)
                if ok:
                    append(extend(row, solution))
            if not solved:
                probes += 1
        stats.probes += probes
        return out

    return _Op(None, run)


def _compile_head(head: Atom, layout: dict[Var, int]) -> Callable:
    """The final projection: batch row -> derived head tuple."""
    parts: list[tuple[bool, object]] = []
    for term in head.args:
        if isinstance(term, Const):
            parts.append((False, term.value))
        else:
            parts.append((True, layout[term]))
    return _tuple_fn(parts)


class _Pipeline:
    """A compiled clause: operator chain plus head projection.

    Cached per (clause, delta position) by :class:`BatchExecutor`; the
    recorded ``order`` detects plan changes (the cost planner may re-order
    a clause when cardinalities drift), which force recompilation.
    """

    __slots__ = ("order", "ops", "head_of")

    def __init__(self, clause: Clause, order: tuple[Literal, ...]) -> None:
        self.order = order
        layout: dict[Var, int] = {}
        self.ops: list[_Op] = []
        for literal in order:
            atom = literal.atom
            assert isinstance(atom, Atom)
            if atom.is_builtin:
                self.ops.append(_compile_builtin(literal, layout))
            elif literal.positive:
                self.ops.append(_compile_join(literal, layout))
            else:
                self.ops.append(_compile_antijoin(literal, layout))
        self.head_of = _compile_head(clause.head, layout)


class BatchExecutor:
    """Executes planned clauses as batch pipelines, caching compilations.

    One executor lives per evaluation (mirroring
    :class:`~repro.datalog.planner.ClausePlanner`); pipelines are keyed by
    ``(clause identity, delta position)`` and recompiled only when the
    planner hands back a different literal order.

    Args:
        tracer: Optional span-event receiver; every pipeline *compilation*
            (not cache hits) emits one ``pipeline_compiled`` event.  The
            :attr:`stratum` attribute labels those events and is
            maintained by the stratum loop.
    """

    def __init__(self, tracer=None) -> None:
        self.tracer = tracer
        #: Stratum index stamped on emitted events (set by the caller).
        self.stratum = 0
        self._pipelines: dict[tuple[int, Optional[int]], _Pipeline] = {}

    def execute(self, clause: Clause, store: "RelationStore",
                stats: "EvalStats",
                delta_index: Optional[int] = None,
                delta: Optional[Relation] = None,
                planner: Optional["ClausePlanner"] = None,
                ) -> list[tuple[Value, ...]]:
        """All head tuples derivable from one clause, as a list.

        The contract matches ``list(seminaive.evaluate_clause(...))``:
        same tuples, same ``probes``/``firings`` accounting, with
        ``delta``/``delta_index`` substituting the delta relation for the
        body literal at that source position (scheduled first).
        """
        if planner is not None:
            order = planner.order(clause, store.base_relation,
                                  delta_index=delta_index, stats=stats)
        else:
            first: Optional[Literal] = None
            if delta_index is not None:
                first = clause.body[delta_index]
            order = order_body(clause, first=first)

        key = (id(clause), delta_index)
        pipeline = self._pipelines.get(key)
        if pipeline is None or pipeline.order != order:
            recompiled = pipeline is not None
            pipeline = _Pipeline(clause, order)
            self._pipelines[key] = pipeline
            stats.pipelines_compiled += 1
            if self.tracer is not None:
                self.tracer.emit(
                    EV_PIPELINE_COMPILED, clause=format_clause(clause),
                    stratum=self.stratum, delta_index=delta_index,
                    recompiled=recompiled,
                    order=" -> ".join(format_literal(lit)
                                      for lit in order))
        else:
            stats.pipelines_reused += 1

        override = delta if delta_index is not None else None
        batch: Batch = [()]
        for i, op in enumerate(pipeline.ops):
            if op.atom is None:
                batch = op.run(batch, None, stats)
            elif i == 0 and override is not None:
                batch = op.run(batch, override, stats)
            else:
                batch = op.run(batch, store.resolve(op.atom), stats)
            if not batch:
                return []
        stats.firings += len(batch)
        head_of = pipeline.head_of
        return [head_of(row) for row in batch]
