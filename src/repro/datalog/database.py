"""Relations and databases (the paper's Section 2.1).

A *relation of type s1...sm over a u-domain D* is a finite set of tuples whose
i-th components come from ``D`` when ``si = 0`` and from the naturals when
``si = 1``.  A *database* bundles a u-domain with a collection of named
relations; queries are C-generic mappings from databases to sets of relations.

:class:`Relation` is the storage unit shared by the EDB, the IDB under
evaluation, and materialized ID-relations.  It keeps tuples in a set and
builds hash indexes on demand (invalidated on mutation), which is what the
nested-index join in :mod:`repro.datalog.seminaive` probes.
"""

from __future__ import annotations

import csv
import io
import sys
from typing import Iterable, Iterator, Mapping, Optional

from ..errors import SchemaError
from .terms import RelationType, Value, format_type, type_of_tuple


def _fold_sizeof(obj, seen: set[int]) -> int:
    """``sys.getsizeof`` folded over a container graph, each object once.

    Deduplicates by ``id`` so tuples shared between the tuple set and the
    hash-index buckets (they are the same objects) are charged once —
    the approximation the memory reports below are built on.  Values are
    shallow: a tuple's element costs count, but interned small ints and
    strings shared across rows still count once.
    """
    if id(obj) in seen:
        return 0
    seen.add(id(obj))
    total = sys.getsizeof(obj)
    if isinstance(obj, dict):
        for key, value in obj.items():
            total += _fold_sizeof(key, seen)
            total += _fold_sizeof(value, seen)
    elif isinstance(obj, (tuple, list, set, frozenset)):
        for item in obj:
            total += _fold_sizeof(item, seen)
    return total


class Relation:
    """A finite, typed set of ground tuples with on-demand hash indexes.

    Args:
        arity: Number of attributes.
        schema: Optional declared :data:`RelationType`; when omitted the type
            is inferred from the first tuple inserted and enforced afterwards.
        tuples: Optional initial contents.
    """

    __slots__ = ("arity", "_schema", "_tuples", "_indexes", "_column_stats")

    def __init__(self, arity: int, schema: Optional[RelationType] = None,
                 tuples: Iterable[tuple[Value, ...]] = ()) -> None:
        if schema is not None and len(schema) != arity:
            raise SchemaError(
                f"schema {format_type(schema)} does not match arity {arity}")
        self.arity = arity
        self._schema = schema
        self._tuples: set[tuple[Value, ...]] = set()
        self._indexes: dict[tuple[int, ...], dict] = {}
        self._column_stats: Optional[tuple[int, ...]] = None
        for row in tuples:
            self.add(row)

    @property
    def schema(self) -> Optional[RelationType]:
        """The relation type, if declared or inferred."""
        return self._schema

    def add(self, row: tuple[Value, ...]) -> bool:
        """Insert a tuple; returns True when it was new.

        Raises:
            SchemaError: on arity or sort mismatch.
        """
        if len(row) != self.arity:
            raise SchemaError(
                f"tuple {row!r} has arity {len(row)}, relation expects "
                f"{self.arity}")
        try:
            rowtype = type_of_tuple(row)
        except (TypeError, ValueError) as exc:
            raise SchemaError(f"tuple {row!r}: {exc}") from exc
        if self._schema is None:
            self._schema = rowtype
        elif rowtype != self._schema:
            raise SchemaError(
                f"tuple {row!r} of type {format_type(rowtype)} inserted into "
                f"relation of type {format_type(self._schema)}")
        if row in self._tuples:
            return False
        self._tuples.add(row)
        self._column_stats = None
        for positions, index in self._indexes.items():
            key = tuple(row[i] for i in positions)
            bucket = index.get(key)
            if bucket is None:
                index[key] = {row}
            else:
                bucket.add(row)
        return True

    #: A bulk ``update`` at least this large (and bigger than half the
    #: current contents) drops existing indexes instead of maintaining them
    #: row by row; ``index_on`` rebuilds lazily on the next probe.
    BULK_REINDEX_THRESHOLD = 64

    def update(self, rows: Iterable[tuple[Value, ...]]) -> int:
        """Insert many tuples; returns the number that were new.

        Large bursts (see :data:`BULK_REINDEX_THRESHOLD`) invalidate the
        hash indexes up front rather than paying per-row maintenance for
        index entries the burst would mostly rewrite anyway.
        """
        rows = rows if isinstance(rows, (list, tuple)) else list(rows)
        if (self._indexes
                and len(rows) >= self.BULK_REINDEX_THRESHOLD
                and len(rows) * 2 > len(self._tuples)):
            self._indexes.clear()
        return sum(1 for row in rows if self.add(row))

    def merge_rows(self, rows: Iterable[tuple[Value, ...]]) -> list:
        """Bulk-insert derived rows; returns the genuinely new ones in order.

        The first new row goes through :meth:`add` and is validated in
        full; the rest are trusted to carry the same type.  That holds for
        the rows one clause firing derives — every column is a constant or
        a variable bound from a typed relation column or a builtin, so the
        row type is fixed per firing — which is the only caller.  Indexes
        are maintained exactly as :meth:`add` does.
        """
        fresh: list[tuple[Value, ...]] = []
        tuples = self._tuples
        indexes = self._indexes
        for row in rows:
            if row in tuples:
                continue
            if not fresh:
                self.add(row)
                fresh.append(row)
                continue
            tuples.add(row)
            fresh.append(row)
            for positions, index in indexes.items():
                key = tuple(row[i] for i in positions)
                bucket = index.get(key)
                if bucket is None:
                    index[key] = {row}
                else:
                    bucket.add(row)
        if fresh:
            self._column_stats = None
        return fresh

    def discard(self, row: tuple[Value, ...]) -> bool:
        """Remove a tuple if present; returns True when it was removed.

        Existing hash indexes are maintained.
        """
        if row not in self._tuples:
            return False
        self._tuples.discard(row)
        self._column_stats = None
        for positions, index in self._indexes.items():
            key = tuple(row[i] for i in positions)
            bucket = index.get(key)
            if bucket is not None:
                bucket.discard(row)
                if not bucket:
                    del index[key]
        return True

    def index_on(self, positions: tuple[int, ...]) -> Mapping:
        """Return (building if necessary) a hash index on 0-based positions.

        The index maps a key tuple (the values at ``positions``) to the set
        of full tuples carrying that key (a set, so :meth:`discard` is O(1)
        per index).
        """
        index = self._indexes.get(positions)
        if index is None:
            index = {}
            if len(positions) == 1:
                slot = positions[0]
                for row in self._tuples:
                    key = (row[slot],)
                    bucket = index.get(key)
                    if bucket is None:
                        index[key] = {row}
                    else:
                        bucket.add(row)
            else:
                for row in self._tuples:
                    key = tuple(row[i] for i in positions)
                    bucket = index.get(key)
                    if bucket is None:
                        index[key] = {row}
                    else:
                        bucket.add(row)
            self._indexes[positions] = index
        return index

    def match(self, pattern: tuple[Optional[Value], ...]) -> Iterator[tuple]:
        """Yield tuples matching a partial pattern (``None`` = wildcard).

        Uses a hash index on the bound positions when any exist.
        """
        bound = tuple(i for i, v in enumerate(pattern) if v is not None)
        if not bound:
            yield from self._tuples
            return
        key = tuple(pattern[i] for i in bound)
        yield from self.index_on(bound).get(key, ())

    def column_stats(self) -> tuple[int, ...]:
        """Per-position distinct-value counts, cached until the next mutation.

        The selectivity statistics the cost-based planner
        (:mod:`repro.datalog.planner`) feeds its uniform-distribution
        estimates: an equality match on position ``i`` is expected to keep
        ``len(self) / column_stats()[i]`` tuples.
        """
        if self._column_stats is None:
            if not self._tuples:
                self._column_stats = (0,) * self.arity
            else:
                columns = [set() for _ in range(self.arity)]
                for row in self._tuples:
                    for seen, value in zip(columns, row):
                        seen.add(value)
                self._column_stats = tuple(len(seen) for seen in columns)
        return self._column_stats

    def memory_stats(self) -> dict:
        """Resource introspection: rows, index shape, approximate bytes.

        Returns a JSON-ready dict::

            {"rows": ..., "arity": ..., "indexes": ..,
             "index_buckets": .., "approx_bytes": ..}

        ``approx_bytes`` folds :func:`sys.getsizeof` over the tuple set,
        the tuples and their values, and every hash index (dict + key
        tuples + bucket sets), counting each shared object once — an
        estimate of the relation's resident footprint, not an exact
        accounting (interpreter overhead and interning are invisible to
        ``getsizeof``).  Surfaced by ``Database.stats()``, the
        ``repro-idlog stats`` command and the shell's ``.stats``.
        """
        seen: set[int] = set()
        approx = _fold_sizeof(self._tuples, seen)
        approx += _fold_sizeof(self._indexes, seen)
        return {
            "rows": len(self._tuples),
            "arity": self.arity,
            "indexes": len(self._indexes),
            "index_buckets": sum(len(ix) for ix in self._indexes.values()),
            "approx_bytes": approx,
        }

    def project(self, positions: tuple[int, ...]) -> "Relation":
        """Return the projection onto the given 0-based positions."""
        result = Relation(len(positions))
        for row in self._tuples:
            result.add(tuple(row[i] for i in positions))
        return result

    def u_constants(self) -> frozenset[str]:
        """All sort-u values appearing in the relation."""
        consts: set[str] = set()
        for row in self._tuples:
            for value in row:
                if isinstance(value, str):
                    consts.add(value)
        return frozenset(consts)

    def copy(self) -> "Relation":
        """An independent copy (indexes are not copied).

        The contents are already known valid, so the copy shares the schema
        and duplicates the tuple set directly instead of re-validating every
        row through :meth:`add`.
        """
        clone = Relation(self.arity, self._schema)
        clone._tuples = set(self._tuples)
        return clone

    def frozen(self) -> frozenset[tuple[Value, ...]]:
        """The contents as a frozenset (hashable snapshot)."""
        return frozenset(self._tuples)

    def __contains__(self, row: tuple[Value, ...]) -> bool:
        return row in self._tuples

    def __iter__(self) -> Iterator[tuple[Value, ...]]:
        return iter(self._tuples)

    def __len__(self) -> int:
        return len(self._tuples)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self.arity == other.arity and self._tuples == other._tuples

    def __hash__(self) -> int:  # pragma: no cover - relations are mutable
        raise TypeError("Relation is mutable; use .frozen() for hashing")

    def __repr__(self) -> str:
        sample = sorted(self._tuples, key=repr)[:4]
        suffix = ", ..." if len(self._tuples) > 4 else ""
        rows = ", ".join(repr(r) for r in sample)
        return f"Relation(arity={self.arity}, {{{rows}{suffix}}})"


class Database:
    """A named collection of relations plus a u-domain (Section 2.1).

    The u-domain defaults to the set of u-constants appearing in the stored
    relations but can be declared larger (the paper allows domain elements
    not mentioned by any tuple).
    """

    def __init__(self, relations: Optional[Mapping[str, Relation]] = None,
                 udomain: Optional[Iterable[str]] = None) -> None:
        self._relations: dict[str, Relation] = dict(relations or {})
        self._declared_udomain = frozenset(udomain) if udomain is not None else None

    @classmethod
    def from_facts(cls, facts: Mapping[str, Iterable[tuple[Value, ...]]],
                   udomain: Optional[Iterable[str]] = None) -> "Database":
        """Build a database from ``{predicate: iterable of tuples}``.

        >>> db = Database.from_facts({"emp": [("ann", "toys"), ("bob", "toys")]})
        >>> len(db.relation("emp"))
        2
        """
        relations = {}
        for name, rows in facts.items():
            rows = [tuple(r) for r in rows]
            if not rows:
                raise SchemaError(
                    f"cannot infer the arity of empty relation {name}; "
                    "use add_relation with an explicit arity")
            relation = Relation(len(rows[0]))
            relation.update(rows)
            relations[name] = relation
        return cls(relations, udomain)

    @property
    def udomain(self) -> frozenset[str]:
        """The u-domain: declared, or inferred from stored u-constants."""
        inferred: set[str] = set()
        for relation in self._relations.values():
            inferred |= relation.u_constants()
        if self._declared_udomain is not None:
            return self._declared_udomain | frozenset(inferred)
        return frozenset(inferred)

    def relation_names(self) -> frozenset[str]:
        """The names of all stored relations."""
        return frozenset(self._relations)

    def relation(self, name: str) -> Relation:
        """Look up a relation by name.

        Raises:
            KeyError: when no relation of that name exists.
        """
        return self._relations[name]

    def relation_or_empty(self, name: str, arity: int) -> Relation:
        """Look up a relation, or return a fresh empty one of ``arity``."""
        existing = self._relations.get(name)
        if existing is not None:
            return existing
        return Relation(arity)

    def add_relation(self, name: str, relation: Relation,
                     replace: bool = False) -> None:
        """Install a relation under ``name``.

        Raises:
            SchemaError: when the name is taken and ``replace`` is False.
        """
        if name in self._relations and not replace:
            raise SchemaError(f"relation {name} already exists")
        self._relations[name] = relation

    def add_fact(self, name: str, row: tuple[Value, ...]) -> bool:
        """Insert one tuple, creating the relation on first use."""
        relation = self._relations.get(name)
        if relation is None:
            relation = Relation(len(row))
            self._relations[name] = relation
        return relation.add(row)

    def copy(self) -> "Database":
        """A deep-ish copy (relations copied, tuples shared immutably)."""
        return Database({n: r.copy() for n, r in self._relations.items()},
                        self._declared_udomain)

    def snapshot(self) -> dict[str, frozenset]:
        """Hashable snapshot: name -> frozenset of tuples."""
        return {n: r.frozen() for n, r in self._relations.items()}

    def stats(self) -> dict:
        """Memory/cardinality introspection over every stored relation.

        Returns ``{"relations": {name: Relation.memory_stats()},
        "relation_count", "total_rows", "total_approx_bytes",
        "udomain_size"}`` — the report behind ``repro-idlog stats`` and
        the shell's ``.stats`` command.
        """
        per_relation = {name: relation.memory_stats()
                        for name, relation in self._relations.items()}
        return {
            "relations": per_relation,
            "relation_count": len(per_relation),
            "total_rows": sum(s["rows"] for s in per_relation.values()),
            "total_approx_bytes": sum(
                s["approx_bytes"] for s in per_relation.values()),
            "udomain_size": len(self.udomain),
        }

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{n}/{r.arity}:{len(r)}" for n, r in sorted(self._relations.items()))
        return f"Database({parts})"


def relation_from_csv(text: str, numeric_columns: Iterable[int] = ()) -> Relation:
    """Parse CSV text into a relation.

    Args:
        text: CSV content; every row must have the same number of fields.
        numeric_columns: 0-based column indexes to parse as sort-i integers.
    """
    numeric = frozenset(numeric_columns)
    rows = []
    for record in csv.reader(io.StringIO(text)):
        if not record:
            continue
        row = tuple(
            int(field) if i in numeric else field
            for i, field in enumerate(record))
        rows.append(row)
    if not rows:
        raise SchemaError("empty CSV: cannot infer relation arity")
    relation = Relation(len(rows[0]))
    relation.update(rows)
    return relation


def relation_to_csv(relation: Relation) -> str:
    """Render a relation as CSV text with deterministic (sorted) row order."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    for row in sorted(relation, key=lambda r: tuple(map(str, r))):
        writer.writerow(row)
    return buffer.getvalue()
