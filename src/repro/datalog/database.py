"""Relations and databases (the paper's Section 2.1), stored columnar.

A *relation of type s1...sm over a u-domain D* is a finite set of tuples whose
i-th components come from ``D`` when ``si = 0`` and from the naturals when
``si = 1``.  A *database* bundles a u-domain with a collection of named
relations; queries are C-generic mappings from databases to sets of relations.

:class:`Relation` is the storage unit shared by the EDB, the IDB under
evaluation, and materialized ID-relations.  Internally it is **column
oriented**: every constant is dictionary-encoded to one machine word by the
process-wide :data:`~repro.datalog.pool.GLOBAL_POOL` (see
:mod:`repro.datalog.pool` for the tagged encoding), each column is one
``array('q')`` of codes, set membership is an open-addressed table of row
indexes (also an ``array('q')``), and hash indexes map probe keys — a bare
int code for single-position indexes, a code tuple otherwise — to lists of
row indexes.  The batch executor (:mod:`repro.datalog.executor`) joins and
projects over these codes end-to-end; the value-level API below (``add``,
``match``, iteration, ``merge_rows``...) encodes on the way in and decodes
on the way out, so every caller that speaks values — the tuple-at-a-time
interpreter, ID-materialization, the ChoiceLog, provenance, the CLI —
behaves exactly as it did over the old tuple-set storage.
"""

from __future__ import annotations

import csv
import io
import sys
from array import array
from typing import Iterable, Iterator, Mapping, Optional

from ..errors import SchemaError
from .pool import GLOBAL_POOL
from .terms import RelationType, Value, format_type, type_of_tuple

_POOL = GLOBAL_POOL

#: Membership tables hold at most 2/3 of their slots; a rebuild resizes to
#: the smallest power of two with room for 1.5x the live rows.
_MIN_TABLE = 8


def _table_cap(rows: int) -> int:
    """The membership-table capacity for ``rows`` live rows."""
    need = 3 * rows // 2 + 2
    cap = _MIN_TABLE
    while cap < need:
        cap <<= 1
    return cap


_EMPTY_SLOT = -1
_TOMBSTONE = -2


class _IndexView(Mapping):
    """Value-level adapter over a coded hash index.

    :meth:`Relation.index_on` returns this so legacy callers keep seeing a
    mapping ``key tuple -> matching rows`` while the underlying index
    stores int codes and row numbers.  Lookups encode the key (a miss for
    a never-seen constant is just an empty bucket) and decode matched rows
    on the way out.
    """

    __slots__ = ("_relation", "_positions")

    def __init__(self, relation: "Relation",
                 positions: tuple[int, ...]) -> None:
        self._relation = relation
        self._positions = positions

    def _index(self) -> dict:
        return self._relation.index_on_coded(self._positions)

    def _coded_key(self, key: tuple):
        if len(key) != len(self._positions):
            return None
        coded = []
        for value in key:
            code = _POOL.try_encode(value)
            if code is None:
                return None
            coded.append(code)
        return coded[0] if len(coded) == 1 else tuple(coded)

    def get(self, key, default=()):
        coded = self._coded_key(key)
        if coded is None:
            return default
        bucket = self._index().get(coded)
        if not bucket:
            return default
        decode_row = self._relation._decode_row
        return [decode_row(r) for r in bucket]

    def __getitem__(self, key):
        result = self.get(key, None)
        if result is None:
            raise KeyError(key)
        return result

    def __contains__(self, key) -> bool:
        coded = self._coded_key(key)
        return coded is not None and coded in self._index()

    def __iter__(self):
        decode = _POOL.decode
        single = len(self._positions) == 1
        for coded in self._index():
            if single:
                yield (decode(coded),)
            else:
                yield tuple(map(decode, coded))

    def __len__(self) -> int:
        return len(self._index())


class CodedDelta:
    """A semi-naive delta as a bare list of coded rows.

    The coded emit path already holds each round's fresh rows as a list of
    code tuples; a delta only ever feeds the *next* round's first pipeline
    operator, so instead of copying the rows into a second columnar
    relation this view adapts the list to the executor-facing read API —
    ``len``, :meth:`coded_rows` (zero-copy), and lazily-built
    :meth:`coded_columns` / :meth:`index_on_coded` for the rare delta
    literal with bound positions.
    """

    __slots__ = ("rows", "_columns", "_indexes")

    def __init__(self, rows: list) -> None:
        self.rows = rows
        self._columns: Optional[list[array]] = None
        self._indexes: dict[tuple[int, ...], dict] = {}

    def __len__(self) -> int:
        return len(self.rows)

    def coded_rows(self) -> list:
        return self.rows

    def coded_columns(self) -> list[array]:
        if self._columns is None:
            rows = self.rows
            arity = len(rows[0]) if rows else 0
            self._columns = [array("q", (row[i] for row in rows))
                             for i in range(arity)]
        return self._columns

    def index_on_coded(self, positions: tuple[int, ...]) -> dict:
        index = self._indexes.get(positions)
        if index is None:
            index = {}
            if len(positions) == 1:
                p = positions[0]
                for r, row in enumerate(self.rows):
                    key = row[p]
                    bucket = index.get(key)
                    if bucket is None:
                        index[key] = [r]
                    else:
                        bucket.append(r)
            else:
                for r, row in enumerate(self.rows):
                    key = tuple(row[p] for p in positions)
                    bucket = index.get(key)
                    if bucket is None:
                        index[key] = [r]
                    else:
                        bucket.append(r)
            self._indexes[positions] = index
        return index


class Relation:
    """A finite, typed set of ground tuples with on-demand hash indexes.

    Args:
        arity: Number of attributes.
        schema: Optional declared :data:`RelationType`; when omitted the type
            is inferred from the first tuple inserted and enforced afterwards.
        tuples: Optional initial contents.
    """

    __slots__ = ("arity", "_schema", "_columns", "_size", "_table", "_mask",
                 "_tombs", "_indexes", "_column_stats")

    def __init__(self, arity: int, schema: Optional[RelationType] = None,
                 tuples: Iterable[tuple[Value, ...]] = ()) -> None:
        if schema is not None and len(schema) != arity:
            raise SchemaError(
                f"schema {format_type(schema)} does not match arity {arity}")
        self.arity = arity
        self._schema = schema
        self._columns: list[array] = [array("q") for _ in range(arity)]
        self._size = 0
        #: Open-addressed membership table of row indexes (-1 empty, -2
        #: tombstone), built lazily: append-only deltas never pay for it.
        self._table: Optional[array] = None
        self._mask = 0
        self._tombs = 0
        self._indexes: dict[tuple[int, ...], dict] = {}
        self._column_stats: Optional[tuple[int, ...]] = None
        for row in tuples:
            self.add(row)

    @property
    def schema(self) -> Optional[RelationType]:
        """The relation type, if declared or inferred."""
        return self._schema

    # -- membership table ----------------------------------------------------

    def _rebuild_table(self, cap: int) -> None:
        table = array("q", [_EMPTY_SLOT]) * cap
        mask = cap - 1
        columns = self._columns
        for r in range(self._size):
            h = hash(tuple(col[r] for col in columns))
            slot = h & mask
            perturb = h & 0xFFFFFFFFFFFFFFFF
            while table[slot] != _EMPTY_SLOT:
                perturb >>= 5
                slot = (slot * 5 + perturb + 1) & mask
            table[slot] = r
        self._table = table
        self._mask = mask
        self._tombs = 0

    def _ensure_table(self) -> None:
        if self._table is None:
            self._rebuild_table(_table_cap(self._size))

    def _find(self, coded: tuple[int, ...]) -> tuple[int, int]:
        """Locate a coded row: ``(row index or -1, slot to insert at)``."""
        mask = self._mask
        table = self._table
        columns = self._columns
        arity = self.arity
        h = hash(coded)
        slot = h & mask
        perturb = h & 0xFFFFFFFFFFFFFFFF
        free = -1
        while True:
            r = table[slot]
            if r == _EMPTY_SLOT:
                return -1, (slot if free < 0 else free)
            if r == _TOMBSTONE:
                if free < 0:
                    free = slot
            else:
                for j in range(arity):
                    if columns[j][r] != coded[j]:
                        break
                else:
                    return r, slot
            perturb >>= 5
            slot = (slot * 5 + perturb + 1) & mask

    def _insert_coded(self, coded: tuple[int, ...]) -> bool:
        """Insert a trusted coded row; returns True when it was new."""
        if self._table is None:
            self._rebuild_table(_table_cap(self._size))
        r, slot = self._find(coded)
        if r >= 0:
            return False
        n = self._size
        for col, code in zip(self._columns, coded):
            col.append(code)
        if self._table[slot] == _TOMBSTONE:
            self._tombs -= 1
        self._table[slot] = n
        self._size = n + 1
        self._column_stats = None
        for positions, index in self._indexes.items():
            if len(positions) == 1:
                key = coded[positions[0]]
            else:
                key = tuple(coded[p] for p in positions)
            bucket = index.get(key)
            if bucket is None:
                index[key] = [n]
            else:
                bucket.append(n)
        if (self._size + self._tombs) * 3 >= (self._mask + 1) * 2:
            self._rebuild_table(_table_cap(self._size))
        return True

    # -- value-level mutation ------------------------------------------------

    def _check_row(self, row: tuple[Value, ...]) -> None:
        """Arity + sort validation (the old ``add`` contract)."""
        if len(row) != self.arity:
            raise SchemaError(
                f"tuple {row!r} has arity {len(row)}, relation expects "
                f"{self.arity}")
        try:
            rowtype = type_of_tuple(row)
        except (TypeError, ValueError) as exc:
            raise SchemaError(f"tuple {row!r}: {exc}") from exc
        if self._schema is None:
            self._schema = rowtype
        elif rowtype != self._schema:
            raise SchemaError(
                f"tuple {row!r} of type {format_type(rowtype)} inserted into "
                f"relation of type {format_type(self._schema)}")

    def add(self, row: tuple[Value, ...]) -> bool:
        """Insert a tuple; returns True when it was new.

        Raises:
            SchemaError: on arity or sort mismatch.
        """
        self._check_row(row)
        return self._insert_coded(tuple(map(_POOL.encode, row)))

    #: A bulk ``update`` at least this large (and bigger than half the
    #: current contents) drops existing indexes instead of maintaining them
    #: row by row; ``index_on`` rebuilds lazily on the next probe.
    BULK_REINDEX_THRESHOLD = 64

    def update(self, rows: Iterable[tuple[Value, ...]]) -> int:
        """Insert many tuples; returns the number that were new.

        Large bursts (see :data:`BULK_REINDEX_THRESHOLD`) invalidate the
        hash indexes up front rather than paying per-row maintenance for
        index entries the burst would mostly rewrite anyway.
        """
        rows = rows if isinstance(rows, (list, tuple)) else list(rows)
        if (self._indexes
                and len(rows) >= self.BULK_REINDEX_THRESHOLD
                and len(rows) * 2 > self._size):
            self._indexes.clear()
        return sum(1 for row in rows if self.add(row))

    def merge_rows(self, rows: Iterable[tuple[Value, ...]]) -> list:
        """Bulk-insert derived rows; returns the genuinely new ones in order.

        The first new row is validated in full; the rest are trusted to
        carry the same type.  That holds for the rows one clause firing
        derives — every column is a constant or a variable bound from a
        typed relation column or a builtin, so the row type is fixed per
        firing — which is the only caller.  Indexes are maintained exactly
        as :meth:`add` does.
        """
        fresh: list[tuple[Value, ...]] = []
        encode = _POOL.encode
        insert = self._insert_coded
        validated = False
        for row in rows:
            if not validated:
                # Rows already present passed validation when they were
                # inserted, so checking them again is harmless — and this
                # way every merge validates exactly one row.
                self._check_row(row)
                validated = True
            if insert(tuple(map(encode, row))):
                fresh.append(row)
        return fresh

    def discard(self, row: tuple[Value, ...]) -> bool:
        """Remove a tuple if present; returns True when it was removed.

        Swap-remove: the last row moves into the hole so the column arrays
        stay dense; the membership table and any hash indexes are patched
        in place.
        """
        if len(row) != self.arity:
            return False
        coded = []
        for value in row:
            code = _POOL.try_encode(value)
            if code is None:
                return False
            coded.append(code)
        coded = tuple(coded)
        self._ensure_table()
        r, slot = self._find(coded)
        if r < 0:
            return False
        columns = self._columns
        indexes = self._indexes
        for positions, index in indexes.items():
            if len(positions) == 1:
                key = coded[positions[0]]
            else:
                key = tuple(coded[p] for p in positions)
            bucket = index[key]
            bucket.remove(r)
            if not bucket:
                del index[key]
        self._table[slot] = _TOMBSTONE
        self._tombs += 1
        last = self._size - 1
        if r != last:
            last_coded = tuple(col[last] for col in columns)
            _, last_slot = self._find(last_coded)
            self._table[last_slot] = r
            for positions, index in indexes.items():
                if len(positions) == 1:
                    key = last_coded[positions[0]]
                else:
                    key = tuple(last_coded[p] for p in positions)
                bucket = index[key]
                bucket[bucket.index(last)] = r
            for col in columns:
                col[r] = col[last]
        for col in columns:
            col.pop()
        self._size = last
        self._column_stats = None
        if self._tombs * 4 >= self._mask + 1:
            self._rebuild_table(_table_cap(self._size))
        return True

    # -- coded (executor-facing) API ----------------------------------------

    def coded_columns(self) -> list[array]:
        """The raw per-column code arrays (read-only by convention)."""
        return self._columns

    def coded_rows(self) -> list[tuple[int, ...]]:
        """All rows as tuples of codes (a fresh list, scan order)."""
        if not self.arity:
            return [()] * self._size
        return list(zip(*self._columns))

    def contains_coded(self, coded: tuple[int, ...]) -> bool:
        """Membership of a coded row."""
        self._ensure_table()
        return self._find(coded)[0] >= 0

    def index_on_coded(self, positions: tuple[int, ...]) -> dict:
        """The coded hash index on 0-based positions (built on demand).

        Maps a bare int code (single position) or a code tuple to the list
        of row indexes carrying that key.
        """
        index = self._indexes.get(positions)
        if index is None:
            index = {}
            columns = self._columns
            if len(positions) == 1:
                col = columns[positions[0]]
                for r in range(self._size):
                    key = col[r]
                    bucket = index.get(key)
                    if bucket is None:
                        index[key] = [r]
                    else:
                        bucket.append(r)
            else:
                pcols = [columns[p] for p in positions]
                for r in range(self._size):
                    key = tuple(c[r] for c in pcols)
                    bucket = index.get(key)
                    if bucket is None:
                        index[key] = [r]
                    else:
                        bucket.append(r)
            self._indexes[positions] = index
        return index

    def merge_coded(self, rows: Iterable[tuple[int, ...]]) -> list:
        """Bulk-insert coded rows; returns the genuinely new ones in order.

        The coded counterpart of :meth:`merge_rows` (the batch executor's
        emit path): the first row's sorts are checked against the schema,
        the rest are trusted.
        """
        fresh: list[tuple[int, ...]] = []
        insert = self._insert_coded
        first = True
        for coded in rows:
            if first:
                first = False
                if len(coded) != self.arity:
                    raise SchemaError(
                        f"coded tuple of arity {len(coded)} inserted into "
                        f"relation of arity {self.arity}")
                rowtype = tuple(map(_POOL.sort_of_code, coded))
                if self._schema is None:
                    self._schema = rowtype
                elif rowtype != self._schema:
                    raise SchemaError(
                        f"coded tuple of type {format_type(rowtype)} "
                        f"inserted into relation of type "
                        f"{format_type(self._schema)}")
            if insert(coded):
                fresh.append(coded)
        return fresh

    def extend_coded(self, rows: list) -> None:
        """Append coded rows known to be new and mutually distinct.

        The semi-naive emit fast path: rows the evaluation's seen-set
        proved globally fresh need no membership work here, so a pristine
        relation (no table, no indexes — the usual state during a
        fixpoint, where recursive heads are scanned or probed through
        *other* relations' indexes) takes them as plain ``array`` appends.
        When a membership table or index does exist it is maintained row
        by row, so the rows-known-new contract never corrupts reads.

        Only the first row's sorts are validated (as :meth:`merge_rows`
        does for values): one clause firing derives same-typed rows.
        """
        if not rows:
            return
        first = rows[0]
        if len(first) != self.arity:
            raise SchemaError(
                f"coded tuple of arity {len(first)} inserted into "
                f"relation of arity {self.arity}")
        rowtype = tuple(map(_POOL.sort_of_code, first))
        if self._schema is None:
            self._schema = rowtype
        elif rowtype != self._schema:
            raise SchemaError(
                f"coded tuple of type {format_type(rowtype)} inserted into "
                f"relation of type {format_type(self._schema)}")
        columns = self._columns
        n = self._size
        # C-level transpose + bulk extend: zip(*rows) never touches
        # bytecode per cell the way a per-row append loop would.
        for col, values in zip(columns, zip(*rows)):
            col.extend(values)
        self._size = n + len(rows)
        self._column_stats = None
        # Maintain any live index incrementally: keys come off the row
        # tuples (already boxed), row numbers continue from the old size.
        for positions, index in self._indexes.items():
            get = index.get
            if len(positions) == 1:
                p = positions[0]
                r = n
                for coded in rows:
                    key = coded[p]
                    bucket = get(key)
                    if bucket is None:
                        index[key] = [r]
                    else:
                        bucket.append(r)
                    r += 1
            else:
                r = n
                for coded in rows:
                    key = tuple(coded[p] for p in positions)
                    bucket = get(key)
                    if bucket is None:
                        index[key] = [r]
                    else:
                        bucket.append(r)
                    r += 1
        # Maintain the membership table only if one was already built
        # (rows are known new, so no duplicate check — just find a free
        # slot).  A pristine relation stays table-less.
        if self._table is not None:
            if (self._size + self._tombs) * 3 >= (self._mask + 1) * 2:
                # The rebuild re-hashes every row, new ones included.
                self._rebuild_table(_table_cap(self._size))
            else:
                table = self._table
                mask = self._mask
                r = n
                for coded in rows:
                    h = hash(coded)
                    slot = h & mask
                    perturb = h & 0xFFFFFFFFFFFFFFFF
                    while table[slot] >= 0:
                        perturb >>= 5
                        slot = (slot * 5 + perturb + 1) & mask
                    if table[slot] == _TOMBSTONE:
                        self._tombs -= 1
                    table[slot] = r
                    r += 1

    def empty_like(self) -> "Relation":
        """A fresh empty relation with the same arity and schema."""
        return Relation(self.arity, self._schema)

    def drop_indexes(self) -> None:
        """Discard all hash indexes (they rebuild lazily on next probe).

        The semi-naive loop calls this on head relations between the
        naive round and the delta rounds: an index probed once during the
        naive pass would otherwise be maintained on every append for the
        rest of the fixpoint.  If a delta round does probe the relation
        again, the index rebuilds once and is maintained from then on.
        """
        self._indexes.clear()

    def _decode_row(self, r: int) -> tuple[Value, ...]:
        decode = _POOL.decode
        return tuple(decode(col[r]) for col in self._columns)

    def _code_set(self) -> set[int]:
        """All distinct codes stored anywhere in the relation."""
        codes: set[int] = set()
        for col in self._columns:
            codes.update(col)
        return codes

    # -- value-level reads ---------------------------------------------------

    def index_on(self, positions: tuple[int, ...]) -> Mapping:
        """A value-level view of the hash index on 0-based positions.

        The underlying coded index is built (or reused); the view maps a
        key tuple to the list of full tuples carrying that key, decoding
        per lookup.
        """
        positions = tuple(positions)
        self.index_on_coded(positions)
        return _IndexView(self, positions)

    def match(self, pattern: tuple[Optional[Value], ...]) -> Iterator[tuple]:
        """Yield tuples matching a partial pattern (``None`` = wildcard).

        Uses the coded hash index on the bound positions when any exist; a
        bound constant the pool has never seen matches nothing.
        """
        bound = tuple(i for i, v in enumerate(pattern) if v is not None)
        if not bound:
            yield from self
            return
        key = []
        for i in bound:
            code = _POOL.try_encode(pattern[i])
            if code is None:
                return
            key.append(code)
        index = self.index_on_coded(bound)
        bucket = index.get(key[0] if len(bound) == 1 else tuple(key))
        if not bucket:
            return
        columns = self._columns
        decode = _POOL.decode
        for r in bucket:
            yield tuple(decode(col[r]) for col in columns)

    def column_stats(self) -> tuple[int, ...]:
        """Per-position distinct-value counts, cached until the next mutation.

        The selectivity statistics the cost-based planner
        (:mod:`repro.datalog.planner`) feeds its uniform-distribution
        estimates, computed directly over the code arrays — no decoding,
        one C-speed ``set`` per column.
        """
        if self._column_stats is None:
            self._column_stats = tuple(
                len(set(col)) for col in self._columns)
        return self._column_stats

    def memory_stats(self) -> dict:
        """Resource introspection: rows, index shape, resident bytes.

        Returns a JSON-ready dict.  ``approx_bytes`` is the relation's
        *resident* footprint — column arrays, membership table, and every
        hash index (dict, keys, row-index buckets) — while
        ``logical_bytes`` is the information-theoretic floor of the code
        matrix (8 bytes per cell).  ``distinct_constants`` over ``cells``
        is the relation's interning ratio: how much the dictionary
        encoding deduplicates.  The constant pool itself is shared,
        process-global state and is reported once by ``Database.stats()``,
        not per relation.
        """
        resident = sys.getsizeof(self._columns)
        resident += sum(sys.getsizeof(col) for col in self._columns)
        if self._table is not None:
            resident += sys.getsizeof(self._table)
        resident += sys.getsizeof(self._indexes)
        buckets = 0
        for index in self._indexes.values():
            resident += sys.getsizeof(index)
            buckets += len(index)
            for key, bucket in index.items():
                resident += sys.getsizeof(key) + sys.getsizeof(bucket)
        rows = self._size
        return {
            "rows": rows,
            "arity": self.arity,
            "indexes": len(self._indexes),
            "index_buckets": buckets,
            "approx_bytes": resident,
            "bytes_per_tuple": round(resident / rows, 1) if rows else 0.0,
            "logical_bytes": 8 * self.arity * rows,
            "distinct_constants": len(self._code_set()),
            "cells": rows * self.arity,
        }

    def project(self, positions: tuple[int, ...]) -> "Relation":
        """Return the projection onto the given 0-based positions."""
        schema = None
        if self._schema is not None:
            schema = tuple(self._schema[p] for p in positions)
        result = Relation(len(positions), schema)
        columns = self._columns
        if len(positions) == 1:
            col = columns[positions[0]]
            for code in set(col):
                result._insert_coded((code,))
        else:
            pcols = [columns[p] for p in positions]
            insert = result._insert_coded
            for r in range(self._size):
                insert(tuple(c[r] for c in pcols))
        return result

    def u_constants(self) -> frozenset[str]:
        """All sort-u values appearing in the relation."""
        consts: set[str] = set()
        decode = _POOL.decode
        for col in self._columns:
            for code in set(col):
                if not code & 1:
                    value = decode(code)
                    if isinstance(value, str):
                        consts.add(value)
        return frozenset(consts)

    def copy(self) -> "Relation":
        """An independent copy (indexes are not copied).

        The contents are already known valid, so the copy shares the
        schema and duplicates the code arrays and membership table
        directly instead of re-validating every row through :meth:`add`.
        """
        clone = Relation(self.arity, self._schema)
        clone._columns = [array("q", col) for col in self._columns]
        clone._size = self._size
        if self._table is not None:
            clone._table = array("q", self._table)
            clone._mask = self._mask
            clone._tombs = self._tombs
        return clone

    def frozen(self) -> frozenset[tuple[Value, ...]]:
        """The contents as a frozenset of value tuples (hashable snapshot)."""
        if not self.arity:
            return frozenset([()] * min(self._size, 1))
        return frozenset(zip(*map(_POOL.decode_column, self._columns)))

    def __contains__(self, row: tuple[Value, ...]) -> bool:
        if len(row) != self.arity:
            return False
        coded = []
        for value in row:
            code = _POOL.try_encode(value)
            if code is None:
                return False
            coded.append(code)
        self._ensure_table()
        return self._find(tuple(coded))[0] >= 0

    def __iter__(self) -> Iterator[tuple[Value, ...]]:
        if not self.arity:
            for _ in range(self._size):
                yield ()
            return
        yield from zip(*map(_POOL.decode_column, self._columns))

    def __len__(self) -> int:
        return self._size

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        if self.arity != other.arity or self._size != other._size:
            return False
        contains = other.contains_coded
        return all(contains(coded) for coded in self.coded_rows())

    def __hash__(self) -> int:  # pragma: no cover - relations are mutable
        raise TypeError("Relation is mutable; use .frozen() for hashing")

    def __repr__(self) -> str:
        sample = sorted(self, key=repr)[:4]
        suffix = ", ..." if self._size > 4 else ""
        rows = ", ".join(repr(r) for r in sample)
        return f"Relation(arity={self.arity}, {{{rows}{suffix}}})"


class Database:
    """A named collection of relations plus a u-domain (Section 2.1).

    The u-domain defaults to the set of u-constants appearing in the stored
    relations but can be declared larger (the paper allows domain elements
    not mentioned by any tuple).
    """

    def __init__(self, relations: Optional[Mapping[str, Relation]] = None,
                 udomain: Optional[Iterable[str]] = None) -> None:
        self._relations: dict[str, Relation] = dict(relations or {})
        self._declared_udomain = frozenset(udomain) if udomain is not None else None

    @classmethod
    def from_facts(cls, facts: Mapping[str, Iterable[tuple[Value, ...]]],
                   udomain: Optional[Iterable[str]] = None) -> "Database":
        """Build a database from ``{predicate: iterable of tuples}``.

        >>> db = Database.from_facts({"emp": [("ann", "toys"), ("bob", "toys")]})
        >>> len(db.relation("emp"))
        2
        """
        relations = {}
        for name, rows in facts.items():
            rows = [tuple(r) for r in rows]
            if not rows:
                raise SchemaError(
                    f"cannot infer the arity of empty relation {name}; "
                    "use add_relation with an explicit arity")
            relation = Relation(len(rows[0]))
            relation.update(rows)
            relations[name] = relation
        return cls(relations, udomain)

    @property
    def udomain(self) -> frozenset[str]:
        """The u-domain: declared, or inferred from stored u-constants."""
        inferred: set[str] = set()
        for relation in self._relations.values():
            inferred |= relation.u_constants()
        if self._declared_udomain is not None:
            return self._declared_udomain | frozenset(inferred)
        return frozenset(inferred)

    def relation_names(self) -> frozenset[str]:
        """The names of all stored relations."""
        return frozenset(self._relations)

    def relation(self, name: str) -> Relation:
        """Look up a relation by name.

        Raises:
            KeyError: when no relation of that name exists.
        """
        return self._relations[name]

    def relation_or_empty(self, name: str, arity: int) -> Relation:
        """Look up a relation, or return a fresh empty one of ``arity``."""
        existing = self._relations.get(name)
        if existing is not None:
            return existing
        return Relation(arity)

    def add_relation(self, name: str, relation: Relation,
                     replace: bool = False) -> None:
        """Install a relation under ``name``.

        Raises:
            SchemaError: when the name is taken and ``replace`` is False.
        """
        if name in self._relations and not replace:
            raise SchemaError(f"relation {name} already exists")
        self._relations[name] = relation

    def add_fact(self, name: str, row: tuple[Value, ...]) -> bool:
        """Insert one tuple, creating the relation on first use."""
        relation = self._relations.get(name)
        if relation is None:
            relation = Relation(len(row))
            self._relations[name] = relation
        return relation.add(row)

    def copy(self) -> "Database":
        """A deep-ish copy (relations copied, code arrays duplicated)."""
        return Database({n: r.copy() for n, r in self._relations.items()},
                        self._declared_udomain)

    def snapshot(self) -> dict[str, frozenset]:
        """Hashable snapshot: name -> frozenset of tuples."""
        return {n: r.frozen() for n, r in self._relations.items()}

    def stats(self) -> dict:
        """Memory/cardinality introspection over every stored relation.

        Returns ``{"relations": {name: Relation.memory_stats()},
        "relation_count", "total_rows", "total_approx_bytes",
        "total_logical_bytes", "udomain_size"}`` plus the dictionary-
        encoding report: ``distinct_constants`` (over all stored cells),
        ``total_cells``, their quotient ``interning_ratio``, and the
        process-wide constant pool's ``pool_constants`` /
        ``pool_approx_bytes`` (shared state, counted once, not per
        relation) — the report behind ``repro-idlog stats`` and the
        shell's ``.stats`` command.
        """
        per_relation = {name: relation.memory_stats()
                        for name, relation in self._relations.items()}
        codes: set[int] = set()
        for relation in self._relations.values():
            codes |= relation._code_set()
        cells = sum(s["cells"] for s in per_relation.values())
        pool = GLOBAL_POOL.stats()
        return {
            "relations": per_relation,
            "relation_count": len(per_relation),
            "total_rows": sum(s["rows"] for s in per_relation.values()),
            "total_approx_bytes": sum(
                s["approx_bytes"] for s in per_relation.values()),
            "total_logical_bytes": sum(
                s["logical_bytes"] for s in per_relation.values()),
            "distinct_constants": len(codes),
            "total_cells": cells,
            "interning_ratio": round(len(codes) / cells, 4) if cells else 0.0,
            "pool_constants": pool["constants"],
            "pool_approx_bytes": pool["approx_bytes"],
            "udomain_size": len(self.udomain),
        }

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{n}/{r.arity}:{len(r)}" for n, r in sorted(self._relations.items()))
        return f"Database({parts})"


def relation_from_csv(text: str, numeric_columns: Iterable[int] = ()) -> Relation:
    """Parse CSV text into a relation.

    Args:
        text: CSV content; every row must have the same number of fields.
        numeric_columns: 0-based column indexes to parse as sort-i integers.
    """
    numeric = frozenset(numeric_columns)
    rows = []
    for record in csv.reader(io.StringIO(text)):
        if not record:
            continue
        row = tuple(
            int(field) if i in numeric else field
            for i, field in enumerate(record))
        rows.append(row)
    if not rows:
        raise SchemaError("empty CSV: cannot infer relation arity")
    relation = Relation(len(rows[0]))
    relation.update(rows)
    return relation


def relation_to_csv(relation: Relation) -> str:
    """Render a relation as CSV text with deterministic (sorted) row order."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    for row in sorted(relation, key=lambda r: tuple(map(str, r))):
        writer.writerow(row)
    return buffer.getvalue()
