"""Incremental maintenance of materialized programs under fact updates.

For **positive** programs:

* insertions are monotone — maintenance is the semi-naive delta loop
  restarted from the inserted tuple;
* deletions use **DRed** (delete-and-rederive, Gupta/Mumick/Subrahmanian):
  over-delete everything with a derivation through the removed tuple,
  then re-derive survivors that have alternative support, propagating
  reinsertions with the same insertion machinery.

For programs with negation (or ID-atoms, whose materialized ID-relations
would need re-numbering), updates are not monotone;
:class:`IncrementalEngine` falls back to full recomputation there,
keeping one API with two measured paths (the A4 ablation quantifies the
difference).
"""

from __future__ import annotations

from time import perf_counter
from typing import Optional, Union

from ..errors import EvaluationError, SchemaError
from .ast import Atom, Program
from .database import Database, Relation
from .parser import parse_program
from .executor import BATCH, BatchExecutor, check_engine_mode
from .planner import ClausePlanner
from .safety import check_program
from .seminaive import (EvalStats, RelationStore, evaluate_clause,
                        evaluate_stratum, prepare_store)
from .stratify import stratify
from .terms import Value
from .trace import EV_INCREMENTAL, Tracer, resolve_tracer


def _has_negation(program: Program) -> bool:
    return any(
        not literal.positive and not literal.atom.is_builtin
        for clause in program.clauses for literal in clause.body)


class IncrementalEngine:
    """A materialized program view maintained under fact insertions.

    Example:
        >>> engine = IncrementalEngine('''
        ...     path(X, Y) :- edge(X, Y).
        ...     path(X, Y) :- edge(X, Z), path(Z, Y).
        ... ''')
        >>> engine.start(Database.from_facts({"edge": [("a", "b")]}))
        >>> engine.add_fact("edge", ("b", "c"))   # returns new tuples
        3
        >>> sorted(engine.relation("path"))
        [('a', 'b'), ('a', 'c'), ('b', 'c')]
    """

    def __init__(self, program: Union[str, Program],
                 tracer: Optional[Tracer] = None,
                 engine: str = BATCH) -> None:
        if isinstance(program, str):
            program = parse_program(program)
        if program.has_choice():
            raise SchemaError("incremental maintenance is for Datalog/"
                              "IDLOG programs, not DATALOG^C")
        check_program(program)
        check_engine_mode(engine)
        self.program = program
        #: Engine for (re-)materialization passes.  Delta propagation and
        #: DRed re-derivation stay tuple-at-a-time regardless — they probe
        #: alternative derivations one tuple at a time by construction.
        self.engine = engine
        self.stratification = stratify(program)
        #: True when insertions take the delta fast path.
        self.incremental = not _has_negation(program) \
            and not program.has_id_atoms()
        #: Optional span-event receiver; maintenance operations emit
        #: ``incremental`` events that say which path (delta fast path,
        #: DRed, or full-recompute fallback) handled each update.
        self.tracer = tracer
        self._store: RelationStore | None = None
        self._base = Database()
        self.stats = EvalStats()

    def _trace(self, **fields) -> None:
        tracer = resolve_tracer(self.tracer)
        if tracer is not None:
            tracer.emit(EV_INCREMENTAL, **fields)

    # -- lifecycle ----------------------------------------------------------

    def start(self, db: Database) -> None:
        """Materialize the program over ``db`` (copied; later insertions
        do not touch the caller's database)."""
        self._base = db.copy()
        self.stats = EvalStats()
        start = perf_counter()
        self._materialize()
        self._trace(op="materialize", incremental=self.incremental,
                    wall_s=perf_counter() - start)

    def _materialize(self) -> None:
        stats = EvalStats()
        tracer = resolve_tracer(self.tracer)
        # prepare_store shares EDB relations; since we own self._base
        # (copied in start), mutating them via add_fact is fine.
        store = prepare_store(self.program, self._base, None, stats)
        planner = ClausePlanner("greedy", tracer=tracer)
        executor = BatchExecutor(tracer=tracer) \
            if self.engine == BATCH else None
        heads = self.program.head_predicates
        for level, stratum in enumerate(self.stratification.strata):
            stratum_heads = frozenset(stratum & heads)
            clauses = tuple(c for c in self.program.clauses
                            if c.head.pred in stratum_heads)
            if clauses:
                evaluate_stratum(clauses, stratum_heads, store, stats,
                                 planner=planner, executor=executor,
                                 tracer=tracer, stratum=level)
        self._store = store
        self.stats.merge(stats)

    def _require_started(self) -> RelationStore:
        if self._store is None:
            raise EvaluationError("call start(db) before add_fact/relation")
        return self._store

    # -- reads --------------------------------------------------------------

    def relation(self, pred: str) -> frozenset[tuple]:
        """The current materialized relation of ``pred``."""
        store = self._require_started()
        return store.relation(pred).frozen()

    def database(self) -> Database:
        """A snapshot of all current relations."""
        store = self._require_started()
        return store.as_database(
            self._base.udomain | self.program.u_constants()).copy()

    # -- writes ---------------------------------------------------------------

    def add_fact(self, pred: str, row: tuple[Value, ...]) -> int:
        """Insert one tuple and maintain all derived relations.

        Returns:
            The number of tuples (including the inserted one) that are new.

        Raises:
            SchemaError: when ``pred`` is not a predicate of the program
                or the row has the wrong arity/sorts.
        """
        store = self._require_started()
        if pred not in self.program.predicates:
            raise SchemaError(f"{pred} is not a predicate of the program")

        if not self.incremental:
            if pred not in self.program.input_predicates:
                raise SchemaError(
                    "insertions into derived predicates are only supported "
                    "on the incremental (positive-program) path")
            if not self._base.add_fact(pred, row):
                return 0
            start = perf_counter()
            before = {p: store.relation(p).frozen()
                      for p in self.program.head_predicates}
            self._materialize()
            store = self._require_started()
            added = 1
            for p in self.program.head_predicates:
                added += len(store.relation(p).frozen() - before[p])
            self._trace(op="insert", path="fallback", pred=pred,
                        reason="negation or ID-atoms force full "
                               "recomputation", changed=added,
                        wall_s=perf_counter() - start)
            return added

        if not store.relation(pred).add(row):
            return 0
        start = perf_counter()
        if pred in self.program.input_predicates:
            # Keep the base database consistent (a no-op when the store
            # shares the base relation object).
            self._base.add_fact(pred, row)
        self.stats.count_derived(pred)
        added = 1 + self._propagate({pred: [row]})
        self._trace(op="insert", path="delta", pred=pred, changed=added,
                    wall_s=perf_counter() - start)
        return added

    def delete_fact(self, pred: str, row: tuple[Value, ...]) -> int:
        """Remove one EDB tuple and maintain all derived relations (DRed).

        Returns:
            The number of tuples that are gone after maintenance (the
            deleted tuple plus derived tuples that lost all support).

        Raises:
            SchemaError: when ``pred`` is not an input predicate of the
                program (derived tuples cannot be deleted — they would be
                re-derived immediately).
        """
        store = self._require_started()
        if pred not in self.program.input_predicates:
            raise SchemaError(
                f"{pred} is not an input predicate; only EDB tuples can "
                "be deleted")
        if row not in store.relation(pred):
            return 0
        if pred in self._base:
            self._base.relation(pred).discard(row)

        if not self.incremental:
            start = perf_counter()
            before = {p: store.relation(p).frozen()
                      for p in self.program.head_predicates}
            store.relation(pred).discard(row)
            self._materialize()
            store = self._require_started()
            gone = 1
            for p in self.program.head_predicates:
                gone += len(before[p] - store.relation(p).frozen())
            self._trace(op="delete", path="fallback", pred=pred,
                        reason="negation or ID-atoms force full "
                               "recomputation", changed=gone,
                        wall_s=perf_counter() - start)
            return gone

        # Phase 1 (over-delete): everything with a derivation through the
        # deleted tuple, computed semi-naive style against the ORIGINAL
        # relations (the standard DRed over-approximation).
        start = perf_counter()
        stats = EvalStats()
        deleted: dict[str, set[tuple]] = {pred: {row}}
        frontier: dict[str, Relation] = {
            pred: Relation(store.relation(pred).arity, tuples=[row])}
        while frontier:
            previous, frontier = frontier, {}
            for clause, position, body_pred in self._occurrences():
                delta = previous.get(body_pred)
                if delta is None or not len(delta):
                    continue
                head = clause.head.pred
                for candidate in list(evaluate_clause(
                        clause, store, stats,
                        delta_index=position, delta=delta)):
                    if candidate in deleted.get(head, ()):
                        continue
                    if candidate not in store.relation(head):
                        continue
                    deleted.setdefault(head, set()).add(candidate)
                    bucket = frontier.get(head)
                    if bucket is None:
                        bucket = Relation(store.relation(head).arity)
                        frontier[head] = bucket
                    bucket.add(candidate)
        for name, rows in deleted.items():
            relation = store.relation(name)
            for gone_row in rows:
                relation.discard(gone_row)

        # Phase 2 (re-derive): candidates with alternative support come
        # back, and their reinsertion propagates like an ordinary insert.
        rederived = 0
        for name, rows in sorted(deleted.items()):
            if name == pred:
                continue  # the EDB seed itself never re-derives
            for candidate in sorted(rows, key=lambda r: tuple(map(repr, r))):
                if candidate in store.relation(name):
                    continue  # already back via propagation
                if self._derivable(name, candidate):
                    store.relation(name).add(candidate)
                    rederived += 1 + self._propagate({name: [candidate]})
        self.stats.merge(stats)
        total_deleted = sum(len(rows) for rows in deleted.values())
        self._trace(op="delete", path="dred", pred=pred,
                    overdeleted=total_deleted, rederived=rederived,
                    changed=total_deleted - rederived,
                    wall_s=perf_counter() - start)
        return total_deleted - rederived

    def _derivable(self, pred: str, row: tuple[Value, ...]) -> bool:
        """Does some clause derive ``row`` from the current relations?"""
        from .safety import order_body
        from .terms import Const, Var
        store = self._require_started()
        stats = EvalStats()
        for clause in self.program.clauses_defining(pred):
            subst: dict[Var, Value] = {}
            ok = True
            for term, value in zip(clause.head.args, row):
                if isinstance(term, Const):
                    if term.value != value:
                        ok = False
                        break
                else:
                    bound = subst.get(term)
                    if bound is None:
                        subst[term] = value
                    elif bound != value:
                        ok = False
                        break
            if not ok:
                continue
            if not clause.body:
                return True
            plan = order_body(clause,
                              initially_bound=frozenset(subst))
            from .seminaive import _solve_literals
            for final in _solve_literals(plan, 0, subst, store, stats, {}):
                head = tuple(
                    t.value if isinstance(t, Const) else final[t]
                    for t in clause.head.args)
                if head == row:
                    return True
        return False

    def _occurrences(self) -> list[tuple]:
        cached = getattr(self, "_occurrence_cache", None)
        if cached is None:
            cached = []
            for clause in self.program.clauses:
                for i, literal in enumerate(clause.body):
                    atom = literal.atom
                    if isinstance(atom, Atom) and literal.positive \
                            and not atom.is_builtin:
                        cached.append((clause, i, atom.pred))
            object.__setattr__(self, "_occurrence_cache", cached)
        return cached

    def _propagate(self, seed_deltas: dict[str, list[tuple]]) -> int:
        """Semi-naive continuation from the inserted tuples."""
        store = self._require_started()
        stats = EvalStats()
        added = 0
        deltas: dict[str, Relation] = {}
        for pred, rows in seed_deltas.items():
            relation = Relation(store.relation(pred).arity)
            relation.update(rows)
            deltas[pred] = relation

        while deltas:
            previous, deltas = deltas, {}
            for clause, position, pred in self._occurrences():
                delta = previous.get(pred)
                if delta is None or not len(delta):
                    continue
                head = clause.head.pred
                for row in list(evaluate_clause(
                        clause, store, stats,
                        delta_index=position, delta=delta)):
                    if store.relation(head).add(row):
                        added += 1
                        stats.count_derived(head)
                        bucket = deltas.get(head)
                        if bucket is None:
                            bucket = Relation(store.relation(head).arity)
                            deltas[head] = bucket
                        bucket.add(row)
        self.stats.merge(stats)
        return added
