"""Aggregated metrics: registry, tracer adapter, and exporters.

:mod:`repro.datalog.trace` (PR 3) answered "why was *this* evaluation
slow?" with span events and EXPLAIN ANALYZE tables.  This module answers
the long-running-process question — "what has the engine been doing since
it started?" — with **aggregated, labeled, scrape-friendly metrics**, the
instrumentation style LDL++ credits for much of its usability as a
system.

Three layers:

* :class:`MetricsRegistry` — a thread-safe home for labeled
  :class:`Counter` / :class:`Gauge` / :class:`Histogram` families, with
  two exporters: :meth:`MetricsRegistry.to_prometheus` (the text
  exposition format Prometheus scrapes) and
  :meth:`MetricsRegistry.snapshot` (a JSON-ready dict).
* :class:`MetricsTracer` — an adapter folding the *existing* PR-3 span
  events (clause firings, probes, delta rounds, plan builds, pipeline
  compilations, ID materializations, incremental ops, top-down queries)
  into a registry.  It adds **zero new instrumentation points**: the hot
  path still guards on ``tracer is not None`` exactly as before, and the
  engines never learn that metrics exist.  The counter values are exact
  by construction — ``clause_fire`` events carry *deltas* of the
  :class:`~repro.datalog.seminaive.EvalStats` counters, so their sums
  reproduce the run's ``probes`` / ``firings`` / ``total_derived``
  totals bit-for-bit.
* :class:`ProgressTracer` — a human-facing heartbeat that renders
  stratum/round progress lines to stderr while a long evaluation runs
  (``repro-idlog run --progress``).

Histograms use **fixed log-scale buckets** (:func:`log_buckets`): wall
times span six orders of magnitude between a cache-hit clause execution
and a full transitive closure, so linear buckets would waste all their
resolution at one end.
"""

from __future__ import annotations

import sys
import threading
from time import perf_counter
from typing import Optional, Sequence, TextIO

from .trace import (EV_CLAUSE_FIRE, EV_EVAL_END, EV_EVAL_START,
                    EV_ID_CHOICE, EV_ID_MATERIALIZED, EV_INCREMENTAL,
                    EV_PIPELINE_COMPILED, EV_PLAN_BUILT, EV_PLAN_DRIFT,
                    EV_ROUND, EV_STRATUM_END, EV_STRATUM_START,
                    EV_TOPDOWN_QUERY, MISESTIMATE_THRESHOLD,
                    SCHEMA_VERSION, q_error)

INF = float("inf")


def log_buckets(start: float, factor: float, count: int) -> tuple[float, ...]:
    """``count`` geometric bucket upper bounds from ``start`` by ``factor``.

    >>> log_buckets(1, 10, 4)
    (1.0, 10.0, 100.0, 1000.0)
    """
    if start <= 0 or factor <= 1 or count < 1:
        raise ValueError("log_buckets needs start > 0, factor > 1, "
                         "count >= 1")
    # Round to 9 significant digits so repeated multiplication does not
    # leak float noise into the exposition (1e-05, not 9.9999...e-06).
    return tuple(float(f"{start * factor ** i:.9g}") for i in range(count))


#: Default histogram buckets for wall times in seconds: 1µs to 10s by
#: decades.  Clause executions land at the low end, whole evaluations at
#: the high end.
TIME_BUCKETS = log_buckets(1e-6, 10.0, 8)

#: Default histogram buckets for tuple counts (delta sizes, batch sizes):
#: powers of four from 1 to 16384.
COUNT_BUCKETS = log_buckets(1.0, 4.0, 8)

#: Histogram buckets for q-errors (estimate-vs-actual factors): powers of
#: two from 1 to 2048.  A perfect estimate lands in the first bucket; the
#: misestimate threshold (4x) sits two buckets up.
Q_ERROR_BUCKETS = log_buckets(1.0, 2.0, 12)


def _head_predicate(clause_text: str) -> str:
    """The head predicate of a formatted clause (metric label)."""
    head = clause_text.split(":-", 1)[0]
    return head.split("(", 1)[0].strip() or "?"


def _check_name(name: str) -> str:
    if not name or not all(c.isalnum() or c in "_:" for c in name) \
            or name[0].isdigit():
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"') \
        .replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == INF:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _labels_key(labelnames: tuple[str, ...],
                labels: dict[str, object]) -> tuple[str, ...]:
    if set(labels) != set(labelnames):
        raise ValueError(
            f"expected labels {labelnames}, got {tuple(sorted(labels))}")
    return tuple(str(labels[name]) for name in labelnames)


class Counter:
    """A monotonically increasing value (one labeled child of a family)."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can go up and down (one labeled child of a family)."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Observations bucketed into fixed upper bounds (+Inf implicit).

    Bucket counts are stored per-bucket and *cumulated at export time*
    (the Prometheus convention), so :meth:`observe` is one bisect plus
    two adds.
    """

    __slots__ = ("_lock", "buckets", "_counts", "_sum", "_count")

    def __init__(self, lock: threading.Lock,
                 buckets: Sequence[float]) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if len(set(bounds)) != len(bounds):
            raise ValueError("histogram bucket bounds must be distinct")
        self._lock = lock
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot = +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        from bisect import bisect_left
        slot = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[slot] += 1
            self._sum += value
            self._count += 1

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def count(self) -> int:
        return self._count

    def cumulative(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs ending at +Inf."""
        out = []
        total = 0
        for bound, n in zip(self.buckets + (INF,), self._counts):
            total += n
            out.append((bound, total))
        return out


_METRIC_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """One named metric with a fixed label schema and per-labelset children.

    Obtained from :meth:`MetricsRegistry.counter` /
    :meth:`~MetricsRegistry.gauge` / :meth:`~MetricsRegistry.histogram`;
    never constructed directly.
    """

    def __init__(self, name: str, kind: str, help_text: str,
                 labelnames: tuple[str, ...], lock: threading.Lock,
                 buckets: Optional[tuple[float, ...]] = None) -> None:
        self.name = _check_name(name)
        self.kind = kind
        self.help = help_text
        self.labelnames = labelnames
        self._buckets = buckets
        self._lock = lock
        self._children: dict[tuple[str, ...], object] = {}

    def labels(self, **labels):
        """The child for one label-value combination (created on first use)."""
        key = _labels_key(self.labelnames, labels)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    if self.kind == "histogram":
                        child = Histogram(self._lock, self._buckets)
                    else:
                        child = _METRIC_TYPES[self.kind](self._lock)
                    self._children[key] = child
        return child

    def unlabeled(self):
        """The single child of a label-less family."""
        if self.labelnames:
            raise ValueError(
                f"metric {self.name} has labels {self.labelnames}; "
                "use .labels(...)")
        return self.labels()

    # Label-less families proxy the child API so callers can write
    # ``registry.counter("x").inc()`` without an intermediate call.
    def inc(self, amount: float = 1.0) -> None:
        self.unlabeled().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self.unlabeled().dec(amount)

    def set(self, value: float) -> None:
        self.unlabeled().set(value)

    def observe(self, value: float) -> None:
        self.unlabeled().observe(value)

    @property
    def value(self) -> float:
        return self.unlabeled().value

    def children(self) -> list[tuple[tuple[str, ...], object]]:
        """``(label_values, child)`` pairs sorted by label values."""
        return sorted(self._children.items())

    def cardinality(self) -> int:
        """Number of labeled children (the series count this family
        would export)."""
        return len(self._children)


class MetricsRegistry:
    """A thread-safe collection of metric families with two exporters.

    Registration is idempotent: asking for an existing name with the same
    type and label schema returns the existing family; a conflicting
    re-registration raises ``ValueError``.

    >>> registry = MetricsRegistry()
    >>> registry.counter("queries_total", "Queries served",
    ...                  labels=("engine",)).labels(engine="batch").inc(3)
    >>> registry.counter("queries_total", labels=("engine",)) \\
    ...     .labels(engine="batch").value
    3.0
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, MetricFamily] = {}

    def _register(self, name: str, kind: str, help_text: str,
                  labels: Sequence[str],
                  buckets: Optional[Sequence[float]] = None) -> MetricFamily:
        labelnames = tuple(labels)
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if existing.kind != kind \
                        or existing.labelnames != labelnames:
                    raise ValueError(
                        f"metric {name} already registered as "
                        f"{existing.kind}{existing.labelnames}, cannot "
                        f"re-register as {kind}{labelnames}")
                return existing
            family = MetricFamily(
                name, kind, help_text, labelnames, self._lock,
                buckets=tuple(buckets) if buckets is not None else None)
            self._families[name] = family
            return family

    def counter(self, name: str, help_text: str = "",
                labels: Sequence[str] = ()) -> MetricFamily:
        """Register (or look up) a counter family."""
        return self._register(name, "counter", help_text, labels)

    def gauge(self, name: str, help_text: str = "",
              labels: Sequence[str] = ()) -> MetricFamily:
        """Register (or look up) a gauge family."""
        return self._register(name, "gauge", help_text, labels)

    def histogram(self, name: str, help_text: str = "",
                  labels: Sequence[str] = (),
                  buckets: Sequence[float] = TIME_BUCKETS) -> MetricFamily:
        """Register (or look up) a histogram family."""
        # Validate bounds eagerly — children are created lazily, and a bad
        # bucket list should fail at registration, not at first observe.
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if len(set(bounds)) != len(bounds):
            raise ValueError("histogram bucket bounds must be distinct")
        return self._register(name, "histogram", help_text, labels,
                              buckets=bounds)

    def families(self) -> list[MetricFamily]:
        """All families, sorted by name."""
        with self._lock:
            return sorted(self._families.values(), key=lambda f: f.name)

    def total_series(self) -> int:
        """Total labeled children across all families (exposition size)."""
        return sum(f.cardinality() for f in self.families())

    # -- exporters ----------------------------------------------------------

    def to_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4).

        Deterministic: families sorted by name, children by label values —
        goldens in the test suite diff this output directly.
        """
        lines: list[str] = []
        for family in self.families():
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for values, child in family.children():
                labels = ",".join(
                    f'{n}="{_escape_label(v)}"'
                    for n, v in zip(family.labelnames, values))
                if family.kind == "histogram":
                    for bound, count in child.cumulative():
                        le = f'le="{_format_value(bound)}"'
                        inner = f"{labels},{le}" if labels else le
                        lines.append(
                            f"{family.name}_bucket{{{inner}}} {count}")
                    suffix = f"{{{labels}}}" if labels else ""
                    lines.append(f"{family.name}_sum{suffix} "
                                 f"{_format_value(child.sum)}")
                    lines.append(f"{family.name}_count{suffix} "
                                 f"{child.count}")
                else:
                    suffix = f"{{{labels}}}" if labels else ""
                    lines.append(f"{family.name}{suffix} "
                                 f"{_format_value(child.value)}")
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> dict:
        """A JSON-ready snapshot of every family and child.

        Carries the same ``schema`` version as the JSONL traces and
        profiles so downstream consumers can detect format drift.
        """
        families = []
        for family in self.families():
            entry: dict = {"name": family.name, "type": family.kind,
                           "help": family.help,
                           "labelnames": list(family.labelnames),
                           "series": []}
            for values, child in family.children():
                series: dict = {
                    "labels": dict(zip(family.labelnames, values))}
                if family.kind == "histogram":
                    series["sum"] = child.sum
                    series["count"] = child.count
                    series["buckets"] = [
                        {"le": "+Inf" if bound == INF else bound,
                         "count": count}
                        for bound, count in child.cumulative()]
                else:
                    series["value"] = child.value
                entry["series"].append(series)
            families.append(entry)
        return {"schema": SCHEMA_VERSION, "metrics": families}


# -- the trace-event adapter -------------------------------------------------

class MetricsTracer:
    """Fold the PR-3 span-event stream into a :class:`MetricsRegistry`.

    Install it like any other tracer (``tracer=`` knob or
    :func:`~repro.datalog.trace.use_tracer`); every evaluation it observes
    accumulates into :attr:`registry`.  Counter totals are exact mirrors
    of :class:`~repro.datalog.seminaive.EvalStats`: ``clause_fire`` events
    carry per-execution counter deltas, so

    * ``idlog_probes_total``  == ``stats.probes``
    * ``idlog_firings_total`` == ``stats.firings``
    * ``idlog_derived_tuples_total`` == ``stats.total_derived``

    summed over the evaluations the tracer saw (the acceptance invariant
    ``tests/datalog/test_metrics.py`` asserts per engine x plan mode).

    Args:
        registry: Fold into an existing registry (shared across tracers /
            exported by a server thread); a fresh one by default.
        namespace: Metric name prefix (default ``idlog``).
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 namespace: str = "idlog") -> None:
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        r, ns = self.registry, namespace
        self._evals = r.counter(
            f"{ns}_evaluations_total",
            "Evaluations completed", labels=("engine", "plan"))
        self._eval_seconds = r.histogram(
            f"{ns}_evaluation_seconds", "Wall time per evaluation")
        self._probes = r.counter(
            f"{ns}_probes_total",
            "Tuples scanned/probed while joining (EvalStats.probes)")
        self._firings = r.counter(
            f"{ns}_firings_total",
            "Head tuples produced, duplicates included "
            "(EvalStats.firings)")
        self._derived = r.counter(
            f"{ns}_derived_tuples_total",
            "Novel tuples added to relations (EvalStats.total_derived)")
        self._clause_execs = r.counter(
            f"{ns}_clause_executions_total",
            "Clause executions (one per fixpoint round per delta variant)",
            labels=("stratum",))
        self._clause_seconds = r.histogram(
            f"{ns}_clause_seconds", "Wall time per clause execution")
        self._rounds = r.counter(
            f"{ns}_fixpoint_rounds_total", "Semi-naive delta rounds")
        self._delta_tuples = r.histogram(
            f"{ns}_delta_tuples", "Delta sizes entering each round",
            buckets=COUNT_BUCKETS)
        self._strata = r.counter(
            f"{ns}_strata_total", "Strata evaluated")
        self._plans = r.counter(
            f"{ns}_plans_built_total", "Clause plans compiled or re-costed",
            labels=("mode",))
        self._plan_q_error = r.histogram(
            f"{ns}_plan_q_error",
            "Per-clause-execution q-error of the planner's probe "
            "estimate (max(est/actual, actual/est), +1 smoothed)",
            buckets=Q_ERROR_BUCKETS)
        self._plan_misestimates = r.counter(
            f"{ns}_plan_misestimates_total",
            "Clause executions whose q-error reached the misestimate "
            f"threshold ({MISESTIMATE_THRESHOLD:g}x)",
            labels=("predicate",))
        self._plan_drift = r.counter(
            f"{ns}_plan_drift_total",
            "Re-costings that flipped a cached clause's literal order "
            "mid-fixpoint", labels=("mode",))
        self._pipelines = r.counter(
            f"{ns}_pipelines_compiled_total",
            "Batch pipelines compiled (cache misses)")
        self._id_mats = r.counter(
            f"{ns}_id_materializations_total",
            "ID-relation materializations", labels=("pred",))
        self._id_tuples = r.counter(
            f"{ns}_id_tuples_total", "Tuples materialized into ID-relations")
        self._id_choices = r.counter(
            f"{ns}_id_choices_total",
            "ID-function block choices recorded or replayed "
            "(one per block per materialization)", labels=("pred",))
        self._cardinality = r.gauge(
            f"{ns}_relation_tuples",
            "Final cardinality per derived relation (latest evaluation)",
            labels=("predicate",))
        self._incremental = r.counter(
            f"{ns}_incremental_ops_total",
            "Incremental maintenance operations", labels=("op", "path"))
        self._topdown = r.counter(
            f"{ns}_topdown_queries_total", "Top-down (QSQ) queries answered")

    def emit(self, kind: str, **fields) -> None:
        if kind == EV_CLAUSE_FIRE:
            self._clause_execs.labels(
                stratum=fields.get("stratum", 0)).inc()
            self._probes.inc(fields.get("probes", 0))
            self._firings.inc(fields.get("firings", 0))
            self._derived.inc(fields.get("new", 0))
            self._clause_seconds.observe(fields.get("wall_s", 0.0))
            stages = fields.get("stages")
            if stages:
                est_probes = sum(s.get("est_probes", 0.0) for s in stages)
                err = q_error(est_probes, fields.get("probes", 0))
                for stage in stages:
                    err = max(err, q_error(stage.get("est_rows", 0.0),
                                           stage.get("actual_rows", 0)))
                self._plan_q_error.observe(err)
                if err >= MISESTIMATE_THRESHOLD:
                    self._plan_misestimates.labels(
                        predicate=_head_predicate(
                            fields.get("clause", "?"))).inc()
        elif kind == EV_PLAN_DRIFT:
            self._plan_drift.labels(
                mode=fields.get("mode", "cost")).inc()
        elif kind == EV_ROUND:
            self._rounds.inc()
            for size in fields.get("deltas", {}).values():
                self._delta_tuples.observe(size)
        elif kind == EV_PLAN_BUILT:
            self._plans.labels(mode=fields.get("mode", "greedy")).inc()
        elif kind == EV_PIPELINE_COMPILED:
            self._pipelines.inc()
        elif kind == EV_ID_MATERIALIZED:
            self._id_mats.labels(pred=fields.get("pred", "?")).inc()
            self._id_tuples.inc(fields.get("id_tuples", 0))
        elif kind == EV_ID_CHOICE:
            self._id_choices.labels(pred=fields.get("pred", "?")).inc()
        elif kind == EV_STRATUM_END:
            self._strata.inc()
            for pred, size in fields.get("cardinalities", {}).items():
                self._cardinality.labels(predicate=pred).set(size)
        elif kind == EV_EVAL_END:
            self._eval_seconds.observe(fields.get("wall_s", 0.0))
        elif kind == EV_EVAL_START:
            self._evals.labels(engine=fields.get("engine", "?"),
                               plan=fields.get("plan", "?")).inc()
        elif kind == EV_INCREMENTAL:
            self._incremental.labels(op=fields.get("op", "?"),
                                     path=fields.get("path") or "-").inc()
        elif kind == EV_TOPDOWN_QUERY:
            self._topdown.inc()
        # stratum_start / topdown_round carry no aggregates.
        elif kind == EV_STRATUM_START:
            pass

    def to_prometheus(self) -> str:
        """Shorthand for ``self.registry.to_prometheus()``."""
        return self.registry.to_prometheus()

    def snapshot(self) -> dict:
        """Shorthand for ``self.registry.snapshot()``."""
        return self.registry.snapshot()


# -- the stderr heartbeat ----------------------------------------------------

class ProgressTracer:
    """Render stratum/round heartbeats as lines on a stream.

    A human-facing progress display for long evaluations
    (``repro-idlog run --progress`` writes to stderr, keeping stdout
    clean for results).  ``min_interval_s`` throttles the chatty
    per-round lines — stratum and evaluation boundaries always print.
    """

    def __init__(self, stream: Optional[TextIO] = None,
                 min_interval_s: float = 0.0) -> None:
        self._stream = stream if stream is not None else sys.stderr
        self._min_interval = min_interval_s
        self._last_round_at = 0.0
        self.lines_written = 0

    def _write(self, text: str) -> None:
        self._stream.write(text + "\n")
        self._stream.flush()
        self.lines_written += 1

    def emit(self, kind: str, **fields) -> None:
        if kind == EV_EVAL_START:
            bits = [f"{name}={fields[name]}"
                    for name in ("program", "plan", "engine", "strata")
                    if name in fields]
            self._write(f"[progress] eval start  {' '.join(bits)}")
        elif kind == EV_STRATUM_START:
            heads = ", ".join(fields.get("heads", ())) or "(no heads)"
            self._write(f"[progress] stratum {fields.get('stratum', 0)}: "
                        f"defining {heads}")
        elif kind == EV_ROUND:
            now = perf_counter()
            if now - self._last_round_at < self._min_interval:
                return
            self._last_round_at = now
            deltas = fields.get("deltas", {})
            rendered = " ".join(f"Δ{p}={n}"
                                for p, n in sorted(deltas.items()))
            self._write(f"[progress]   round {fields.get('round', '?')}: "
                        f"{rendered or 'no deltas'}")
        elif kind == EV_STRATUM_END:
            cards = fields.get("cardinalities", {})
            sizes = ", ".join(f"{p}={n}" for p, n in sorted(cards.items()))
            self._write(
                f"[progress] stratum {fields.get('stratum', 0)} done: "
                f"{fields.get('rounds', '?')} round(s), "
                f"{fields.get('wall_s', 0.0) * 1000:.1f} ms"
                + (f", sizes: {sizes}" if sizes else ""))
        elif kind == EV_EVAL_END:
            self._write(
                f"[progress] eval done: "
                f"{fields.get('wall_s', 0.0) * 1000:.1f} ms, "
                f"derived={fields.get('derived', '?')} "
                f"probes={fields.get('probes', '?')}")
