"""Relational algebra over :class:`~repro.datalog.database.Relation`.

The engines work through joins compiled from clause bodies; this module
exposes the underlying operators directly — handy for loading/massaging
data around programs, for tests, and as a secondary oracle (the algebra
tests re-derive small clause evaluations with explicit operators).

All operators are functional: inputs are never mutated.  Internally they
run on the columnar representation: rows move between relations as
tagged constant codes (see :mod:`repro.datalog.pool`) and only
:func:`select`, whose predicate is an arbitrary value-level callable,
decodes anything.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence

from ..errors import SchemaError
from .database import Relation
from .pool import GLOBAL_POOL
from .terms import Value

Row = tuple[Value, ...]


def _require_same_arity(left: Relation, right: Relation, op: str) -> None:
    if left.arity != right.arity:
        raise SchemaError(
            f"{op}: arities differ ({left.arity} vs {right.arity})")


def _from_coded(arity: int, schema, rows: list) -> Relation:
    """A fresh relation from coded rows that are mutually distinct."""
    result = Relation(arity, schema=schema)
    if rows:
        result.extend_coded(rows)
    return result


def _combined_schema(left: Relation, right: Relation,
                     keep_right: Sequence[int]) -> Optional[tuple]:
    if left.schema is None or right.schema is None:
        return None
    return left.schema + tuple(right.schema[j] for j in keep_right)


def select(relation: Relation,
           predicate: Callable[[Row], bool]) -> Relation:
    """σ: keep rows satisfying an arbitrary predicate.

    The predicate sees decoded values; kept rows are re-emitted as their
    original codes (iteration and ``coded_rows`` share scan order).
    """
    keep = [coded for coded, row in zip(relation.coded_rows(), relation)
            if predicate(row)]
    return _from_coded(relation.arity, relation.schema, keep)


def select_eq(relation: Relation, position: int, value: Value) -> Relation:
    """σ with an equality condition on one 0-based column (index-backed)."""
    if not 0 <= position < relation.arity:
        raise SchemaError(f"column {position} outside 0..{relation.arity - 1}")
    code = GLOBAL_POOL.try_encode(value)
    rows: list = []
    if code is not None:
        bucket = relation.index_on_coded((position,)).get(code)
        if bucket:
            columns = relation.coded_columns()
            rows = [tuple(col[r] for col in columns) for r in bucket]
    return _from_coded(relation.arity, relation.schema, rows)


def project(relation: Relation, positions: Sequence[int]) -> Relation:
    """π: keep (and reorder/duplicate) the 0-based columns given."""
    bad = [i for i in positions if not 0 <= i < relation.arity]
    if bad:
        raise SchemaError(f"columns {bad} outside 0..{relation.arity - 1}")
    schema = None if relation.schema is None else \
        tuple(relation.schema[i] for i in positions)
    # dict.fromkeys deduplicates at C speed while keeping scan order.
    rows = list(dict.fromkeys(
        tuple(row[i] for i in positions) for row in relation.coded_rows()))
    return _from_coded(len(positions), schema, rows)


def union(left: Relation, right: Relation) -> Relation:
    """∪ (set union; arities must match)."""
    _require_same_arity(left, right, "union")
    result = left.copy()
    rows = right.coded_rows()
    if rows:
        seen = set(left.coded_rows())
        result.extend_coded([row for row in rows if row not in seen])
    return result


def difference(left: Relation, right: Relation) -> Relation:
    """− (set difference; arities must match)."""
    _require_same_arity(left, right, "difference")
    drop = set(right.coded_rows())
    keep = [row for row in left.coded_rows() if row not in drop]
    return _from_coded(left.arity, left.schema, keep)


def intersection(left: Relation, right: Relation) -> Relation:
    """∩ (set intersection; arities must match)."""
    _require_same_arity(left, right, "intersection")
    small, large = (left, right) if len(left) <= len(right) else (right, left)
    have = set(large.coded_rows())
    keep = [row for row in small.coded_rows() if row in have]
    return _from_coded(left.arity, left.schema, keep)


def product(left: Relation, right: Relation) -> Relation:
    """× (cartesian product; result arity is the sum)."""
    rrows = right.coded_rows()
    rows = [lrow + rrow for lrow in left.coded_rows() for rrow in rrows]
    return _from_coded(left.arity + right.arity,
                       _combined_schema(left, right, range(right.arity)),
                       rows)


def _join_cols(left: Relation, right: Relation,
               on: Iterable[tuple[int, int]]) -> tuple[tuple, tuple]:
    pairs = list(on)
    left_cols = tuple(i for i, _ in pairs)
    right_cols = tuple(j for _, j in pairs)
    for i in left_cols:
        if not 0 <= i < left.arity:
            raise SchemaError(f"left join column {i} out of range")
    for j in right_cols:
        if not 0 <= j < right.arity:
            raise SchemaError(f"right join column {j} out of range")
    return left_cols, right_cols


def join(left: Relation, right: Relation,
         on: Iterable[tuple[int, int]]) -> Relation:
    """⋈: equi-join on (left column, right column) pairs.

    The result holds all left columns followed by the right columns that
    are *not* join columns, in order — the natural-join convention.
    Probes the right relation's coded hash index; codes flow straight
    from input columns to output columns without decoding.
    """
    left_cols, right_cols = _join_cols(left, right, on)
    if not left_cols:
        return product(left, right)
    keep_right = [j for j in range(right.arity) if j not in set(right_cols)]
    index = right.index_on_coded(right_cols)
    get = index.get
    columns = right.coded_columns()
    keep_cols = [columns[j] for j in keep_right]
    out: list = []
    append = out.append
    single = left_cols[0] if len(left_cols) == 1 else None
    for lrow in left.coded_rows():
        key = lrow[single] if single is not None else \
            tuple(lrow[i] for i in left_cols)
        bucket = get(key)
        if bucket:
            for r in bucket:
                append(lrow + tuple(col[r] for col in keep_cols))
    # Distinct rows join to distinct rows: same left row + same key means
    # the partners differ in a kept column, so no dedup pass is needed.
    return _from_coded(left.arity + len(keep_right),
                       _combined_schema(left, right, keep_right), out)


def semijoin(left: Relation, right: Relation,
             on: Iterable[tuple[int, int]]) -> Relation:
    """⋉: left rows with at least one join partner on the right."""
    left_cols, right_cols = _join_cols(left, right, on)
    index = right.index_on_coded(right_cols)
    single = left_cols[0] if len(left_cols) == 1 else None
    keep = [lrow for lrow in left.coded_rows()
            if (lrow[single] if single is not None else
                tuple(lrow[i] for i in left_cols)) in index]
    return _from_coded(left.arity, left.schema, keep)


def antijoin(left: Relation, right: Relation,
             on: Iterable[tuple[int, int]]) -> Relation:
    """▷: left rows with NO join partner on the right (the negation
    operator the stratified engine realizes as bound anti-joins)."""
    left_cols, right_cols = _join_cols(left, right, on)
    index = right.index_on_coded(right_cols)
    single = left_cols[0] if len(left_cols) == 1 else None
    keep = [lrow for lrow in left.coded_rows()
            if (lrow[single] if single is not None else
                tuple(lrow[i] for i in left_cols)) not in index]
    return _from_coded(left.arity, left.schema, keep)
