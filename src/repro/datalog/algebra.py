"""Relational algebra over :class:`~repro.datalog.database.Relation`.

The engines work through joins compiled from clause bodies; this module
exposes the underlying operators directly — handy for loading/massaging
data around programs, for tests, and as a secondary oracle (the algebra
tests re-derive small clause evaluations with explicit operators).

All operators are functional: inputs are never mutated.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from ..errors import SchemaError
from .database import Relation
from .terms import Value

Row = tuple[Value, ...]


def _require_same_arity(left: Relation, right: Relation, op: str) -> None:
    if left.arity != right.arity:
        raise SchemaError(
            f"{op}: arities differ ({left.arity} vs {right.arity})")


def select(relation: Relation,
           predicate: Callable[[Row], bool]) -> Relation:
    """σ: keep rows satisfying an arbitrary predicate."""
    return Relation(relation.arity,
                    tuples=(row for row in relation if predicate(row)))


def select_eq(relation: Relation, position: int, value: Value) -> Relation:
    """σ with an equality condition on one 0-based column (index-backed)."""
    if not 0 <= position < relation.arity:
        raise SchemaError(f"column {position} outside 0..{relation.arity - 1}")
    pattern: list = [None] * relation.arity
    pattern[position] = value
    return Relation(relation.arity, tuples=relation.match(tuple(pattern)))


def project(relation: Relation, positions: Sequence[int]) -> Relation:
    """π: keep (and reorder/duplicate) the 0-based columns given."""
    bad = [i for i in positions if not 0 <= i < relation.arity]
    if bad:
        raise SchemaError(f"columns {bad} outside 0..{relation.arity - 1}")
    return Relation(len(positions), tuples=(
        tuple(row[i] for i in positions) for row in relation))


def union(left: Relation, right: Relation) -> Relation:
    """∪ (set union; arities must match)."""
    _require_same_arity(left, right, "union")
    result = left.copy()
    result.update(right)
    return result


def difference(left: Relation, right: Relation) -> Relation:
    """− (set difference; arities must match)."""
    _require_same_arity(left, right, "difference")
    return Relation(left.arity,
                    tuples=(row for row in left if row not in right))


def intersection(left: Relation, right: Relation) -> Relation:
    """∩ (set intersection; arities must match)."""
    _require_same_arity(left, right, "intersection")
    small, large = (left, right) if len(left) <= len(right) else (right, left)
    return Relation(left.arity,
                    tuples=(row for row in small if row in large))


def product(left: Relation, right: Relation) -> Relation:
    """× (cartesian product; result arity is the sum)."""
    result = Relation(left.arity + right.arity)
    for lrow in left:
        for rrow in right:
            result.add(lrow + rrow)
    return result


def join(left: Relation, right: Relation,
         on: Iterable[tuple[int, int]]) -> Relation:
    """⋈: equi-join on (left column, right column) pairs.

    The result holds all left columns followed by the right columns that
    are *not* join columns, in order — the natural-join convention.
    Uses the right relation's hash index on its join columns.
    """
    pairs = list(on)
    if not pairs:
        return product(left, right)
    left_cols = tuple(i for i, _ in pairs)
    right_cols = tuple(j for _, j in pairs)
    for i in left_cols:
        if not 0 <= i < left.arity:
            raise SchemaError(f"left join column {i} out of range")
    for j in right_cols:
        if not 0 <= j < right.arity:
            raise SchemaError(f"right join column {j} out of range")
    keep_right = [j for j in range(right.arity) if j not in set(right_cols)]
    index = right.index_on(right_cols)
    result = Relation(left.arity + len(keep_right))
    for lrow in left:
        key = tuple(lrow[i] for i in left_cols)
        for rrow in index.get(key, ()):
            result.add(lrow + tuple(rrow[j] for j in keep_right))
    return result


def semijoin(left: Relation, right: Relation,
             on: Iterable[tuple[int, int]]) -> Relation:
    """⋉: left rows with at least one join partner on the right."""
    pairs = list(on)
    left_cols = tuple(i for i, _ in pairs)
    right_cols = tuple(j for _, j in pairs)
    index = right.index_on(right_cols)
    return Relation(left.arity, tuples=(
        lrow for lrow in left
        if tuple(lrow[i] for i in left_cols) in index))


def antijoin(left: Relation, right: Relation,
             on: Iterable[tuple[int, int]]) -> Relation:
    """▷: left rows with NO join partner on the right (the negation
    operator the stratified engine realizes as bound anti-joins)."""
    pairs = list(on)
    left_cols = tuple(i for i, _ in pairs)
    right_cols = tuple(j for _, j in pairs)
    index = right.index_on(right_cols)
    return Relation(left.arity, tuples=(
        lrow for lrow in left
        if tuple(lrow[i] for i in left_cols) not in index))
