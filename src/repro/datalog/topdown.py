"""Tabled top-down evaluation (OLDT-style) for stratified Datalog.

A third, independently-built evaluation strategy next to bottom-up
(:mod:`repro.datalog.seminaive`) and magic-sets-rewritten bottom-up
(:mod:`repro.optimizer.magic`):

* goals are solved SLD-style, left to right along the same planner order
  the other engines use;
* every IDB subgoal is **tabled** by its call pattern (predicate plus
  bound-argument values), so recursion — including left recursion, fatal
  to plain SLD — terminates;
* tables are filled to fixpoint by re-running the root goal until no
  table grows (the "naive tabling" formulation: simple, clearly correct,
  and an ideal differential oracle; the property tests cross-check it
  against both other engines on random programs).

Stratified negation is supported: a negated subgoal is always ground
when the planner schedules it, and its predicate lives in a strictly
lower stratum, so the engine solves that subgoal to completion with a
nested fixpoint before testing emptiness — the top-down counterpart of
stratum-by-stratum evaluation.
"""

from __future__ import annotations

from time import perf_counter
from typing import Iterator, Optional, Union

from ..errors import SchemaError
from .ast import Atom, Clause, Program
from .database import Database
from .parser import parse_atom, parse_program
from .builtins import builtin_spec
from .safety import order_body
from .terms import Const, Value, Var
from .trace import (EV_TOPDOWN_QUERY, EV_TOPDOWN_ROUND, Tracer,
                    resolve_tracer)

Subgoal = tuple[str, tuple[Optional[Value], ...]]
"""A tabled call: predicate plus per-argument bound value (None = free)."""


def _subgoal_of(atom: Atom, subst: dict[Var, Value]) -> Subgoal:
    pattern = []
    for term in atom.args:
        if isinstance(term, Const):
            pattern.append(term.value)
        else:
            pattern.append(subst.get(term))
    return (atom.pred, tuple(pattern))


class TopDownEngine:
    """Goal-directed tabled evaluation.

    Example:
        >>> engine = TopDownEngine('''
        ...     path(X, Y) :- edge(X, Y).
        ...     path(X, Y) :- path(X, Z), edge(Z, Y).   % left recursion!
        ... ''')
        >>> db = Database.from_facts({"edge": [("a", "b"), ("b", "c")]})
        >>> sorted(engine.query(db, "path(a, Y)"))
        [('a', 'b'), ('a', 'c')]
    """

    def __init__(self, program: Union[str, Program],
                 tracer: Optional[Tracer] = None) -> None:
        if isinstance(program, str):
            program = parse_program(program)
        if program.has_choice() or program.has_id_atoms():
            raise SchemaError(
                "top-down tabling covers plain Datalog; compile choice/ID "
                "constructs away first")
        from .stratify import stratify
        stratify(program)  # stratified negation only
        self.program = program
        #: Optional span-event receiver: each query emits per-round
        #: ``topdown_round`` events plus one ``topdown_query`` summary.
        self.tracer = tracer
        self._plans = {
            id(clause): order_body(clause) for clause in program.clauses}
        # Per-evaluation state (reset by query()).
        self._tables: dict[Subgoal, set[tuple[Value, ...]]] = {}
        self._evaluated: set[Subgoal] = set()
        self._active: set[Subgoal] = set()
        self._changed = False
        self._db: Database = Database()
        self.subgoals_tabled = 0  # instrumentation for benchmarks

    # -- public API ---------------------------------------------------------

    def query(self, db: Database, goal: Union[str, Atom],
              max_rounds: int = 10_000) -> frozenset[tuple]:
        """Solve one goal and return its matching full tuples.

        Args:
            db: The EDB.
            goal: e.g. ``"path(a, Y)"`` — constants restrict the search.
            max_rounds: Guard on the outer fixpoint (each round grows some
                table, so the bound is never hit by terminating programs).
        """
        if isinstance(goal, str):
            goal = parse_atom(goal)
        self._tables = {}
        self._db = db
        self.subgoals_tabled = 0
        root = _subgoal_of(goal, {})
        tracer = resolve_tracer(self.tracer)
        if tracer is not None:
            start = perf_counter()
        rounds = 0
        for _ in range(max_rounds):
            rounds += 1
            self._changed = False
            self._evaluated = set()
            if tracer is not None:
                round_start = perf_counter()
            self._solve_subgoal(root)
            if tracer is not None:
                tracer.emit(
                    EV_TOPDOWN_ROUND, round=rounds,
                    tables=len(self._tables),
                    answers=sum(len(t) for t in self._tables.values()),
                    wall_s=perf_counter() - round_start)
            if not self._changed:
                break
        # The subgoal pattern cannot express a repeated goal variable
        # (e.g. loop(X, X)); filter with full unification.
        answers = frozenset(
            row for row in self._tables.get(root, set())
            if self._match(goal, row, {}) is not None)
        if tracer is not None:
            tracer.emit(
                EV_TOPDOWN_QUERY, goal=str(goal), rounds=rounds,
                subgoals_tabled=self.subgoals_tabled,
                tables=len(self._tables), answers=len(answers),
                wall_s=perf_counter() - start)
        return answers

    # -- tabling core --------------------------------------------------------

    def _solve_subgoal(self, subgoal: Subgoal) -> set[tuple[Value, ...]]:
        """Return (and keep growing) the answer table for a subgoal.

        Tables persist across outer rounds; each subgoal's clauses re-run
        once per round (``_evaluated`` guard).  A cyclic subgoal hit
        mid-evaluation reads its current, possibly partial table — the
        outer fixpoint completes it."""
        first_time = subgoal not in self._tables
        table = self._tables.setdefault(subgoal, set())
        if subgoal in self._evaluated or subgoal in self._active:
            # Already done this round, or currently on the call stack
            # (a cycle): consumers read the table as-is; the enclosing
            # fixpoint completes it.
            return table
        self._evaluated.add(subgoal)
        self._active.add(subgoal)
        if first_time:
            self.subgoals_tabled += 1
        try:
            pred, pattern = subgoal
            if pred not in self.program.head_predicates:
                # EDB: answer directly from the database.
                if pred in self._db:
                    for row in self._db.relation(pred).match(pattern):
                        table.add(row)
                return table

            for clause in self.program.clauses_defining(pred):
                for row in self._solve_clause(clause, pattern):
                    if row not in table:
                        table.add(row)
                        self._changed = True
            return table
        finally:
            self._active.discard(subgoal)

    def _solve_clause(self, clause: Clause,
                      pattern: tuple[Optional[Value], ...],
                      ) -> Iterator[tuple[Value, ...]]:
        subst: dict[Var, Value] = {}
        for term, value in zip(clause.head.args, pattern):
            if value is None:
                continue
            if isinstance(term, Const):
                if term.value != value:
                    return
            else:
                bound = subst.get(term)
                if bound is None:
                    subst[term] = value
                elif bound != value:
                    return
        plan = self._plans[id(clause)]
        for final in self._solve_body(plan, 0, subst):
            yield tuple(
                term.value if isinstance(term, Const) else final[term]
                for term in clause.head.args)

    def _solve_body(self, plan, index: int,
                    subst: dict[Var, Value]) -> Iterator[dict[Var, Value]]:
        if index == len(plan):
            yield subst
            return
        literal = plan[index]
        atom = literal.atom
        assert isinstance(atom, Atom)

        if atom.is_builtin:
            partial = tuple(
                t.value if isinstance(t, Const) else subst.get(t)
                for t in atom.args)
            spec = builtin_spec(atom.pred)
            if literal.positive:
                for solution in spec.solve(partial):
                    extended = self._match(atom, solution, subst)
                    if extended is not None:
                        yield from self._solve_body(plan, index + 1,
                                                    extended)
            else:
                if not any(True for _ in spec.solve(partial)):
                    yield from self._solve_body(plan, index + 1, subst)
            return

        subgoal = _subgoal_of(atom, subst)
        if not literal.positive:
            # The planner grounds negative literals, and stratification
            # puts their predicate strictly below the current one, so the
            # complete answer is computable right now (nested fixpoint).
            if not self._solve_to_completion(subgoal):
                yield from self._solve_body(plan, index + 1, subst)
            return
        answers = self._solve_subgoal(subgoal)
        for row in list(answers):
            extended = self._match(atom, row, subst)
            if extended is not None:
                yield from self._solve_body(plan, index + 1, extended)

    def _solve_to_completion(self, subgoal: Subgoal) -> set[tuple]:
        """Solve one subgoal to its full fixpoint (for negation tests).

        Re-runs the subgoal with fresh per-round evaluation marks until no
        table grows.  Clearing ``_evaluated`` can make enclosing calls
        re-evaluate subgoals later in the same outer round — harmless, the
        tables are monotone."""
        while True:
            before = self._table_sizes()
            self._evaluated = set()
            answers = self._solve_subgoal(subgoal)
            if self._table_sizes() == before:
                return answers

    def _table_sizes(self) -> int:
        return sum(len(t) for t in self._tables.values())

    @staticmethod
    def _match(atom: Atom, row: tuple[Value, ...],
               subst: dict[Var, Value]) -> Optional[dict[Var, Value]]:
        new: dict[Var, Value] = {}
        for term, value in zip(atom.args, row):
            if isinstance(term, Const):
                if term.value != value:
                    return None
            else:
                seen = subst.get(term, new.get(term))
                if seen is None:
                    new[term] = value
                elif seen != value:
                    return None
        if not new:
            return subst
        merged = dict(subst)
        merged.update(new)
        return merged


def query_topdown(program: Union[str, Program], db: Database,
                  goal: Union[str, Atom]) -> frozenset[tuple]:
    """One-shot goal evaluation with a fresh :class:`TopDownEngine`."""
    return TopDownEngine(program).query(db, goal)
