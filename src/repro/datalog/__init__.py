"""Datalog substrate: terms, syntax, parser, storage, and bottom-up engine.

This package is the deterministic foundation the IDLOG core
(:mod:`repro.core`) builds on — exactly the relationship the paper sets up:
IDLOG is DATALOG with negation plus ID-predicates.
"""

from . import algebra
from .arith_defs import (ARITHMETIC_FROM_SUCC, arithmetic_db,
                         defined_arithmetic)
from .ast import Atom, ChoiceAtom, Clause, Literal, Program, fact
from .lint import Finding, lint
from .provenance import Derivation, Explainer, explain_tuple, format_tree
from .builtins import builtin_names, builtin_spec, is_builtin_name
from .database import (Database, Relation, relation_from_csv,
                       relation_to_csv)
from .engine import DatalogEngine, EvalResult
from .executor import (BATCH, ENGINE_MODES, INTERP, BatchExecutor,
                       check_engine_mode)
from .explain import explain_plan, explain_program
from .planner import (COST, GREEDY, PLAN_MODES, ClausePlan, ClausePlanner,
                      LiteralEstimate, check_plan_mode, plan_body)
from .counting import CountingEngine
from .incremental import IncrementalEngine
from .metrics import (COUNT_BUCKETS, TIME_BUCKETS, MetricsRegistry,
                      MetricsTracer, ProgressTracer, log_buckets)
from .storage import directory_stats, load_database, save_database
from .topdown import TopDownEngine, query_topdown
from .graph import DependencyGraph, Edge
from .parser import parse_atom, parse_clause, parse_program
from .pretty import format_clause, to_source
from .safety import check_clause, check_program, order_body
from .sorts import check_database_sorts, format_signatures, infer_signatures
from .seminaive import EvalStats, evaluate, evaluate_naive
from .stratify import Stratification, is_stratified, stratify
from .trace import (EVENT_KINDS, SCHEMA_VERSION, CallbackTracer,
                    ClauseProfile, JsonTracer, NullTracer, Profile,
                    StratumProfile, TeeTracer, TimingTracer, TraceEvent,
                    Tracer, current_tracer, format_profile, use_tracer)
from .terms import (Const, RelationType, Sort, Term, Value, Var,
                    fresh_var_factory, parse_type, sort_of_value)

__all__ = [
    "algebra", "Finding", "lint",
    "Derivation", "Explainer", "explain_tuple", "format_tree",
    "ARITHMETIC_FROM_SUCC", "arithmetic_db", "defined_arithmetic",
    "explain_plan", "explain_program",
    "COST", "GREEDY", "PLAN_MODES", "ClausePlan", "ClausePlanner",
    "LiteralEstimate", "check_plan_mode", "plan_body",
    "CountingEngine", "IncrementalEngine",
    "directory_stats", "load_database", "save_database",
    "COUNT_BUCKETS", "TIME_BUCKETS", "MetricsRegistry", "MetricsTracer",
    "ProgressTracer", "log_buckets",
    "TopDownEngine", "query_topdown",
    "Atom", "ChoiceAtom", "Clause", "Literal", "Program", "fact",
    "builtin_names", "builtin_spec", "is_builtin_name",
    "Database", "Relation", "relation_from_csv", "relation_to_csv",
    "DatalogEngine", "EvalResult",
    "BATCH", "ENGINE_MODES", "INTERP", "BatchExecutor", "check_engine_mode",
    "DependencyGraph", "Edge",
    "parse_atom", "parse_clause", "parse_program",
    "format_clause", "to_source",
    "check_clause", "check_program", "order_body",
    "check_database_sorts", "format_signatures", "infer_signatures",
    "EvalStats", "evaluate", "evaluate_naive",
    "Stratification", "is_stratified", "stratify",
    "EVENT_KINDS", "SCHEMA_VERSION", "CallbackTracer", "ClauseProfile",
    "JsonTracer",
    "NullTracer", "Profile", "StratumProfile", "TeeTracer", "TimingTracer",
    "TraceEvent", "Tracer", "current_tracer", "format_profile",
    "use_tracer",
    "Const", "RelationType", "Sort", "Term", "Value", "Var",
    "fresh_var_factory", "parse_type", "sort_of_value",
]
