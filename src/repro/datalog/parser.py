"""Parser for the textual DATALOG / IDLOG / DATALOG^C syntax.

The surface syntax used throughout this repository mirrors the paper's::

    select_two_emp(Name) :- emp[2](Name, Dept, N), N < 2.
    all_depts(Dept)      :- emp[2](Name, Dept, 0).
    select_emp(Name)     :- emp(Name, Dept), choice((Dept), (Name)).
    man(X)               :- sex_guess[1](X, male, 1).
    p2(X, N)             :- q(X, N), +(L, M, N).
    sum(M)               :- q(N, L), M = N + L.
    odd(N)               :- num(N), mod(N, 2, 1).
    lone(X)              :- node(X), not linked(X).
    emp(ann, toys).

Conventions:

* Variables start with an uppercase letter or ``_``; u-constants are
  lowercase identifiers or quoted strings; i-constants are digit sequences.
* ``p[1,2](...)`` is the ID-version of ``p`` grouped by argument positions
  1 and 2 (1-based); ``p[](...)`` is the ungrouped ``p[∅]``.
* Arithmetic predicates may be written prefix (``+(N, L, M)``) or via the
  infix sugar ``M = N + L``; comparisons are infix (``N < 2``, ``X != Y``).
* ``not`` negates a literal; ``%`` starts a comment running to end of line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from ..errors import ParseError
from .ast import Atom, ChoiceAtom, Clause, Literal, Program
from .terms import Const, Term, Var

_PUNCT = (":-", "<=", ">=", "!=", "(", ")", "[", "]", ",", ".",
          "<", ">", "=", "+", "-", "*", "/", "|")
_ARITH_OPS = frozenset({"+", "-", "*", "/", "mod"})
_COMPARISONS = frozenset({"<", "<=", ">", ">=", "=", "!="})


@dataclass(frozen=True, slots=True)
class _Token:
    kind: str  # 'ident', 'var', 'number', 'string', 'punct', 'eof'
    text: str
    line: int
    column: int


def tokenize(text: str) -> Iterator[_Token]:
    """Yield tokens for ``text``, ending with a single ``eof`` token."""
    line, col = 1, 1
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if ch == "%":
            while i < n and text[i] != "\n":
                i += 1
            continue
        start_col = col
        if ch.isdigit():
            j = i
            while j < n and text[j].isdigit():
                j += 1
            yield _Token("number", text[i:j], line, start_col)
            col += j - i
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            kind = "var" if word[0].isupper() or word[0] == "_" else "ident"
            yield _Token(kind, word, line, start_col)
            col += j - i
            i = j
            continue
        if ch in "'\"":
            quote = ch
            j = i + 1
            chars = []
            while j < n and text[j] != quote:
                if text[j] == "\\" and j + 1 < n:
                    chars.append(text[j + 1])
                    j += 2
                else:
                    chars.append(text[j])
                    j += 1
            if j >= n:
                raise ParseError("unterminated string", line, start_col)
            yield _Token("string", "".join(chars), line, start_col)
            col += j + 1 - i
            i = j + 1
            continue
        matched = None
        for punct in _PUNCT:
            if text.startswith(punct, i):
                matched = punct
                break
        if matched is None:
            raise ParseError(f"unexpected character {ch!r}", line, start_col)
        yield _Token("punct", matched, line, start_col)
        col += len(matched)
        i += len(matched)
    yield _Token("eof", "", line, col)


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, text: str) -> None:
        self._tokens = list(tokenize(text))
        self._pos = 0

    # -- token helpers ----------------------------------------------------

    def _peek(self, ahead: int = 0) -> _Token:
        return self._tokens[min(self._pos + ahead, len(self._tokens) - 1)]

    def _next(self) -> _Token:
        tok = self._tokens[self._pos]
        if tok.kind != "eof":
            self._pos += 1
        return tok

    def _expect(self, kind: str, text: Optional[str] = None) -> _Token:
        tok = self._next()
        if tok.kind != kind or (text is not None and tok.text != text):
            want = text if text is not None else kind
            raise ParseError(
                f"expected {want!r}, got {tok.text or tok.kind!r}",
                tok.line, tok.column)
        return tok

    def _at_punct(self, text: str, ahead: int = 0) -> bool:
        tok = self._peek(ahead)
        return tok.kind == "punct" and tok.text == text

    # -- grammar ----------------------------------------------------------

    def program(self, name: str = "program") -> Program:
        clauses = []
        while self._peek().kind != "eof":
            clauses.append(self.clause())
        return Program(tuple(clauses), name=name)

    def clause(self) -> Clause:
        head = self._atom()
        body: tuple[Literal, ...] = ()
        if self._at_punct(":-"):
            self._next()
            body = tuple(self._body_literals())
        self._expect("punct", ".")
        return Clause(head, body)

    def _body_literals(self) -> Iterator[Literal]:
        while True:
            yield self._literal()
            if self._at_punct(","):
                self._next()
            else:
                return

    def _literal(self) -> Literal:
        if self._peek().kind == "ident" and self._peek().text == "not":
            self._next()
            return Literal(self._body_atom(), positive=False)
        return Literal(self._body_atom(), positive=True)

    @staticmethod
    def _choice_count(name: str) -> Optional[int]:
        """``choice`` -> 1, ``choice2`` -> 2, ...; None for other names."""
        if not name.startswith("choice"):
            return None
        suffix = name[len("choice"):]
        if not suffix:
            return 1
        if suffix.isdigit() and int(suffix) >= 1:
            return int(suffix)
        return None

    def _body_atom(self):
        tok = self._peek()
        if tok.kind == "ident" and self._choice_count(tok.text) is not None \
                and self._at_punct("(", 1) and self._at_punct("(", 2):
            return self._choice_atom()
        starts_atom = (
            (tok.kind == "ident" and (self._at_punct("(", 1) or self._at_punct("[", 1)))
            or (tok.kind == "punct" and tok.text in ("+", "-", "*", "/")
                and self._at_punct("(", 1)))
        if starts_atom:
            return self._atom()
        return self._comparison_or_arith()

    def _choice_atom(self) -> ChoiceAtom:
        tok = self._expect("ident")
        count = self._choice_count(tok.text)
        if count is None:
            raise ParseError(f"expected a choice operator, got {tok.text!r}",
                             tok.line, tok.column)
        self._expect("punct", "(")
        self._expect("punct", "(")
        domain = tuple(self._var_list())
        self._expect("punct", ")")
        self._expect("punct", ",")
        self._expect("punct", "(")
        range_ = tuple(self._var_list())
        self._expect("punct", ")")
        self._expect("punct", ")")
        return ChoiceAtom(domain, range_, count)

    def _var_list(self) -> Iterator[Var]:
        if self._at_punct(")"):
            return
        while True:
            tok = self._expect("var")
            yield Var(tok.text)
            if self._at_punct(","):
                self._next()
            else:
                return

    def _atom(self) -> Atom:
        tok = self._next()
        if tok.kind == "ident" or (tok.kind == "punct"
                                   and tok.text in ("+", "-", "*", "/")):
            name = tok.text
        else:
            raise ParseError(
                f"expected a predicate name, got {tok.text or tok.kind!r}",
                tok.line, tok.column)
        group: Optional[frozenset[int]] = None
        if self._at_punct("["):
            self._next()
            positions = []
            while not self._at_punct("]"):
                num = self._expect("number")
                positions.append(int(num.text))
                if self._at_punct(","):
                    self._next()
            self._expect("punct", "]")
            group = frozenset(positions)
        self._expect("punct", "(")
        args: list[Term] = []
        if not self._at_punct(")"):
            while True:
                args.append(self._term())
                if self._at_punct(","):
                    self._next()
                else:
                    break
        self._expect("punct", ")")
        return Atom(name, tuple(args), group)

    def _term(self) -> Term:
        tok = self._next()
        if tok.kind == "var":
            return Var(tok.text)
        if tok.kind == "number":
            return Const(int(tok.text))
        if tok.kind in ("ident", "string"):
            return Const(tok.text)
        raise ParseError(
            f"expected a term, got {tok.text or tok.kind!r}",
            tok.line, tok.column)

    def _comparison_or_arith(self) -> Atom:
        left = self._term()
        op_tok = self._next()
        if op_tok.kind != "punct" or op_tok.text not in _COMPARISONS:
            raise ParseError(
                f"expected a comparison operator, got "
                f"{op_tok.text or op_tok.kind!r}", op_tok.line, op_tok.column)
        right = self._term()
        if op_tok.text == "=" and (self._at_arith_op()):
            arith = self._next().text
            operand = self._term()
            # M = N + L  desugars to  +(N, L, M)
            return Atom(arith, (right, operand, left))
        return Atom(op_tok.text, (left, right))

    def _at_arith_op(self) -> bool:
        tok = self._peek()
        if tok.kind == "punct" and tok.text in ("+", "-", "*", "/"):
            return True
        return tok.kind == "ident" and tok.text == "mod"


HeadBodyClause = tuple[tuple[Literal, ...], tuple[Literal, ...]]
"""A generalized clause: (head literals, body literals)."""


def parse_head_body_clauses(text: str,
                            head_separator: str = ",",
                            ) -> list[HeadBodyClause]:
    """Parse clauses whose heads are literal *lists*, not single atoms.

    Used by language front ends richer than Datalog: DL heads are
    conjunctions (``,``-separated, possibly with invented values),
    N-DATALOG heads may contain negative literals (deletions), and
    DATALOG^∨ heads are disjunctions (``|``-separated).  The caller chooses
    the separator; bodies use the ordinary literal syntax.

    Returns:
        One (heads, body) pair per clause; ``body`` is empty for facts.
    """
    parser = _Parser(text)
    clauses: list[HeadBodyClause] = []
    while parser._peek().kind != "eof":
        heads = [parser._literal()]
        while parser._at_punct(head_separator):
            parser._next()
            heads.append(parser._literal())
        body: tuple[Literal, ...] = ()
        if parser._at_punct(":-"):
            parser._next()
            body = tuple(parser._body_literals())
        parser._expect("punct", ".")
        clauses.append((tuple(heads), body))
    return clauses


def parse_program(text: str, name: str = "program") -> Program:
    """Parse a full program from source text.

    Raises:
        ParseError: on any lexical or syntactic error, with location info.
    """
    return _Parser(text).program(name)


def parse_clause(text: str) -> Clause:
    """Parse a single clause (must consume the entire input)."""
    parser = _Parser(text)
    clause = parser.clause()
    trailing = parser._peek()
    if trailing.kind != "eof":
        raise ParseError("trailing input after clause",
                         trailing.line, trailing.column)
    return clause


def parse_atom(text: str) -> Atom:
    """Parse a single atom (must consume the entire input)."""
    parser = _Parser(text)
    atom = parser._atom()
    trailing = parser._peek()
    if trailing.kind != "eof":
        raise ParseError("trailing input after atom",
                         trailing.line, trailing.column)
    return atom
