"""A linter for programs: likely mistakes and §4 optimization hints.

Checks are advisory — none of them rejects a program — and each finding
carries a code, a location (clause), and a message:

* ``W01 singleton-variable`` — a variable used once in a clause (often a
  typo; legitimate singletons are exactly the §4 existential arguments,
  which is why the linter pairs this with H01);
* ``W02 unused-predicate`` — defined but never read;
* ``W03 undefined-predicate`` — read but never defined and capitalized
  suspiciously like a typo of a defined one (edit distance 1);
* ``W04 duplicate-clause`` — a clause repeated verbatim;
* ``W05 constant-only-clause`` — a rule whose head is ground (usually
  meant to be a fact);
* ``H01 existential-argument`` — the adornment algorithm found an
  ∃-existential argument w.r.t. some output predicate: the ID-literal
  rewrite of §4 applies (`repro.optimizer.optimize`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from .ast import Atom, Clause, Program
from .parser import parse_program
from .terms import Var


@dataclass(frozen=True)
class Finding:
    """One lint finding.

    Attributes:
        code: Stable identifier (W = warning, H = optimization hint).
        clause: The clause concerned (None for program-level findings).
        message: Human-readable description.
    """

    code: str
    message: str
    clause: Union[Clause, None] = None

    def __str__(self) -> str:
        location = f" in `{self.clause}`" if self.clause is not None else ""
        return f"{self.code}: {self.message}{location}"


def _edit_distance_one(a: str, b: str) -> bool:
    if a == b:
        return False
    if abs(len(a) - len(b)) > 1:
        return False
    if len(a) == len(b):
        return sum(x != y for x, y in zip(a, b)) == 1
    short, long_ = (a, b) if len(a) < len(b) else (b, a)
    for i in range(len(long_)):
        if long_[:i] + long_[i + 1:] == short:
            return True
    return False


def _variable_counts(clause: Clause) -> dict[Var, int]:
    counts: dict[Var, int] = {}
    atoms = [clause.head] + [lit.atom for lit in clause.body
                             if isinstance(lit.atom, Atom)]
    for atom in atoms:
        for term in atom.args:
            if isinstance(term, Var):
                counts[term] = counts.get(term, 0) + 1
    return counts


def lint(program: Union[str, Program],
         hints: bool = True) -> list[Finding]:
    """Run every check; returns findings in a stable order.

    Args:
        program: Source text or a parsed program.
        hints: Include the H-series optimization hints (requires the
            program to be analyzable by the adornment algorithm).
    """
    if isinstance(program, str):
        program = parse_program(program)
    findings: list[Finding] = []

    # W01: singleton variables (skip the `_`-prefixed convention).
    for clause in program.clauses:
        for var, count in sorted(_variable_counts(clause).items(),
                                 key=lambda kv: kv[0].name):
            if count == 1 and not var.name.startswith("_"):
                findings.append(Finding(
                    "W01",
                    f"variable {var.name} occurs only once "
                    "(typo? prefix with _ if intentional)", clause))

    # W02: defined but never read.
    read = program.body_predicates
    for pred in sorted(program.head_predicates - read):
        findings.append(Finding(
            "W02", f"predicate {pred} is defined but never read "
            "(fine if it is the query)"))

    # W03: likely-misspelled input predicates.
    defined = program.head_predicates
    for pred in sorted(program.input_predicates):
        for candidate in sorted(defined):
            if _edit_distance_one(pred, candidate):
                findings.append(Finding(
                    "W03", f"predicate {pred} is never defined — did you "
                    f"mean {candidate}?"))

    # W04: duplicate clauses.
    seen: set[str] = set()
    for clause in program.clauses:
        rendered = str(clause)
        if rendered in seen:
            findings.append(Finding("W04", "duplicate clause", clause))
        seen.add(rendered)

    # W05: ground-headed rules.
    for clause in program.clauses:
        if clause.body and not clause.head.vars \
                and not any(lit.vars for lit in clause.body):
            findings.append(Finding(
                "W05", "rule with no variables at all "
                "(did you mean a fact?)", clause))

    # H01: §4 existential arguments.
    if hints and not program.has_choice() and not program.has_id_atoms():
        from ..optimizer.adornment import detect_existential
        from ..errors import ReproError
        for query in sorted(program.head_predicates - read or
                            program.head_predicates):
            try:
                result = detect_existential(program, query)
            except ReproError:
                continue
            for pred in sorted(result.marks):
                positions = result.existential_positions(pred)
                if positions:
                    findings.append(Finding(
                        "H01",
                        f"argument(s) {list(positions)} of {pred} are "
                        f"existential w.r.t. {query}: the §4 ID-literal "
                        "rewrite applies (repro.optimizer.optimize)"))
    return findings
