"""High-level facade for plain (deterministic) Datalog evaluation.

:class:`DatalogEngine` bundles the pipeline parse → validate (safety,
stratification, no choice / ID constructs) → evaluate, and exposes simple
query helpers.  Programs with ID-atoms belong to :mod:`repro.core`; programs
with choice operators to :mod:`repro.choice`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from ..errors import SchemaError
from .ast import Program
from .database import Database, Relation
from .executor import BATCH, check_engine_mode
from .parser import parse_program
from .planner import check_plan_mode
from .safety import check_program
from .seminaive import EvalStats, evaluate
from .stratify import Stratification, stratify


@dataclass(frozen=True)
class EvalResult:
    """Outcome of a Datalog evaluation.

    Attributes:
        database: All relations after the fixpoint (EDB and IDB).
        stats: Instrumentation counters.
        id_relations: For IDLOG evaluations, the materialized ID-relation
            per (predicate, grouping) — the concrete tid assignment this
            model used (empty for plain Datalog).
    """

    database: Database
    stats: EvalStats
    id_relations: dict = field(default_factory=dict)

    def relation(self, pred: str) -> Relation:
        """The computed relation for ``pred``."""
        return self.database.relation(pred)

    def tuples(self, pred: str) -> frozenset[tuple]:
        """The computed tuples for ``pred`` as a frozenset."""
        return self.database.relation(pred).frozen()


class DatalogEngine:
    """Deterministic Datalog-with-negation engine.

    Example:
        >>> engine = DatalogEngine('''
        ...     path(X, Y) :- edge(X, Y).
        ...     path(X, Y) :- edge(X, Z), path(Z, Y).
        ... ''')
        >>> db = Database.from_facts({"edge": [("a", "b"), ("b", "c")]})
        >>> sorted(engine.query(db, "path"))
        [('a', 'b'), ('a', 'c'), ('b', 'c')]

    Args:
        program: Source text or a parsed :class:`Program`.
        name: Program name used in diagnostics when parsing source text.
        plan: Body-literal planning mode — ``"greedy"`` (purely syntactic)
            or ``"cost"`` (cardinality-aware, see
            :mod:`repro.datalog.planner`).
        engine: Execution engine — ``"batch"`` (compiled set-oriented join
            pipelines, see :mod:`repro.datalog.executor`) or ``"interp"``
            (tuple-at-a-time reference interpreter).
        tracer: Optional span-event receiver (see
            :mod:`repro.datalog.trace`); every :meth:`run` emits
            eval/stratum/clause spans to it.  Defaults to the ambient
            tracer installed by :func:`repro.datalog.trace.use_tracer`.
    """

    def __init__(self, program: Union[str, Program],
                 name: str = "program", plan: str = "greedy",
                 engine: str = BATCH, tracer=None) -> None:
        if isinstance(program, str):
            program = parse_program(program, name=name)
        if program.has_choice():
            raise SchemaError(
                "program uses the choice operator; use repro.choice")
        if program.has_id_atoms():
            raise SchemaError(
                "program uses ID-atoms; use the IDLOG engine (repro.core)")
        check_program(program)
        self.program = program
        self.plan = check_plan_mode(plan)
        self.engine = check_engine_mode(engine)
        self.tracer = tracer
        self.stratification: Stratification = stratify(program)

    def run(self, db: Database,
            max_iterations: int | None = None) -> EvalResult:
        """Evaluate the program on ``db`` and return all relations.

        Args:
            db: The input database.
            max_iterations: Optional per-stratum fixpoint-round guard; a
                program whose arithmetic diverges raises
                :class:`~repro.errors.EvaluationError` instead of looping.
        """
        database, stats = evaluate(
            self.program, db, stratification=self.stratification,
            max_iterations=max_iterations, plan=self.plan,
            engine=self.engine, tracer=self.tracer)
        return EvalResult(database, stats)

    def query(self, db: Database, pred: str) -> frozenset[tuple]:
        """Evaluate and return the tuples of one output predicate."""
        return self.run(db).tuples(pred)
