"""Bottom-up evaluation: naive and semi-naive fixpoints over strata.

For stratified programs the stratum-by-stratum least fixpoint computes the
unique perfect model (Przymusinski 1988), which is the semantics the paper
builds IDLOG on (Theorem 1).  The evaluator is parameterized by an
:class:`IdProvider` so the IDLOG engine (:mod:`repro.core.engine`) can supply
materialized ID-relations; plain Datalog evaluation passes no provider and
rejects ID-atoms.

Instrumentation is first-class: every evaluation fills an :class:`EvalStats`
with tuples derived per predicate, clause firings, and join probes — the
quantities the Section 4 optimization experiments report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Iterator, Optional, Protocol

from ..errors import EvaluationError
from .ast import Atom, Clause, Literal, Program
from .builtins import builtin_spec
from .database import CodedDelta, Database, Relation
from .executor import BATCH, BatchExecutor, check_engine_mode
from .planner import ClausePlanner
from .pretty import format_clause
from .safety import order_body
from .stratify import Stratification, stratify
from .terms import Const, Value, Var
from .trace import (EV_CLAUSE_FIRE, EV_EVAL_END, EV_EVAL_START, EV_ROUND,
                    EV_STRATUM_END, EV_STRATUM_START, Tracer, resolve_tracer)


@dataclass
class EvalStats:
    """Counters collected during one evaluation.

    Attributes:
        derived: New tuples added per predicate (derivations minus dups).
        firings: Successful clause instantiations (head tuples produced,
            counting duplicates).
        probes: Tuples scanned/probed while joining body literals; every
            relation lookup costs at least one probe, so an index probe
            that finds an empty bucket (or a scan of an empty relation)
            still counts — greedy-vs-cost plan comparisons stay
            apples-to-apples.
        iterations: Fixpoint rounds summed over all strata.
        id_tuples: Tuples materialized into ID-relations.
        plans_built: Clause plans compiled (or re-costed) by the planner.
        plans_reused: Cache hits on previously compiled clause plans.
        pipelines_compiled: Batch pipelines compiled by the batch executor
            (zero under ``engine="interp"``).
        pipelines_reused: Cache hits on previously compiled pipelines.

    The probe counter is engine-independent by construction: the batch
    executor charges one probe per bucket row touched on the probe side
    with a floor of one per lookup — the same quantity the interpreter
    counts and the planner estimates — so interp and batch runs of the
    same plan report *equal* probes (asserted by the differential tests).
    """

    derived: dict[str, int] = field(default_factory=dict)
    firings: int = 0
    probes: int = 0
    iterations: int = 0
    id_tuples: int = 0
    plans_built: int = 0
    plans_reused: int = 0
    pipelines_compiled: int = 0
    pipelines_reused: int = 0

    @property
    def total_derived(self) -> int:
        """Total new tuples across all predicates."""
        return sum(self.derived.values())

    def count_derived(self, pred: str, n: int = 1) -> None:
        """Record ``n`` new tuples for ``pred``."""
        self.derived[pred] = self.derived.get(pred, 0) + n

    def merge(self, other: "EvalStats") -> None:
        """Fold another stats object into this one."""
        for pred, n in other.derived.items():
            self.count_derived(pred, n)
        self.firings += other.firings
        self.probes += other.probes
        self.iterations += other.iterations
        self.id_tuples += other.id_tuples
        self.plans_built += other.plans_built
        self.plans_reused += other.plans_reused
        self.pipelines_compiled += other.pipelines_compiled
        self.pipelines_reused += other.pipelines_reused


class IdProvider(Protocol):
    """Supplier of materialized ID-relations.

    Called at most once per (predicate, grouping) per evaluation; the result
    is cached by the :class:`RelationStore`.
    """

    def materialize(self, pred: str, group: frozenset[int],
                    base: Relation, stats: EvalStats) -> Relation:
        """Return the ID-relation of ``base`` on ``group``."""
        ...


class _NoIdProvider:
    """Default provider: plain Datalog rejects ID-atoms."""

    def materialize(self, pred: str, group: frozenset[int],
                    base: Relation, stats: EvalStats) -> Relation:
        raise EvaluationError(
            f"program uses ID-predicate {pred}[{sorted(group)}] but no "
            "ID-provider was supplied; use the IDLOG engine "
            "(repro.core) for programs with ID-atoms")


class RelationStore:
    """All relations visible during evaluation, plus the ID-relation cache."""

    def __init__(self, id_provider: Optional[IdProvider],
                 stats: EvalStats) -> None:
        self._relations: dict[str, Relation] = {}
        self._id_cache: dict[tuple[str, frozenset[int]], Relation] = {}
        self._id_provider = id_provider or _NoIdProvider()
        self._stats = stats

    def install(self, name: str, relation: Relation) -> None:
        """Make ``relation`` visible as ``name``."""
        self._relations[name] = relation

    def relation(self, name: str) -> Relation:
        """The current relation for ``name`` (KeyError if absent)."""
        return self._relations[name]

    def id_relation(self, pred: str, group: frozenset[int]) -> Relation:
        """The (cached) ID-relation of ``pred`` on ``group``."""
        key = (pred, group)
        cached = self._id_cache.get(key)
        if cached is None:
            base = self._relations[pred]
            cached = self._id_provider.materialize(
                pred, group, base, self._stats)
            self._id_cache[key] = cached
        return cached

    def resolve(self, atom: Atom) -> Relation:
        """The relation an atom reads from (ID-relations materialized lazily)."""
        if atom.is_id:
            return self.id_relation(atom.pred, atom.group)
        return self._relations[atom.pred]

    def base_relation(self, name: str) -> Optional[Relation]:
        """The stored base relation for ``name``, or None when absent.

        The planner's statistics resolver: cost estimation reads base
        relations only and never triggers ID-relation materialization.
        """
        return self._relations.get(name)

    def as_database(self, udomain: frozenset[str]) -> Database:
        """Snapshot the store as a database."""
        return Database(dict(self._relations), udomain)

    def memory_stats(self) -> dict:
        """Totals over everything the evaluation holds in memory.

        Covers the visible relations *and* the materialized ID-relation
        cache (which lives only in the store — ``as_database`` does not
        export it), so this is the evaluation's real resident footprint.
        """
        relation_stats = [r.memory_stats()
                          for r in self._relations.values()]
        id_stats = [r.memory_stats() for r in self._id_cache.values()]
        return {
            "relations": len(relation_stats),
            "total_rows": sum(s["rows"] for s in relation_stats),
            "id_relations": len(id_stats),
            "id_rows": sum(s["rows"] for s in id_stats),
            "total_approx_bytes": sum(
                s["approx_bytes"] for s in relation_stats + id_stats),
        }


Substitution = dict[Var, Value]


def _match_args(args: tuple, row: tuple[Value, ...],
                subst: Substitution) -> Optional[Substitution]:
    """Extend ``subst`` so that ``args`` matches ``row``; None on clash."""
    new_bindings: Substitution = {}
    for term, value in zip(args, row):
        if isinstance(term, Const):
            if term.value != value:
                return None
        else:
            seen = subst.get(term, new_bindings.get(term))
            if seen is None:
                new_bindings[term] = value
            elif seen != value:
                return None
    if not new_bindings:
        return subst
    merged = dict(subst)
    merged.update(new_bindings)
    return merged


def _ground_args(args: tuple, subst: Substitution) -> tuple:
    """Instantiate args to values/None under ``subst`` (None = unbound)."""
    out = []
    for term in args:
        if isinstance(term, Const):
            out.append(term.value)
        else:
            out.append(subst.get(term))
    return tuple(out)


def _solve_literals(order: tuple[Literal, ...], index: int,
                    subst: Substitution, store: RelationStore,
                    stats: EvalStats,
                    overrides: dict[int, Relation]) -> Iterator[Substitution]:
    """Recursively enumerate substitutions satisfying ``order[index:]``.

    ``overrides`` maps positions in ``order`` to replacement relations —
    the mechanism by which semi-naive evaluation substitutes a delta for one
    occurrence of a recursive predicate.
    """
    if index == len(order):
        yield subst
        return
    literal = order[index]
    atom = literal.atom
    assert isinstance(atom, Atom)

    if atom.is_builtin:
        partial = _ground_args(atom.args, subst)
        spec = builtin_spec(atom.pred)
        if literal.positive:
            solved = False
            for solution in spec.solve(partial):
                solved = True
                stats.probes += 1
                extended = _match_args(atom.args, solution, subst)
                if extended is not None:
                    yield from _solve_literals(
                        order, index + 1, extended, store, stats, overrides)
            if not solved:
                stats.probes += 1
        else:
            if None in partial:
                raise EvaluationError(
                    f"negated builtin {atom} evaluated with unbound arguments")
            stats.probes += 1
            if not any(True for _ in spec.solve(partial)):
                yield from _solve_literals(
                    order, index + 1, subst, store, stats, overrides)
        return

    relation = overrides.get(index)
    if relation is None:
        relation = store.resolve(atom)

    if literal.positive:
        pattern = _ground_args(atom.args, subst)
        # Every lookup costs at least one probe: a full scan counts each
        # scanned row, an index probe counts each bucket row, and an empty
        # result still counts the lookup itself — so plans that do many
        # fruitless probes are not reported as free.
        yielded = False
        for row in relation.match(pattern):
            yielded = True
            stats.probes += 1
            extended = _match_args(atom.args, row, subst)
            if extended is not None:
                yield from _solve_literals(
                    order, index + 1, extended, store, stats, overrides)
        if not yielded:
            stats.probes += 1
    else:
        row = _ground_args(atom.args, subst)
        if None in row:
            raise EvaluationError(
                f"negated literal {atom} evaluated with unbound variables")
        stats.probes += 1
        if tuple(row) not in relation:
            yield from _solve_literals(
                order, index + 1, subst, store, stats, overrides)


def _head_tuple(clause: Clause, subst: Substitution) -> tuple[Value, ...]:
    row = []
    for term in clause.head.args:
        if isinstance(term, Const):
            row.append(term.value)
        else:
            row.append(subst[term])
    return tuple(row)


def evaluate_clause(clause: Clause, store: RelationStore, stats: EvalStats,
                    delta_index: Optional[int] = None,
                    delta: Optional[Relation] = None,
                    planner: Optional[ClausePlanner] = None,
                    ) -> Iterator[tuple]:
    """Yield head tuples derivable from one clause.

    When ``delta_index``/``delta`` are given, the body literal at that
    position (in source order) reads ``delta`` instead of its full relation,
    and is scheduled first (semi-naive variant).  With a ``planner`` the
    literal order comes from its compiled-plan cache (greedy or cost-based);
    without one, the syntactic greedy order is re-derived on every call.
    """
    if planner is not None:
        order = planner.order(clause, store.base_relation,
                              delta_index=delta_index, stats=stats)
    else:
        first: Optional[Literal] = None
        if delta_index is not None:
            first = clause.body[delta_index]
        order = order_body(clause, first=first)
    overrides: dict[int, Relation] = {}
    if delta_index is not None and delta is not None:
        # ``first`` landed at position 0 of the ordering.
        overrides[0] = delta
    for subst in _solve_literals(order, 0, {}, store, stats, overrides):
        stats.firings += 1
        yield _head_tuple(clause, subst)


def _recursive_positions(clause: Clause,
                         in_stratum: frozenset[str]) -> list[int]:
    """Source positions of positive in-stratum relation literals."""
    positions = []
    for i, literal in enumerate(clause.body):
        atom = literal.atom
        if isinstance(atom, Atom) and literal.positive and not atom.is_builtin \
                and not atom.is_id and atom.pred in in_stratum:
            positions.append(i)
    return positions


def evaluate_stratum(clauses: tuple[Clause, ...], heads: frozenset[str],
                     store: RelationStore, stats: EvalStats,
                     max_iterations: Optional[int] = None,
                     planner: Optional[ClausePlanner] = None,
                     executor: Optional[BatchExecutor] = None,
                     tracer: Optional[Tracer] = None,
                     stratum: int = 0) -> None:
    """Run the least fixpoint of one stratum in place.

    ``heads`` is the set of predicates defined in this stratum; relations for
    them must already be installed in ``store`` (possibly empty).

    Args:
        max_iterations: Optional guard against diverging fixpoints (programs
            whose arithmetic derives unboundedly many facts, e.g.
            ``times(0, M, 0)`` for every M); when exceeded an
            :class:`EvaluationError` is raised instead of looping forever.
        planner: Optional shared plan cache (and plan-mode selector);
            fixpoint rounds then reuse compiled per-(clause, delta-position)
            plans instead of re-deriving the literal order every round.
        executor: Optional shared :class:`BatchExecutor`; clauses then run
            as compiled batch pipelines instead of the tuple-at-a-time
            interpreter (same answers, same counters, less constant cost).
        tracer: Optional span-event receiver (see
            :mod:`repro.datalog.trace`); ``None`` keeps the hot path
            completely uninstrumented.
        stratum: Stratum index carried on emitted events.
    """
    deltas: dict[str, Relation] = {}
    if tracer is not None:
        if planner is not None:
            planner.stratum = stratum
        if executor is not None:
            executor.stratum = stratum
        stratum_start = perf_counter()
        tracer.emit(EV_STRATUM_START, stratum=stratum,
                    heads=tuple(sorted(heads)))

    # With a batch executor the whole derive->merge->delta loop stays in
    # code space: pipelines emit coded head rows, an evaluation-scoped
    # `seen` set per head predicate dedups them at C speed, and both the
    # relation and the delta take the fresh rows as plain column appends
    # (no membership structure, no per-row probe).  The seen sets are the
    # classic space-for-time working state of a bulk load: they live only
    # for this stratum's fixpoint, so the *resident* footprint after
    # evaluation is the columnar one.  The interpreter path below it is
    # untouched value-level storage — that is what makes it the
    # differential oracle.
    coded = executor is not None
    seen_sets: dict[str, set] = {}

    def derive(clause: Clause, delta_index: Optional[int] = None,
               delta: Optional[Relation] = None) -> list[tuple]:
        if coded:
            return executor.execute_coded(clause, store, stats,
                                          delta_index=delta_index,
                                          delta=delta, planner=planner)
        return list(evaluate_clause(clause, store, stats,
                                    delta_index=delta_index, delta=delta,
                                    planner=planner))

    def emit(pred: str, rows: list) -> int:
        if not rows:
            return 0
        relation = store.relation(pred)
        if coded:
            seen = seen_sets.get(pred)
            if seen is None:
                seen = seen_sets[pred] = set(relation.coded_rows())
            # seen.add returns None, so the `is None` arm both records the
            # row and keeps it — a single C-speed pass that preserves
            # first-derivation order (ordering must stay deterministic:
            # downstream ID choices consume rows in derivation order).
            add = seen.add
            fresh = [row for row in rows
                     if row not in seen and add(row) is None]
            if not fresh:
                return 0
            relation.extend_coded(fresh)
            stats.count_derived(pred, len(fresh))
            delta = deltas.get(pred)
            if delta is None:
                deltas[pred] = fresh
            else:
                delta.extend(fresh)
            return len(fresh)
        fresh = relation.merge_rows(rows)
        if not fresh:
            return 0
        stats.count_derived(pred, len(fresh))
        delta = deltas.get(pred)
        if delta is None:
            delta = Relation(relation.arity)
            deltas[pred] = delta
        delta.merge_rows(fresh)
        return len(fresh)

    clause_text: dict[int, str] = {}  # format once per clause, not per fire

    def fire(clause: Clause, round_no: int,
             delta_index: Optional[int] = None,
             delta: Optional[Relation] = None) -> None:
        if tracer is None:
            emit(clause.head.pred, derive(clause, delta_index, delta))
            return
        probes_before = stats.probes
        firings_before = stats.firings
        start = perf_counter()
        rows = derive(clause, delta_index, delta)
        wall_s = perf_counter() - start
        new = emit(clause.head.pred, rows)
        text = clause_text.get(id(clause))
        if text is None:
            text = clause_text[id(clause)] = format_clause(clause)
        tracer.emit(EV_CLAUSE_FIRE, clause=text,
                    stratum=stratum, round=round_no,
                    delta_index=delta_index, wall_s=wall_s,
                    probes=stats.probes - probes_before,
                    firings=stats.firings - firings_before,
                    new=new,
                    delta_size=len(delta) if delta is not None else None,
                    stages=executor.last_stages if coded else None)

    # Round 0: naive pass over every clause.  Derivations are buffered per
    # clause so a recursive clause never mutates a relation it is scanning.
    stats.iterations += 1
    for clause in clauses:
        fire(clause, 0)

    recursive = [(c, _recursive_positions(c, heads)) for c in clauses]
    recursive = [(c, ps) for c, ps in recursive if ps]

    if coded and recursive:
        # Indexes built on head relations during the naive pass would be
        # maintained on every delta-round append; drop them once — a
        # delta round that actually probes a head relation rebuilds its
        # index and extend_coded maintains it from then on.
        for pred in heads:
            store.relation(pred).drop_indexes()

    rounds = 0
    if recursive:
        while deltas:
            rounds += 1
            if max_iterations is not None and rounds > max_iterations:
                raise EvaluationError(
                    f"stratum did not reach a fixpoint within "
                    f"{max_iterations} rounds; the program may derive "
                    "unboundedly many facts through arithmetic")
            stats.iterations += 1
            previous, deltas = deltas, {}
            if coded:
                # Wrap each pred's fresh-row list once per round so every
                # clause consuming it shares lazily-built columns/indexes.
                previous = {pred: CodedDelta(rows)
                            for pred, rows in previous.items()}
            if tracer is not None:
                tracer.emit(EV_ROUND, stratum=stratum, round=rounds,
                            deltas={p: len(r) for p, r in previous.items()})
            for clause, positions in recursive:
                for position in positions:
                    pred = clause.body[position].atom.pred
                    delta = previous.get(pred)
                    if delta is None or not len(delta):
                        continue
                    fire(clause, rounds, delta_index=position, delta=delta)

    if tracer is not None:
        tracer.emit(
            EV_STRATUM_END, stratum=stratum, rounds=rounds + 1,
            wall_s=perf_counter() - stratum_start,
            cardinalities={pred: len(store.relation(pred))
                           for pred in sorted(heads)})


def prepare_store(program: Program, db: Database,
                  id_provider: Optional[IdProvider],
                  stats: EvalStats) -> RelationStore:
    """Install EDB relations and empty IDB relations for an evaluation.

    IDB relations that also have facts in ``db`` start from a copy of those
    facts (this is how the paper's database programs ``dbp(P, q, r)`` inline
    input facts as clauses).
    """
    store = RelationStore(id_provider, stats)
    heads = program.head_predicates
    for name in program.predicates:
        arity = program.arity(name)
        if name in heads:
            if name in db:
                store.install(name, db.relation(name).copy())
            else:
                store.install(name, Relation(arity))
        else:
            if name in db:
                relation = db.relation(name)
                if relation.arity != arity:
                    raise EvaluationError(
                        f"relation {name} has arity {relation.arity}, the "
                        f"program uses it with arity {arity}")
                store.install(name, relation)
            else:
                store.install(name, Relation(arity))
    return store


def evaluate(program: Program, db: Database,
             id_provider: Optional[IdProvider] = None,
             stratification: Optional[Stratification] = None,
             max_iterations: Optional[int] = None,
             plan: str = "greedy",
             engine: str = BATCH,
             tracer: Optional[Tracer] = None,
             ) -> tuple[Database, EvalStats]:
    """Evaluate a stratified program bottom-up (semi-naive).

    Args:
        program: The program; must be safe and stratified.
        db: Input database supplying the EDB relations.
        id_provider: Supplier of ID-relations (required iff the program uses
            ID-atoms).
        stratification: Optional precomputed stratification.
        max_iterations: Optional per-stratum round guard against diverging
            fixpoints (see :func:`evaluate_stratum`).
        plan: ``"greedy"`` (the syntactic body order) or ``"cost"``
            (cardinality-aware ordering, see :mod:`repro.datalog.planner`).
        engine: ``"batch"`` (compiled set-oriented join pipelines, see
            :mod:`repro.datalog.executor`) or ``"interp"`` (the
            tuple-at-a-time reference interpreter).  Both produce identical
            relations and identical counters; ``interp`` is kept as the
            differential oracle.
        tracer: Optional span-event receiver (see
            :mod:`repro.datalog.trace`); defaults to the ambient tracer
            installed by :func:`repro.datalog.trace.use_tracer`, else none.

    Returns:
        The database of all relations (EDB views plus computed IDB) and the
        evaluation statistics.
    """
    check_engine_mode(engine)
    tracer = resolve_tracer(tracer)
    strat = stratification or stratify(program)
    stats = EvalStats()
    store = prepare_store(program, db, id_provider, stats)
    planner = ClausePlanner(plan, tracer=tracer)
    executor = BatchExecutor(tracer=tracer) if engine == BATCH else None
    heads = program.head_predicates
    if tracer is not None:
        start = perf_counter()
        tracer.emit(EV_EVAL_START, program=program.name, plan=plan,
                    engine=engine, strata=strat.depth)
    for level, stratum in enumerate(strat.strata):
        stratum_heads = frozenset(stratum & heads)
        clauses = tuple(c for c in program.clauses
                        if c.head.pred in stratum_heads)
        if clauses:
            evaluate_stratum(clauses, stratum_heads, store, stats,
                             max_iterations, planner=planner,
                             executor=executor, tracer=tracer,
                             stratum=level)
    if tracer is not None:
        tracer.emit(EV_EVAL_END, program=program.name,
                    wall_s=perf_counter() - start,
                    derived=stats.total_derived, probes=stats.probes,
                    firings=stats.firings, iterations=stats.iterations)
    return store.as_database(db.udomain | program.u_constants()), stats


def evaluate_naive(program: Program, db: Database,
                   id_provider: Optional[IdProvider] = None,
                   plan: str = "greedy",
                   engine: str = BATCH,
                   tracer: Optional[Tracer] = None,
                   ) -> tuple[Database, EvalStats]:
    """Naive-iteration evaluation (reference implementation for tests).

    Repeats full passes over each stratum's clauses until nothing new is
    derived.  Slower than :func:`evaluate` but trivially correct; the test
    suite cross-checks the two on random programs.
    """
    check_engine_mode(engine)
    tracer = resolve_tracer(tracer)
    strat = stratify(program)
    stats = EvalStats()
    store = prepare_store(program, db, id_provider, stats)
    planner = ClausePlanner(plan, tracer=tracer)
    executor = BatchExecutor(tracer=tracer) if engine == BATCH else None
    heads = program.head_predicates
    if tracer is not None:
        start = perf_counter()
        tracer.emit(EV_EVAL_START, program=program.name, plan=plan,
                    engine=engine, strata=strat.depth, naive=True)
    for level, stratum in enumerate(strat.strata):
        stratum_heads = frozenset(stratum & heads)
        clauses = tuple(c for c in program.clauses
                        if c.head.pred in stratum_heads)
        if not clauses:
            continue
        if tracer is not None:
            planner.stratum = level
            if executor is not None:
                executor.stratum = level
            stratum_start = perf_counter()
            tracer.emit(EV_STRATUM_START, stratum=level,
                        heads=tuple(sorted(stratum_heads)))
        changed = True
        rounds = 0
        while changed:
            changed = False
            rounds += 1
            stats.iterations += 1
            for clause in clauses:
                if tracer is not None:
                    probes_before = stats.probes
                    firings_before = stats.firings
                    clause_start = perf_counter()
                if executor is not None:
                    rows = executor.execute(clause, store, stats,
                                            planner=planner)
                else:
                    rows = list(evaluate_clause(clause, store, stats,
                                                planner=planner))
                new = 0
                for row in rows:
                    if store.relation(clause.head.pred).add(row):
                        stats.count_derived(clause.head.pred)
                        new += 1
                        changed = True
                if tracer is not None:
                    tracer.emit(
                        EV_CLAUSE_FIRE, clause=format_clause(clause),
                        stratum=level, round=rounds - 1, delta_index=None,
                        wall_s=perf_counter() - clause_start,
                        probes=stats.probes - probes_before,
                        firings=stats.firings - firings_before,
                        new=new, delta_size=None,
                        stages=executor.last_stages
                        if executor is not None else None)
        if tracer is not None:
            tracer.emit(
                EV_STRATUM_END, stratum=level, rounds=rounds,
                wall_s=perf_counter() - stratum_start,
                cardinalities={pred: len(store.relation(pred))
                               for pred in sorted(stratum_heads)})
    if tracer is not None:
        tracer.emit(EV_EVAL_END, program=program.name,
                    wall_s=perf_counter() - start,
                    derived=stats.total_derived, probes=stats.probes,
                    firings=stats.firings, iterations=stats.iterations)
    return store.as_database(db.udomain | program.u_constants()), stats
