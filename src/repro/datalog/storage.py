"""Directory-based database persistence.

A database saves to a directory of one CSV file per relation plus a
``_schema.json`` describing arities, sorts (the paper's 0/1 strings) and
the declared u-domain.  The sort strings make the round trip lossless:
numeric columns load back as sort-i integers.

>>> save_database(db, "snapshot/")
>>> db2 = load_database("snapshot/")
>>> db2.snapshot() == db.snapshot()
True
"""

from __future__ import annotations

import json
import os

from ..errors import SchemaError
from .database import Database, Relation, relation_from_csv, relation_to_csv
from .terms import Sort, format_type, parse_type

SCHEMA_FILE = "_schema.json"


def save_database(db: Database, directory: str) -> None:
    """Write ``db`` to ``directory`` (created if needed).

    Raises:
        SchemaError: when a stored relation has no inferable schema but
            contains tuples (cannot happen through the public API) or a
            relation name is not filesystem-safe.
    """
    os.makedirs(directory, exist_ok=True)
    schema: dict = {"relations": {}, "udomain": sorted(db.udomain)}
    for name in sorted(db.relation_names()):
        if not name.replace("_", "").isalnum():
            raise SchemaError(f"relation name {name!r} is not file-safe")
        relation = db.relation(name)
        reltype = relation.schema
        if reltype is None:
            # Empty relation with undeclared schema: store all-u.
            reltype = (Sort.U,) * relation.arity
        schema["relations"][name] = {
            "arity": relation.arity,
            "type": format_type(reltype),
        }
        with open(os.path.join(directory, f"{name}.csv"), "w") as handle:
            handle.write(relation_to_csv(relation))
    with open(os.path.join(directory, SCHEMA_FILE), "w") as handle:
        json.dump(schema, handle, indent=2, sort_keys=True)


def directory_stats(directory: str) -> dict:
    """On-disk introspection of a database saved by :func:`save_database`.

    Returns ``{"relations": {name: {"arity", "rows", "csv_bytes"}},
    "relation_count", "total_rows", "total_csv_bytes",
    "udomain_size"}`` without loading any relation into memory — row
    counts come from counting CSV lines.  The disk-side counterpart of
    :meth:`~repro.datalog.database.Database.stats`, surfaced as
    ``repro-idlog stats --dir``.

    Raises:
        SchemaError: on a missing schema file or relation CSV.
    """
    schema_path = os.path.join(directory, SCHEMA_FILE)
    if not os.path.exists(schema_path):
        raise SchemaError(f"{directory} has no {SCHEMA_FILE}")
    with open(schema_path) as handle:
        schema = json.load(handle)
    relations: dict[str, dict] = {}
    for name, info in schema["relations"].items():
        path = os.path.join(directory, f"{name}.csv")
        if not os.path.exists(path):
            raise SchemaError(
                f"relation {name} is recorded in {SCHEMA_FILE} but "
                f"{name}.csv is missing")
        with open(path) as handle:
            rows = sum(1 for line in handle if line.strip())
        relations[name] = {"arity": info["arity"], "rows": rows,
                           "csv_bytes": os.path.getsize(path)}
    return {
        "relations": relations,
        "relation_count": len(relations),
        "total_rows": sum(s["rows"] for s in relations.values()),
        "total_csv_bytes": sum(
            s["csv_bytes"] for s in relations.values()),
        "udomain_size": len(schema.get("udomain", ())),
    }


def load_database(directory: str) -> Database:
    """Read a database previously written by :func:`save_database`.

    Raises:
        SchemaError: on a missing schema file or a CSV whose shape
            disagrees with the recorded arity.
    """
    schema_path = os.path.join(directory, SCHEMA_FILE)
    if not os.path.exists(schema_path):
        raise SchemaError(f"{directory} has no {SCHEMA_FILE}")
    with open(schema_path) as handle:
        schema = json.load(handle)
    relations: dict[str, Relation] = {}
    for name, info in schema["relations"].items():
        reltype = parse_type(info["type"])
        if len(reltype) != info["arity"]:
            raise SchemaError(
                f"relation {name}: type {info['type']} does not match "
                f"arity {info['arity']}")
        numeric = [i for i, sort in enumerate(reltype) if sort is Sort.I]
        path = os.path.join(directory, f"{name}.csv")
        with open(path) as handle:
            text = handle.read()
        if text.strip():
            relation = relation_from_csv(text, numeric_columns=numeric)
            if relation.arity != info["arity"]:
                raise SchemaError(
                    f"relation {name}: CSV arity {relation.arity} != "
                    f"recorded arity {info['arity']}")
        else:
            relation = Relation(info["arity"], schema=reltype)
        relations[name] = relation
    return Database(relations, udomain=schema.get("udomain"))
