"""Directory-based database persistence.

A database saves to a directory of one CSV file per relation plus a
``_schema.json`` describing arities, sorts (the paper's 0/1 strings) and
the declared u-domain.  Two on-disk formats coexist:

* **Format 2 (default)** is the columnar snapshot: ``_pool.json`` holds
  the interned constants the snapshot references (ints first, then
  strings, each group sorted — byte-stable regardless of insertion
  order), and each relation CSV holds *file-local tagged codes*: odd
  cells are inline sort-i integers exactly as the in-memory encoding has
  them (``value*2+1``), even cells are ``local_index*2`` into
  ``_pool.json``.  Loading re-encodes each pooled object through the
  process's own :data:`~repro.datalog.pool.GLOBAL_POOL` — snapshots move
  between processes whose pools have nothing in common, and the flat
  int-only CSVs are the stepping stone to mmap/spill storage.
* **Format 1** is the legacy value-level CSV layout; :func:`load_database`
  reads it transparently (``_schema.json`` without a ``format`` key), and
  :func:`save_database` can still write it (``format=1``) for
  interchange with external CSV tooling.

The sort strings make the round trip lossless either way: numeric
columns load back as sort-i integers.

>>> save_database(db, "snapshot/")
>>> db2 = load_database("snapshot/")
>>> db2.snapshot() == db.snapshot()
True
"""

from __future__ import annotations

import json
import os

from ..errors import SchemaError
from .database import Database, Relation, relation_from_csv, relation_to_csv
from .pool import GLOBAL_POOL
from .terms import Sort, format_type, parse_type

SCHEMA_FILE = "_schema.json"
POOL_FILE = "_pool.json"

#: The snapshot layout :func:`save_database` writes by default.
STORAGE_FORMAT = 2


def _referenced_objects(db: Database) -> list:
    """Every interned constant a relation of ``db`` stores, sorted.

    Ints (the rare oversized ones) come first, then strings; each group
    is sorted so the pool file is deterministic for a given database
    content no matter what order tuples were inserted in.
    """
    codes: set[int] = set()
    for name in db.relation_names():
        for column in db.relation(name).coded_columns():
            codes.update(column)
    objs = [GLOBAL_POOL.decode(code) for code in codes if not code & 1]
    ints = sorted(o for o in objs if not isinstance(o, str))
    strs = sorted(o for o in objs if isinstance(o, str))
    return ints + strs


def save_database(db: Database, directory: str,
                  format: int = STORAGE_FORMAT) -> None:
    """Write ``db`` to ``directory`` (created if needed).

    Args:
        db: The database to persist.
        directory: Target directory.
        format: 2 (columnar code CSVs + ``_pool.json``, the default) or
            1 (legacy value-level CSVs).

    Raises:
        SchemaError: when a stored relation has no inferable schema but
            contains tuples (cannot happen through the public API), a
            relation name is not filesystem-safe, or ``format`` is
            unknown.
    """
    if format not in (1, 2):
        raise SchemaError(f"unknown snapshot format {format!r}")
    os.makedirs(directory, exist_ok=True)
    schema: dict = {"relations": {}, "udomain": sorted(db.udomain)}
    if format == 2:
        schema["format"] = 2
        pooled = _referenced_objects(db)
        local = {GLOBAL_POOL.encode(obj): i << 1
                 for i, obj in enumerate(pooled)}
        with open(os.path.join(directory, POOL_FILE), "w") as handle:
            json.dump(pooled, handle)
    for name in sorted(db.relation_names()):
        if not name.replace("_", "").isalnum():
            raise SchemaError(f"relation name {name!r} is not file-safe")
        relation = db.relation(name)
        reltype = relation.schema
        if reltype is None:
            # Empty relation with undeclared schema: store all-u.
            reltype = (Sort.U,) * relation.arity
        schema["relations"][name] = {
            "arity": relation.arity,
            "type": format_type(reltype),
        }
        with open(os.path.join(directory, f"{name}.csv"), "w") as handle:
            if format == 2:
                for row in relation.coded_rows():
                    handle.write(",".join(
                        str(c) if c & 1 else str(local[c]) for c in row))
                    handle.write("\n")
            else:
                handle.write(relation_to_csv(relation))
    with open(os.path.join(directory, SCHEMA_FILE), "w") as handle:
        json.dump(schema, handle, indent=2, sort_keys=True)


def directory_stats(directory: str) -> dict:
    """On-disk introspection of a database saved by :func:`save_database`.

    Returns ``{"relations": {name: {"arity", "rows", "csv_bytes"}},
    "relation_count", "total_rows", "total_csv_bytes", "udomain_size",
    "format"}`` without loading any relation into memory — row counts
    come from counting CSV lines (both formats keep one row per line).
    The disk-side counterpart of
    :meth:`~repro.datalog.database.Database.stats`, surfaced as
    ``repro-idlog stats --dir``.

    Raises:
        SchemaError: on a missing schema file or relation CSV.
    """
    schema_path = os.path.join(directory, SCHEMA_FILE)
    if not os.path.exists(schema_path):
        raise SchemaError(f"{directory} has no {SCHEMA_FILE}")
    with open(schema_path) as handle:
        schema = json.load(handle)
    relations: dict[str, dict] = {}
    for name, info in schema["relations"].items():
        path = os.path.join(directory, f"{name}.csv")
        if not os.path.exists(path):
            raise SchemaError(
                f"relation {name} is recorded in {SCHEMA_FILE} but "
                f"{name}.csv is missing")
        with open(path) as handle:
            rows = sum(1 for line in handle if line.strip())
        relations[name] = {"arity": info["arity"], "rows": rows,
                           "csv_bytes": os.path.getsize(path)}
    return {
        "relations": relations,
        "relation_count": len(relations),
        "total_rows": sum(s["rows"] for s in relations.values()),
        "total_csv_bytes": sum(
            s["csv_bytes"] for s in relations.values()),
        "udomain_size": len(schema.get("udomain", ())),
        "format": schema.get("format", 1),
    }


def _load_coded_relation(path: str, arity: int, reltype,
                         remap: list, name: str) -> Relation:
    """Read a format-2 code CSV, remapping local codes to global ones."""
    rows: list[tuple[int, ...]] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                cells = [int(cell) for cell in line.split(",")]
                row = tuple(c if c & 1 else remap[c >> 1] for c in cells)
            except (ValueError, IndexError) as exc:
                raise SchemaError(
                    f"relation {name}: corrupt coded CSV row {line!r}: "
                    f"{exc}") from exc
            if len(row) != arity:
                raise SchemaError(
                    f"relation {name}: CSV arity {len(row)} != "
                    f"recorded arity {arity}")
            rows.append(row)
    relation = Relation(arity, schema=reltype)
    if rows:
        relation.extend_coded(rows)
    return relation


def load_database(directory: str) -> Database:
    """Read a database previously written by :func:`save_database`.

    Handles both snapshot formats; format-2 pooled constants are
    re-interned into this process's global pool, so codes in the file
    never leak into memory unchanged.

    Raises:
        SchemaError: on a missing schema file, a missing pool file
            (format 2), or a CSV whose shape disagrees with the recorded
            arity.
    """
    schema_path = os.path.join(directory, SCHEMA_FILE)
    if not os.path.exists(schema_path):
        raise SchemaError(f"{directory} has no {SCHEMA_FILE}")
    with open(schema_path) as handle:
        schema = json.load(handle)
    fmt = schema.get("format", 1)
    remap: list = []
    if fmt == 2:
        pool_path = os.path.join(directory, POOL_FILE)
        if not os.path.exists(pool_path):
            raise SchemaError(
                f"{directory} is a format-2 snapshot but has no {POOL_FILE}")
        with open(pool_path) as handle:
            pooled = json.load(handle)
        # File-local even code i<<1 becomes this process's code of the
        # i-th pooled object (interned on first sight).
        remap = [GLOBAL_POOL.encode(obj) for obj in pooled]
    elif fmt != 1:
        raise SchemaError(f"unknown snapshot format {fmt!r}")
    relations: dict[str, Relation] = {}
    for name, info in schema["relations"].items():
        reltype = parse_type(info["type"])
        if len(reltype) != info["arity"]:
            raise SchemaError(
                f"relation {name}: type {info['type']} does not match "
                f"arity {info['arity']}")
        path = os.path.join(directory, f"{name}.csv")
        if fmt == 2:
            relations[name] = _load_coded_relation(
                path, info["arity"], reltype, remap, name)
            continue
        numeric = [i for i, sort in enumerate(reltype) if sort is Sort.I]
        with open(path) as handle:
            text = handle.read()
        if text.strip():
            relation = relation_from_csv(text, numeric_columns=numeric)
            if relation.arity != info["arity"]:
                raise SchemaError(
                    f"relation {name}: CSV arity {relation.arity} != "
                    f"recorded arity {info['arity']}")
        else:
            relation = Relation(info["arity"], schema=reltype)
        relations[name] = relation
    return Database(relations, udomain=schema.get("udomain"))
