"""Operational observability shared by the server and the CLI.

:mod:`repro.datalog.trace` and :mod:`repro.datalog.metrics` observe the
*engine* (span events, counters); this package observes the *process*
around it.  :mod:`repro.obs.log` is the structured JSON logging layer —
one JSON object per line, level-filtered, bindable context fields —
that the server (``repro-idlog serve --log-file/--log-level``) and the
CLI error paths write through instead of ad-hoc ``print(...,
file=sys.stderr)`` calls.
"""

from .log import LOG_LEVELS, NullLogger, StructuredLogger, check_log_level

__all__ = [
    "LOG_LEVELS",
    "NullLogger",
    "StructuredLogger",
    "check_log_level",
]
