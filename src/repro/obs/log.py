"""Structured JSON logging: one event per line, levels, bound context.

The stdlib ``logging`` module is deliberately not used: its global
registry and handler mutation are exactly the kind of process-wide
state the server avoids (several :class:`~repro.server.service.IdlogService`
instances — tests, benchmarks — must not share a logger).  A
:class:`StructuredLogger` is a plain object: construct one per service,
pass it around, close it.

Format: each line is a JSON object ``{"ts": <unix seconds>, "level":
..., "event": ..., **bound, **fields}`` with non-primitive values
stringified the same way :class:`~repro.datalog.trace.JsonTracer` does,
so a log file and a trace file can share tooling.  ``fmt="text"``
renders ``event: message key=value ...`` instead — what the CLI error
path uses so ``repro-idlog`` keeps printing ``error: <message>``.

>>> import io
>>> sink = io.StringIO()
>>> log = StructuredLogger(sink=sink, level="info")
>>> log.debug("ignored", detail=1)   # below the threshold: no line
>>> log.info("request", request_id="r1", wall_ms=3.2)
>>> import json; line = json.loads(sink.getvalue())
>>> line["event"], line["request_id"]
('request', 'r1')
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import Optional, TextIO, Union

from ..datalog.trace import _jsonable

#: Level names in increasing severity; a logger emits events at or
#: above its threshold.
LOG_LEVELS = ("debug", "info", "warning", "error")

_LEVEL_RANK = {name: rank for rank, name in enumerate(LOG_LEVELS)}


def check_log_level(level: str) -> str:
    """Validate a level name (the ``--log-level`` choices)."""
    if level not in _LEVEL_RANK:
        raise ValueError(
            f"log level must be one of {', '.join(LOG_LEVELS)}; "
            f"got {level!r}")
    return level


class StructuredLogger:
    """Thread-safe leveled logger writing one JSON (or text) line per event.

    Args:
        sink: ``None`` (resolve ``sys.stderr`` at emit time — so pytest
            capture and redirection work), a path (opened for append;
            the logger owns and closes it), or an open text file.
        level: Threshold name from :data:`LOG_LEVELS`.
        fmt: ``json`` (the default) or ``text``.
        bound: Context fields stamped on every line (see :meth:`bind`).
    """

    def __init__(self, sink: Union[str, TextIO, None] = None,
                 level: str = "info", fmt: str = "json",
                 bound: Optional[dict] = None) -> None:
        if fmt not in ("json", "text"):
            raise ValueError(f"fmt must be json or text, got {fmt!r}")
        self._rank = _LEVEL_RANK[check_log_level(level)]
        self.level = level
        self.fmt = fmt
        self.bound = dict(bound or {})
        if isinstance(sink, str):
            self._file: Optional[TextIO] = open(sink, "a", encoding="utf-8")
            self._owns = True
        else:
            self._file = sink  # None = dynamic sys.stderr
            self._owns = False
        self._lock = threading.Lock()
        self._closed = False

    # -- emission -----------------------------------------------------------

    def enabled(self, level: str) -> bool:
        """Whether events at ``level`` pass the threshold (guard for
        callers assembling expensive payloads)."""
        return _LEVEL_RANK.get(level, -1) >= self._rank

    def log(self, level: str, event: str, **fields) -> None:
        """Emit one event (dropped when below the threshold)."""
        if not self.enabled(level) or self._closed:
            return
        merged = {**self.bound, **fields}
        if self.fmt == "text":
            line = self._render_text(event, merged)
        else:
            record = {"ts": round(time.time(), 3), "level": level,
                      "event": event}
            for name, value in merged.items():
                record[name] = _jsonable(value)
            line = json.dumps(record)
        target = self._file if self._file is not None else sys.stderr
        with self._lock:
            target.write(line + "\n")
            target.flush()

    @staticmethod
    def _render_text(event: str, fields: dict) -> str:
        head = event
        message = fields.pop("message", None)
        if message is not None:
            head = f"{event}: {message}"
        rest = " ".join(f"{k}={v}" for k, v in fields.items())
        return f"{head} {rest}" if rest else head

    def debug(self, event: str, **fields) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields) -> None:
        self.log("error", event, **fields)

    # -- context ------------------------------------------------------------

    def bind(self, **fields) -> "StructuredLogger":
        """A child logger stamping ``fields`` on every line.

        Shares the parent's sink, lock, and threshold — binding is how
        per-connection or per-request context (``request_id``, ...)
        reaches every line without threading kwargs everywhere.
        """
        child = StructuredLogger.__new__(StructuredLogger)
        child._rank = self._rank
        child.level = self.level
        child.fmt = self.fmt
        child.bound = {**self.bound, **fields}
        child._file = self._file
        child._owns = False
        child._lock = self._lock
        child._closed = self._closed
        return child

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Stop emitting; close the file when path-opened.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._owns and self._file is not None:
            with self._lock:
                self._file.close()

    def __enter__(self) -> "StructuredLogger":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class NullLogger:
    """The no-op logger: every event is discarded (a valid sink for
    code that logs unconditionally)."""

    level = "error"
    fmt = "json"

    def enabled(self, level: str) -> bool:
        return False

    def log(self, level: str, event: str, **fields) -> None:
        pass

    debug = info = warning = error = \
        lambda self, event, **fields: None

    def bind(self, **fields) -> "NullLogger":
        return self

    def close(self) -> None:
        pass
