"""Recording, replaying and diffing ID-function choices.

The whole point of IDLOG is that the ID-function is an *arbitrary*
bijection (Section 2.1), so a program denotes a **set** of answers — which
makes any single run irreproducible unless the choices it made are
captured.  This module is the nondeterminism audit trail:

* :class:`ChoiceRecord` — one ID-function decision: which ordering one
  block of one ``(predicate, grouping)`` pair received, together with a
  content digest of the block so later replays can detect input drift.
* :class:`ChoiceLog` — the ordered sequence of all decisions of one
  evaluation, plus (optionally) the answer relations the run produced.
  Serializes to JSONL whose ``id_choice`` lines are *exactly* the events
  a :class:`~repro.datalog.trace.JsonTracer` writes, so a ``--trace``
  file of an IDLOG run loads as a choice log too.
* :func:`diverge` / :func:`format_divergence` — given two logs (plus
  their answer snapshots), report the first differing ID choice per
  ``(pred, grouping, block)`` and attribute the downstream answer-set
  delta to it.

Recording is wired into the engine's ID-providers
(:class:`~repro.core.engine.IdlogEngine` ``run(record=...)`` /
``one(record=...)``), replay into
:meth:`~repro.core.engine.IdlogEngine.replay`; the CLI surfaces both as
``repro-idlog run --record/--replay`` and the differ as
``repro-idlog diverge``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Optional, TextIO, Union

from ..datalog.database import Relation
from ..datalog.trace import EV_ID_CHOICE, SCHEMA_VERSION
from ..errors import ReproError
from .idrelations import (Grouping, IdFunction, id_function_orderings,
                          sub_relations)


def block_digest(rows: Iterable[tuple]) -> str:
    """Content digest of one block: order-independent, repr-canonical.

    Two blocks digest equally iff they contain the same tuples — the
    drift detector replay relies on.  16 hex chars (64 bits) is plenty
    for block-count scales while keeping log lines readable.
    """
    payload = "\n".join(sorted(repr(row) for row in rows))
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class ChoiceRecord:
    """One ID-function decision: the ordering chosen for one block.

    Attributes:
        pred: Base predicate of the ID-relation.
        group: Grouping positions, sorted ascending.
        block: The grouping-key values identifying the block.
        block_digest: :func:`block_digest` of the *full* block contents
            (not just the recorded prefix) at recording time.
        block_size: Number of tuples in the full block.
        ordering: The block's tuples in tid order — a prefix of length
            ``tid_limit`` when the Section 4 group-limit optimization
            truncated the materialization.
        tid_limit: The tid limit in force, or None for a full ordering.
    """

    pred: str
    group: tuple[int, ...]
    block: tuple
    block_digest: str
    block_size: int
    ordering: tuple[tuple, ...]
    tid_limit: Optional[int]

    @property
    def key(self) -> tuple[str, tuple[int, ...], tuple]:
        """The identity ``(pred, group, block)`` of this decision."""
        return (self.pred, self.group, self.block)

    def describe(self) -> str:
        """Human-readable site label, e.g. ``emp[2] block ('toys',)``."""
        positions = ",".join(map(str, self.group))
        return f"{self.pred}[{positions}] block {self.block!r}"

    def as_event_fields(self) -> dict:
        """The record as ``id_choice`` trace-event fields (JSON-ready)."""
        return {
            "pred": self.pred, "group": list(self.group),
            "block": list(self.block), "block_digest": self.block_digest,
            "block_size": self.block_size,
            "ordering": [list(row) for row in self.ordering],
            "tid_limit": self.tid_limit,
        }


def choice_records(pred: str, group: Grouping, base: Relation,
                   id_function: IdFunction,
                   limit: Optional[int] = None) -> list[ChoiceRecord]:
    """The :class:`ChoiceRecord` per block of one ID-function application.

    Blocks are emitted in deterministic (repr-sorted key) order, so two
    logs of the same decisions are comparable line by line regardless of
    relation iteration order.
    """
    blocks = sub_relations(base, group)
    orderings = id_function_orderings(base, group, id_function, limit)
    gtuple = tuple(sorted(group))
    return [
        ChoiceRecord(pred=pred, group=gtuple, block=key,
                     block_digest=block_digest(blocks[key]),
                     block_size=len(blocks[key]),
                     ordering=orderings[key], tid_limit=limit)
        for key in sorted(blocks, key=repr)]


def _tupled(value):
    """JSON arrays back to the tuples the engine compares against."""
    if isinstance(value, list):
        return tuple(_tupled(v) for v in value)
    return value


class ChoiceLog:
    """The ordered ID-choice audit trail of one IDLOG evaluation.

    Grows through :meth:`record_assignment` (called by the engine's
    recording ID-provider, once per materialized ``(pred, grouping)``
    pair) and optionally carries the run's answer relations
    (:meth:`set_answers`) so a replay — or the :func:`diverge` differ —
    can check end results, not just choices.

    The log indexes decisions by ``(pred, group)`` and, within a pair, by
    block key; a ``(pred, group)`` pair whose base relation was *empty*
    is still registered (with zero blocks), so replay can distinguish
    "recorded as empty" from "never materialized".
    """

    def __init__(self, meta: Optional[Mapping] = None) -> None:
        self.meta: dict = dict(meta or {})
        self.records: list[ChoiceRecord] = []
        #: pred -> sorted tuples of the recorded answer relation.
        self.answers: dict[str, tuple[tuple, ...]] = {}
        self._groups: dict[tuple[str, tuple[int, ...]], dict] = {}

    # -- building ----------------------------------------------------------

    def record_assignment(self, pred: str, group: Grouping, base: Relation,
                          id_function: IdFunction,
                          limit: Optional[int] = None) -> list[ChoiceRecord]:
        """Record one ID-function application; returns its new records."""
        gtuple = tuple(sorted(group))
        if (pred, gtuple) in self._groups:
            raise ReproError(
                f"choice log already holds a decision for "
                f"{pred}[{','.join(map(str, gtuple))}]; one log records "
                "one evaluation")
        records = choice_records(pred, group, base, id_function, limit)
        self._groups[(pred, gtuple)] = {
            "tid_limit": limit,
            "blocks": {rec.block: rec for rec in records}}
        self.records.extend(records)
        return records

    def set_answers(self, answers: Mapping[str, Iterable[tuple]]) -> None:
        """Attach the run's answer relations (sorted for determinism)."""
        self.answers = {
            pred: tuple(sorted(rows, key=lambda r: tuple(map(repr, r))))
            for pred, rows in answers.items()}

    # -- lookup ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[ChoiceRecord]:
        return iter(self.records)

    def groupings(self) -> list[tuple[str, tuple[int, ...]]]:
        """The recorded ``(pred, group)`` pairs, in recording order."""
        return list(self._groups)

    def records_for(self, pred: str, group: Grouping,
                    ) -> Optional[dict[tuple, ChoiceRecord]]:
        """Block-keyed records of one ``(pred, group)`` pair.

        Returns an empty dict when the pair was recorded over an empty
        base relation, and ``None`` when it was never recorded at all —
        replay treats the two very differently.
        """
        entry = self._groups.get((pred, tuple(sorted(group))))
        if entry is None:
            return None
        return entry["blocks"]

    def limit_for(self, pred: str, group: Grouping) -> Optional[int]:
        """The tid limit recorded for one ``(pred, group)`` pair."""
        entry = self._groups.get((pred, tuple(sorted(group))))
        return entry["tid_limit"] if entry else None

    def answer_tuples(self, pred: str) -> frozenset[tuple]:
        """The recorded answer relation for ``pred`` as a frozenset."""
        return frozenset(self.answers.get(pred, ()))

    def digest(self) -> str:
        """Run-level digest of the ordered choice sequence.

        Folds every decision's identity *and* outcome — ``(pred, group,
        block, block digest, tid limit, chosen ordering)`` in recording
        order — so two evaluations digest equally iff they made the
        same ID choices on the same inputs.  This is the per-request
        attribution handle the server returns in ``run`` responses and
        persists in its slow-query log; a round-tripped log
        (:meth:`to_jsonable` → :meth:`from_jsonable`) digests
        identically.  16 hex chars, like :func:`block_digest`.
        """
        fold = hashlib.sha256()
        for rec in self.records:
            fold.update(repr((rec.pred, rec.group, rec.block,
                              rec.block_digest, rec.tid_limit,
                              rec.ordering)).encode())
        return fold.hexdigest()[:16]

    # -- serialization -----------------------------------------------------

    def to_jsonable(self) -> dict:
        """JSON-ready form (embedded in ``BENCH_*.json`` trajectories)."""
        return {
            "schema": SCHEMA_VERSION,
            "meta": dict(self.meta),
            "groupings": [
                {"pred": pred, "group": list(gtuple),
                 "tid_limit": entry["tid_limit"]}
                for (pred, gtuple), entry in self._groups.items()],
            "choices": [rec.as_event_fields() for rec in self.records],
            "answers": {
                pred: [list(row) for row in rows]
                for pred, rows in sorted(self.answers.items())},
        }

    @classmethod
    def from_jsonable(cls, data: Mapping) -> "ChoiceLog":
        """Inverse of :meth:`to_jsonable`."""
        schema = data.get("schema", SCHEMA_VERSION)
        if schema != SCHEMA_VERSION:
            raise ReproError(
                f"choice log has schema {schema}; this build reads "
                f"schema {SCHEMA_VERSION}")
        log = cls(meta=data.get("meta"))
        for entry in data.get("groupings", ()):
            key = (entry["pred"], tuple(entry["group"]))
            log._groups[key] = {"tid_limit": entry.get("tid_limit"),
                                "blocks": {}}
        for fields in data.get("choices", ()):
            log._add_loaded(fields)
        log.answers = {
            pred: tuple(_tupled(row) for row in rows)
            for pred, rows in data.get("answers", {}).items()}
        return log

    def _add_loaded(self, fields: Mapping) -> None:
        record = ChoiceRecord(
            pred=fields["pred"], group=tuple(fields["group"]),
            block=_tupled(fields["block"]),
            block_digest=fields["block_digest"],
            block_size=fields["block_size"],
            ordering=tuple(_tupled(row) for row in fields["ordering"]),
            tid_limit=fields.get("tid_limit"))
        entry = self._groups.setdefault(
            (record.pred, record.group),
            {"tid_limit": record.tid_limit, "blocks": {}})
        entry["blocks"][record.block] = record
        self.records.append(record)

    def save(self, sink: Union[str, TextIO]) -> None:
        """Write the log as JSONL (header, ``id_choice`` lines, answers).

        The ``id_choice`` lines carry the same fields a
        :class:`~repro.datalog.trace.JsonTracer` writes for the
        ``id_choice`` trace event, each stamped with
        :data:`~repro.datalog.trace.SCHEMA_VERSION`.
        """
        handle = open(sink, "w", encoding="utf-8") \
            if isinstance(sink, str) else sink
        try:
            header = {"event": "choice_log", "schema": SCHEMA_VERSION,
                      "meta": self.meta,
                      "groupings": [
                          {"pred": pred, "group": list(gtuple),
                           "tid_limit": entry["tid_limit"]}
                          for (pred, gtuple), entry
                          in self._groups.items()]}
            handle.write(json.dumps(header) + "\n")
            for seq, record in enumerate(self.records):
                line = {"event": EV_ID_CHOICE, "seq": seq,
                        "schema": SCHEMA_VERSION}
                line.update(record.as_event_fields())
                handle.write(json.dumps(line) + "\n")
            if self.answers:
                handle.write(json.dumps(
                    {"event": "answers", "schema": SCHEMA_VERSION,
                     "answers": {pred: [list(row) for row in rows]
                                 for pred, rows
                                 in sorted(self.answers.items())}}) + "\n")
        finally:
            if isinstance(sink, str):
                handle.close()

    @classmethod
    def load(cls, source: Union[str, TextIO]) -> "ChoiceLog":
        """Read a log from JSONL — a saved log *or* any ``--trace`` file.

        Only ``choice_log`` / ``id_choice`` / ``answers`` lines are
        interpreted; everything else (clause firings, rounds, ...) is
        skipped, which is what lets a full JSONL trace double as a
        choice log.
        """
        handle = open(source, encoding="utf-8") \
            if isinstance(source, str) else source
        try:
            log = cls()
            seen_choice_lines = False
            for raw in handle:
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    line = json.loads(raw)
                except json.JSONDecodeError as exc:
                    raise ReproError(
                        f"choice log line is not valid JSON: {exc}")
                kind = line.get("event")
                if kind == "choice_log":
                    if line.get("schema") != SCHEMA_VERSION:
                        raise ReproError(
                            f"choice log has schema {line.get('schema')}; "
                            f"this build reads schema {SCHEMA_VERSION}")
                    log.meta = dict(line.get("meta", {}))
                    for entry in line.get("groupings", ()):
                        key = (entry["pred"], tuple(entry["group"]))
                        log._groups.setdefault(
                            key, {"tid_limit": entry.get("tid_limit"),
                                  "blocks": {}})
                elif kind == EV_ID_CHOICE:
                    log._add_loaded(line)
                    seen_choice_lines = True
                elif kind == "answers":
                    log.answers = {
                        pred: tuple(_tupled(row) for row in rows)
                        for pred, rows in line.get("answers", {}).items()}
            if not seen_choice_lines and not log._groups:
                raise ReproError(
                    "no id_choice lines found; not a choice log (or a "
                    "trace of a run that materialized no ID-relations)")
            return log
        finally:
            if isinstance(source, str):
                handle.close()


# -- the divergence differ ---------------------------------------------------

#: Divergence kinds, from "the runs chose differently" to "the runs saw
#: different inputs" to "one run never made this decision at all".
DIV_ORDERING = "ordering"
DIV_INPUT = "input"
DIV_LIMIT = "limit"
DIV_ONLY_A = "only-A"
DIV_ONLY_B = "only-B"


@dataclass(frozen=True)
class ChoiceDivergence:
    """One differing ID choice between two logs."""

    pred: str
    group: tuple[int, ...]
    block: tuple
    kind: str
    detail: str
    a: Optional[ChoiceRecord] = None
    b: Optional[ChoiceRecord] = None

    def site(self) -> str:
        """``pred[group] block`` label for tables and messages."""
        positions = ",".join(map(str, self.group))
        return f"{self.pred}[{positions}] {self.block!r}"


@dataclass
class DivergenceReport:
    """Outcome of :func:`diverge`: differing choices + answer deltas."""

    divergences: list[ChoiceDivergence]
    #: pred -> (tuples only in A, tuples only in B); only differing preds.
    answer_deltas: dict[str, tuple[frozenset, frozenset]]
    choices_compared: int

    @property
    def first(self) -> Optional[ChoiceDivergence]:
        """The first differing choice in A's recording order, if any."""
        return self.divergences[0] if self.divergences else None

    @property
    def identical(self) -> bool:
        """True when choices AND recorded answers agree."""
        return not self.divergences and not self.answer_deltas


def diverge(a: ChoiceLog, b: ChoiceLog) -> DivergenceReport:
    """Compare two choice logs (and their answer snapshots).

    Walks A's decisions in recording order, so :attr:`~DivergenceReport.first`
    is the *earliest* point the two runs parted ways — under stratified
    evaluation every later difference is potentially downstream of it.
    """
    b_index = {rec.key: rec for rec in b.records}
    a_keys = set()
    divergences: list[ChoiceDivergence] = []
    for rec in a.records:
        a_keys.add(rec.key)
        other = b_index.get(rec.key)
        if other is None:
            divergences.append(ChoiceDivergence(
                rec.pred, rec.group, rec.block, DIV_ONLY_A,
                "block only recorded in A (input drift or earlier "
                "divergence reshaped the relation)", a=rec))
        elif rec.block_digest != other.block_digest:
            divergences.append(ChoiceDivergence(
                rec.pred, rec.group, rec.block, DIV_INPUT,
                f"block contents differ: digest {rec.block_digest} vs "
                f"{other.block_digest} (sizes {rec.block_size} vs "
                f"{other.block_size})", a=rec, b=other))
        elif rec.tid_limit != other.tid_limit:
            divergences.append(ChoiceDivergence(
                rec.pred, rec.group, rec.block, DIV_LIMIT,
                f"tid limit differs: {rec.tid_limit} vs "
                f"{other.tid_limit}", a=rec, b=other))
        elif rec.ordering != other.ordering:
            divergences.append(ChoiceDivergence(
                rec.pred, rec.group, rec.block, DIV_ORDERING,
                "same block, different chosen ordering", a=rec, b=other))
    for rec in b.records:
        if rec.key not in a_keys:
            divergences.append(ChoiceDivergence(
                rec.pred, rec.group, rec.block, DIV_ONLY_B,
                "block only recorded in B (input drift or earlier "
                "divergence reshaped the relation)", b=rec))

    answer_deltas: dict[str, tuple[frozenset, frozenset]] = {}
    for pred in sorted(set(a.answers) | set(b.answers)):
        only_a = a.answer_tuples(pred) - b.answer_tuples(pred)
        only_b = b.answer_tuples(pred) - a.answer_tuples(pred)
        if only_a or only_b:
            answer_deltas[pred] = (only_a, only_b)
    return DivergenceReport(divergences, answer_deltas,
                            choices_compared=len(a_keys | set(b_index)))


def _clip(text: str, width: int) -> str:
    if len(text) <= width:
        return text
    return text[:width - 1] + "…"


def _ordering_cell(record: Optional[ChoiceRecord]) -> str:
    if record is None:
        return "-"
    rendered = " ".join(",".join(map(str, row)) for row in record.ordering)
    return rendered or "(empty)"


def format_divergence(report: DivergenceReport,
                      a_name: str = "A", b_name: str = "B",
                      site_width: int = 30,
                      ordering_width: int = 24) -> str:
    """Render a :class:`DivergenceReport` as a text table.

    Same presentation family as
    :func:`repro.datalog.trace.format_profile`: a header line, fixed-width
    columns, one totals/verdict line — the ``repro-idlog diverge``
    output.
    """
    lines = [f"CHOICE DIVERGENCE  (A={a_name}, B={b_name}, "
             f"{report.choices_compared} choice site(s) compared)"]
    if report.identical:
        lines.append("  identical: every ID choice and every recorded "
                     "answer agrees")
        return "\n".join(lines)

    if report.divergences:
        head = ("  " + "site".ljust(site_width)
                + "  " + "kind".rjust(8)
                + "  " + f"{a_name} ordering".ljust(ordering_width)
                + "  " + f"{b_name} ordering".ljust(ordering_width))
        lines.append(head)
        for div in report.divergences:
            lines.append(
                "  " + _clip(div.site(), site_width).ljust(site_width)
                + "  " + div.kind.rjust(8)
                + "  " + _clip(_ordering_cell(div.a),
                               ordering_width).ljust(ordering_width)
                + "  " + _clip(_ordering_cell(div.b),
                               ordering_width).ljust(ordering_width))
        first = report.first
        lines.append(f"first divergent choice: {first.site()} "
                     f"[{first.kind}] — {first.detail}")
    else:
        lines.append("  all ID choices agree")

    if report.answer_deltas:
        for pred, (only_a, only_b) in sorted(report.answer_deltas.items()):
            bits = []
            if only_a:
                bits.append(f"{len(only_a)} tuple(s) only in {a_name}: "
                            + ", ".join(sorted(map(str, only_a))[:4])
                            + ("…" if len(only_a) > 4 else ""))
            if only_b:
                bits.append(f"{len(only_b)} tuple(s) only in {b_name}: "
                            + ", ".join(sorted(map(str, only_b))[:4])
                            + ("…" if len(only_b) > 4 else ""))
            line = f"answer delta {pred}: " + "; ".join(bits)
            if report.first is not None:
                line += (f"  [attributed to first divergent choice "
                         f"{report.first.site()}]")
            lines.append(line)
    elif report.divergences:
        lines.append("recorded answers agree despite the divergent "
                     "choices (different models, same projection)")
    return "\n".join(lines)


__all__ = [
    "EV_ID_CHOICE", "ChoiceRecord", "ChoiceLog", "ChoiceDivergence",
    "DivergenceReport", "block_digest", "choice_records", "diverge",
    "format_divergence",
]
