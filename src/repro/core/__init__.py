"""The paper's core contribution: IDLOG — DATALOG with tuple identifiers.

Public surface:

* :class:`IdlogProgram` — validated programs (safety, stratification with
  strict ID-edges, tid-bound analysis).
* :class:`IdlogEngine` — evaluation under an assignment strategy; sampling;
  exact answer-set enumeration.
* :class:`IdlogQuery` — the non-deterministic query object of one output
  predicate.
* ID-relation machinery (:mod:`repro.core.idrelations`) and assignment
  strategies (:mod:`repro.core.assignment`).
"""

from .assignment import (AssignmentStrategy, CanonicalAssignment,
                         OracleAssignment, RandomAssignment)
from .choicelog import (ChoiceDivergence, ChoiceLog, ChoiceRecord,
                        DivergenceReport, block_digest, choice_records,
                        diverge, format_divergence)
from .dbp import UDOM_PREDICATE, database_program, strip_database_program
from .engine import IdlogEngine, ReplayIdProvider
from .idrelations import (Grouping, IdFunction, canonical_id_function,
                          count_id_functions, enumerate_id_functions,
                          group_key, id_function_orderings, id_relations_of,
                          make_id_relation, ordering_to_id_function,
                          random_id_function, sub_relations,
                          validate_id_function)
from .models import (IdlogInterpretation, check_interpretation, is_model,
                     is_perfect_model, perfect_models)
from .program import IdlogProgram, compute_tid_limits
from .query import (Answer, IdlogQuery, answers_equal, permute_answer,
                    permute_database)

__all__ = [
    "UDOM_PREDICATE", "database_program", "strip_database_program",
    "IdlogInterpretation", "check_interpretation", "is_model",
    "is_perfect_model", "perfect_models",
    "AssignmentStrategy", "CanonicalAssignment", "OracleAssignment",
    "RandomAssignment",
    "IdlogEngine", "ReplayIdProvider",
    "ChoiceDivergence", "ChoiceLog", "ChoiceRecord", "DivergenceReport",
    "block_digest", "choice_records", "diverge", "format_divergence",
    "Grouping", "IdFunction", "canonical_id_function", "count_id_functions",
    "enumerate_id_functions", "group_key", "id_function_orderings",
    "id_relations_of", "make_id_relation", "ordering_to_id_function",
    "random_id_function", "sub_relations", "validate_id_function",
    "IdlogProgram", "compute_tid_limits",
    "Answer", "IdlogQuery", "answers_equal", "permute_answer",
    "permute_database",
]
