"""Non-deterministic IDLOG queries (the paper's Section 3.1).

A (non-deterministic) query of type ``(a1,...,an) -> a0 / C`` is a binary
relation between input databases and answer relations; equivalently a
function from databases to *sets* of answers.  :class:`IdlogQuery` is that
object for the query a stratified IDLOG program defines on one output
predicate: ``answers`` gives the full set
``q(r) = { q^M : M a finite perfect model of dbp(P, q, r) }``,
``one`` samples a single answer, and genericity can be checked against
explicit domain permutations.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Union

from ..datalog.ast import Program
from ..datalog.database import Database, Relation
from ..errors import NotDeterministicError
from .engine import IdlogEngine
from .program import IdlogProgram

Answer = frozenset[tuple]
"""One answer of a query: a relation as a frozenset of tuples."""


def permute_value(value, mapping: Mapping[str, str]):
    """Apply a u-domain permutation to one value (i-values fixed)."""
    if isinstance(value, str):
        return mapping.get(value, value)
    return value


def permute_database(db: Database, mapping: Mapping[str, str]) -> Database:
    """Apply a u-domain permutation to every relation of a database."""
    relations = {}
    for name in db.relation_names():
        source = db.relation(name)
        target = Relation(source.arity)
        for row in source:
            target.add(tuple(permute_value(v, mapping) for v in row))
        relations[name] = target
    udomain = frozenset(mapping.get(d, d) for d in db.udomain)
    return Database(relations, udomain)


def permute_answer(answer: Answer, mapping: Mapping[str, str]) -> Answer:
    """Apply a u-domain permutation to an answer relation."""
    return frozenset(
        tuple(permute_value(v, mapping) for v in row) for row in answer)


class IdlogQuery:
    """The non-deterministic query one output predicate of a program defines.

    The program is sliced to its portion related to the output predicate
    (the paper's ``P/q``), so irrelevant non-determinism neither shows up in
    answers nor slows enumeration.

    Example (the paper's Example 2):
        >>> query = IdlogQuery('''
        ...     sex_guess(X, male) :- person(X).
        ...     sex_guess(X, female) :- person(X).
        ...     man(X) :- sex_guess[1](X, male, 1).
        ... ''', "man")
        >>> db = Database.from_facts({"person": [("a",), ("b",)]})
        >>> sorted(sorted(ans) for ans in query.answers(db))
        [[], [('a',)], [('a',), ('b',)], [('b',)]]
    """

    def __init__(self, program: Union[str, Program, IdlogProgram],
                 pred: str, use_group_limits: bool = True) -> None:
        compiled = program if isinstance(program, IdlogProgram) \
            else IdlogProgram.compile(program)
        self.pred = pred
        self.compiled = compiled.restrict_to(pred)
        self.engine = IdlogEngine(self.compiled,
                                  use_group_limits=use_group_limits)

    def one(self, db: Database, seed: Optional[int] = None) -> Answer:
        """Sample one answer (random tid assignment, reproducible by seed)."""
        return self.engine.one(db, seed).tuples(self.pred)

    def canonical(self, db: Database) -> Answer:
        """The answer under the canonical (deterministic) assignment."""
        return self.engine.query(db, self.pred)

    def answers(self, db: Database,
                max_branches: int = 200_000) -> frozenset[Answer]:
        """The exact answer set on ``db`` (see :meth:`IdlogEngine.answers`)."""
        return self.engine.answers(db, self.pred, max_branches,
                                   slice_program=False)

    def is_deterministic_on(self, db: Database,
                            max_branches: int = 200_000) -> bool:
        """True when the query has exactly one answer on ``db``."""
        return len(self.answers(db, max_branches)) == 1

    def answer_probabilities(self, db: Database,
                             max_branches: int = 200_000):
        """Exact answer probabilities under uniform ID-functions.

        See :meth:`IdlogEngine.answer_probabilities`; the query is already
        sliced to ``P/pred``, so probabilities cover exactly this query's
        non-determinism.
        """
        return self.engine.answer_probabilities(
            db, self.pred, max_branches, slice_program=False)

    def answer_distribution(self, db: Database, trials: int,
                            seed: Optional[int] = None,
                            ) -> dict[Answer, int]:
        """Empirical distribution of answers over repeated sampling.

        Each trial draws fresh uniform ID-functions, so for a query whose
        answers correspond 1:1 to assignment classes of equal size (e.g.
        the sampling queries of §3.3) the distribution converges to
        uniform over :meth:`answers` — which is how the E4/E5 experiments
        sanity-check the sampler.

        Returns:
            Mapping answer -> number of trials that produced it.
        """
        from .assignment import RandomAssignment
        strategy = RandomAssignment(seed)
        counts: dict[Answer, int] = {}
        for _ in range(trials):
            answer = self.engine.run(db, strategy).tuples(self.pred)
            counts[answer] = counts.get(answer, 0) + 1
        return counts

    def deterministic_answer(self, db: Database,
                             max_branches: int = 200_000) -> Answer:
        """The unique answer on ``db``.

        Raises:
            NotDeterministicError: when the answer set is not a singleton.
        """
        answers = self.answers(db, max_branches)
        if len(answers) != 1:
            raise NotDeterministicError(
                f"query {self.pred} has {len(answers)} answers on this "
                "input")
        return next(iter(answers))

    def genericity_constants(self) -> frozenset[str]:
        """The constant set C for which the query is C-generic."""
        return self.compiled.genericity_constants()

    def check_generic(self, db: Database, mapping: Mapping[str, str],
                      max_branches: int = 200_000) -> bool:
        """Check C-genericity against one domain permutation.

        Verifies the paper's condition ``r ∈ f(τ)  iff  σ(r) ∈ f(σ(τ))``
        for the permutation ``σ = mapping`` (which must fix the constants in
        :meth:`genericity_constants` to be a fair test).

        Returns:
            True when the answer sets correspond under the permutation.
        """
        direct = self.answers(db, max_branches)
        permuted = self.answers(permute_database(db, mapping), max_branches)
        mapped = frozenset(permute_answer(a, mapping) for a in direct)
        return mapped == permuted


def answers_equal(a: Iterable[Answer], b: Iterable[Answer]) -> bool:
    """Convenience: compare two answer sets for equality."""
    return frozenset(a) == frozenset(b)
