"""ID-relations and ID-functions (the paper's Section 2.1).

Given a relation ``r`` and a set ``s`` of attribute positions, the
*sub-relations of r grouped by s* partition ``r`` into blocks of tuples
agreeing on the attributes in ``s``.  An *ID-function* of a block of size k
is a bijection onto ``{0, ..., k-1}``; an *ID-relation of r on s* augments
every tuple with the tid its block's ID-function assigns.

Example 1 of the paper: for ``r = {(a,c), (a,d), (b,c)}`` grouped by the
first attribute the blocks are ``{(a,c), (a,d)}`` and ``{(b,c)}``, so there
are exactly two ID-relations of ``r`` on ``{1}``.

The *choice* of ID-function is the language's source of non-determinism;
this module provides construction, counting and exhaustive enumeration of
ID-functions, including the *prefix-limited* variant used by the Section 4
optimization (when every use of ``p[s]`` constrains the tid below ``k``,
only the k-prefix of each block's ordering matters, shrinking both the
materialized relation and the enumeration space from ``k!`` to ``P(n, k)``
per block).
"""

from __future__ import annotations

import math
import random
from itertools import permutations, product
from typing import Iterator, Mapping, Optional, Sequence

from ..datalog.database import Relation
from ..datalog.terms import Value
from ..errors import SchemaError

Grouping = frozenset[int]
"""A set of 1-based attribute positions of the base relation."""

IdFunction = Mapping[tuple[Value, ...], int]
"""An assignment of tids to base tuples (bijective within each block)."""


def group_key(row: tuple[Value, ...], group: Grouping) -> tuple[Value, ...]:
    """The grouping key of a tuple: its values at ``group`` positions.

    Positions are 1-based, following the paper; the key orders them
    ascending so it is deterministic.
    """
    return tuple(row[i - 1] for i in sorted(group))


def sub_relations(base: Relation,
                  group: Grouping) -> dict[tuple, list[tuple[Value, ...]]]:
    """Partition ``base`` into its sub-relations grouped by ``group``.

    Returns a mapping from grouping key to the tuples of that block, in a
    deterministic (sorted) order so downstream constructions are repeatable.
    """
    for i in group:
        if not 1 <= i <= base.arity:
            raise SchemaError(
                f"grouping position {i} outside 1..{base.arity}")
    blocks: dict[tuple, list[tuple[Value, ...]]] = {}
    for row in base:
        blocks.setdefault(group_key(row, group), []).append(row)
    for rows in blocks.values():
        rows.sort(key=lambda r: tuple(map(repr, r)))
    return blocks


def validate_id_function(base: Relation, group: Grouping,
                         id_function: IdFunction) -> None:
    """Check that ``id_function`` is a valid ID-function of ``base`` on
    ``group``: defined on every tuple and bijective onto 0..k-1 within each
    block.

    Raises:
        SchemaError: when the function is not a block-wise bijection.
    """
    for key, rows in sub_relations(base, group).items():
        tids = sorted(id_function[row] for row in rows)
        if tids != list(range(len(rows))):
            raise SchemaError(
                f"tids {tids} of block {key} are not a bijection onto "
                f"0..{len(rows) - 1}")


def canonical_id_function(base: Relation, group: Grouping) -> dict:
    """The deterministic ID-function: tids follow the sorted tuple order.

    Used as the default assignment so repeated evaluations of the same
    program on the same database agree.
    """
    mapping: dict[tuple, int] = {}
    for rows in sub_relations(base, group).values():
        for tid, row in enumerate(rows):
            mapping[row] = tid
    return mapping


def random_id_function(base: Relation, group: Grouping,
                       rng: random.Random) -> dict:
    """A uniformly random ID-function (independent shuffle per block)."""
    mapping: dict[tuple, int] = {}
    for rows in sub_relations(base, group).values():
        shuffled = list(rows)
        rng.shuffle(shuffled)
        for tid, row in enumerate(shuffled):
            mapping[row] = tid
    return mapping


def count_id_functions(base: Relation, group: Grouping,
                       limit: Optional[int] = None) -> int:
    """The number of (distinct-prefix) ID-functions of ``base`` on ``group``.

    Without ``limit`` this is ``∏ k!`` over block sizes ``k``.  With a tid
    limit only the assignment of tids ``0..limit-1`` is observable, so the
    count drops to ``∏ P(k, min(k, limit))``.
    """
    total = 1
    for rows in sub_relations(base, group).values():
        k = len(rows)
        take = k if limit is None else min(k, limit)
        total *= math.perm(k, take)
    return total


def enumerate_id_functions(base: Relation, group: Grouping,
                           limit: Optional[int] = None) -> Iterator[dict]:
    """Yield every ID-function of ``base`` on ``group``.

    With ``limit`` k, yields every *distinct k-prefix*: functions are partial
    (defined only on tuples receiving tids below k in their block), which is
    exactly what a tid-limited materialization needs.  The number of yields
    matches :func:`count_id_functions`.
    """
    blocks = list(sub_relations(base, group).values())
    if not blocks:
        yield {}
        return
    per_block: list[list[tuple[tuple, ...]]] = []
    for rows in blocks:
        take = len(rows) if limit is None else min(len(rows), limit)
        per_block.append(list(permutations(rows, take)))
    for combo in product(*per_block):
        mapping: dict[tuple, int] = {}
        for ordering in combo:
            for tid, row in enumerate(ordering):
                mapping[row] = tid
        yield mapping


def make_id_relation(base: Relation, id_function: IdFunction,
                     limit: Optional[int] = None) -> Relation:
    """Build the ID-relation: every base tuple extended with its tid.

    Args:
        base: The base relation.
        id_function: Tid assignment (may be partial when prefix-limited).
        limit: When given, keep only tuples with tid < limit (the Section 4
            group-limit optimization; sound when every use of the
            ID-predicate constrains the tid below ``limit``).
    """
    result = Relation(base.arity + 1)
    for row in base:
        tid = id_function.get(row)
        if tid is None:
            if limit is None:
                raise SchemaError(
                    f"ID-function undefined on {row!r} without a tid limit")
            continue
        if limit is not None and tid >= limit:
            continue
        result.add(row + (tid,))
    return result


def id_relations_of(base: Relation, group: Grouping,
                    limit: Optional[int] = None) -> Iterator[Relation]:
    """Yield every possible ID-relation of ``base`` on ``group``.

    This is the object the paper enumerates in Example 1; mostly useful for
    tests and small demonstrations (the engine enumerates ID-functions and
    materializes on demand instead).
    """
    for id_function in enumerate_id_functions(base, group, limit):
        yield make_id_relation(base, id_function, limit)


def id_function_orderings(base: Relation, group: Grouping,
                          id_function: IdFunction,
                          limit: Optional[int] = None,
                          ) -> dict[tuple, tuple[tuple, ...]]:
    """Invert an ID-function into per-block tid orderings.

    The inverse of :func:`ordering_to_id_function`: returns a mapping from
    each block's grouping key to its tuples in tid order.  With ``limit``,
    only the observable prefix (tids below the limit) is kept — exactly
    the portion a tid-limited materialization realizes, and exactly what a
    choice log needs to record for faithful replay.  Partial ID-functions
    (enumeration prefixes) are handled: undefined tuples are simply absent
    from the ordering.
    """
    out: dict[tuple, tuple[tuple, ...]] = {}
    for key, rows in sub_relations(base, group).items():
        assigned = sorted(
            (tid, row) for row in rows
            if (tid := id_function.get(row)) is not None)
        if limit is not None:
            assigned = [(tid, row) for tid, row in assigned if tid < limit]
        out[key] = tuple(row for _, row in assigned)
    return out


def ordering_to_id_function(orderings: Sequence[Sequence[tuple]],
                            ) -> dict:
    """Build an ID-function from explicit per-block tuple orderings.

    Convenience for tests and oracles: each sequence lists one block's
    tuples in tid order.
    """
    mapping: dict[tuple, int] = {}
    for ordering in orderings:
        for tid, row in enumerate(ordering):
            if row in mapping:
                raise SchemaError(f"tuple {row!r} listed twice")
            mapping[row] = tid
    return mapping
