"""Model theory for IDLOG: interpretations, models, perfect models (§2.2).

An **IDLOG (Herbrand) interpretation** assigns a relation to each ordinary
predicate and an *ID-relation standing in the right relationship* to each
ID-predicate.  This module makes those objects first-class so the
semantics can be checked, not just computed:

* :func:`check_interpretation` verifies the "right relationship": every
  assigned ID-relation projects onto its base relation with block-wise
  bijective tids;
* :func:`is_model` checks clause satisfaction by enumeration (every
  substitution satisfying a body must satisfy the head);
* :func:`is_perfect_model` checks that an interpretation is the iterated
  fixpoint its own ID-assignment induces — for stratified programs that is
  the perfect model (Theorem 1 / Przymusinski);
* :func:`perfect_models` enumerates all perfect models of a program on a
  database, as interpretations.

The test suite uses these to verify Theorem 1's consequence that every
stratified IDLOG program has at least one perfect model, and that
fixpoint-computed models are minimal among the checked models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Union

from ..datalog.ast import Program
from ..datalog.database import Database, Relation
from ..datalog.safety import order_body
from ..datalog.seminaive import (EvalStats, RelationStore, _head_tuple,
                                 _solve_literals)
from ..errors import EvaluationError, SchemaError
from .engine import IdlogEngine, _FixedIdProvider
from .idrelations import Grouping, sub_relations
from .program import IdlogProgram


@dataclass(frozen=True)
class IdlogInterpretation:
    """A finite IDLOG Herbrand interpretation.

    Attributes:
        relations: Ordinary predicate -> relation (frozenset of tuples).
        id_relations: (predicate, grouping) -> assigned ID-relation
            (frozensets of base-tuple + tid rows).
    """

    relations: dict[str, frozenset[tuple]]
    id_relations: dict[tuple[str, Grouping], frozenset[tuple]]

    def relation(self, pred: str) -> frozenset[tuple]:
        """The relation of an ordinary predicate (empty if absent)."""
        return self.relations.get(pred, frozenset())

    def with_extra(self, pred: str,
                   rows: frozenset[tuple]) -> "IdlogInterpretation":
        """A copy with extra tuples added to one ordinary predicate.

        ID-relations are left untouched, so the result is only a valid
        interpretation if ``pred`` has no assigned ID-version; useful for
        constructing non-minimal models in tests.
        """
        relations = dict(self.relations)
        relations[pred] = relations.get(pred, frozenset()) | rows
        return IdlogInterpretation(relations, dict(self.id_relations))


def check_interpretation(interp: IdlogInterpretation) -> None:
    """Verify the §2.2 consistency requirement on ID-relations.

    Raises:
        SchemaError: when some assigned ID-relation is not an ID-relation
            of its base relation on its grouping (wrong projection, or
            tids not bijective onto 0..k-1 within some block).
    """
    for (pred, group), id_rows in interp.id_relations.items():
        base_rows = interp.relation(pred)
        projected = frozenset(row[:-1] for row in id_rows)
        if projected != base_rows:
            raise SchemaError(
                f"ID-relation for {pred}[{sorted(group)}] projects to "
                f"{len(projected)} tuples, base has {len(base_rows)}")
        if not base_rows:
            continue
        arity = len(next(iter(base_rows)))
        base = Relation(arity, tuples=base_rows)
        tid_of = {row[:-1]: row[-1] for row in id_rows}
        if len(tid_of) != len(id_rows):
            raise SchemaError(
                f"ID-relation for {pred}[{sorted(group)}] assigns several "
                "tids to one tuple")
        for key, block in sub_relations(base, group).items():
            tids = sorted(tid_of[row] for row in block)
            if tids != list(range(len(block))):
                raise SchemaError(
                    f"tids {tids} of {pred}[{sorted(group)}] block {key} "
                    f"are not a bijection onto 0..{len(block) - 1}")


def _store_of(interp: IdlogInterpretation,
              program: Program) -> RelationStore:
    """A read-only relation store realizing the interpretation."""
    chosen: dict[tuple[str, Grouping], Relation] = {}
    for (pred, group), rows in interp.id_relations.items():
        arity = (len(next(iter(rows))) if rows
                 else program.arity(pred) + 1)
        chosen[(pred, group)] = Relation(arity, tuples=rows)
    store = RelationStore(_FixedIdProvider(chosen), EvalStats())
    for pred in program.predicates:
        rows = interp.relation(pred)
        store.install(pred, Relation(program.arity(pred), tuples=rows))
    return store


def is_model(program: Union[str, Program],
             interp: IdlogInterpretation) -> bool:
    """Check that every clause of ``program`` is satisfied by ``interp``.

    A clause is satisfied when every substitution making its body true in
    the interpretation also puts the head tuple in the head predicate's
    relation.  The interpretation must assign ID-relations for every
    (predicate, grouping) pair the program uses.
    """
    if isinstance(program, str):
        from ..datalog.parser import parse_program
        program = parse_program(program)
    missing = program.id_groupings - frozenset(interp.id_relations)
    if missing:
        raise EvaluationError(
            f"interpretation assigns no ID-relation for {sorted(missing)}")
    store = _store_of(interp, program)
    stats = EvalStats()
    for clause in program.clauses:
        plan = order_body(clause)
        for subst in _solve_literals(plan, 0, {}, store, stats, {}):
            head_row = _head_tuple(clause, subst)
            if head_row not in interp.relation(clause.head.pred):
                return False
    return True


def perfect_models(program: Union[str, Program, IdlogProgram],
                   db: Database, max_branches: int = 200_000,
                   ) -> Iterator[IdlogInterpretation]:
    """Enumerate the perfect models of a stratified IDLOG program on ``db``.

    One interpretation per combination of ID-functions (combinations that
    produce identical interpretations are not deduplicated — they are the
    same model reached through different blocks).
    """
    engine = IdlogEngine(program)
    budget = [max_branches]
    seen: set[tuple] = set()
    for relations, chosen, _weight in engine._enumerate_models(
            engine.compiled, db, budget):
        interp = IdlogInterpretation(
            {name: rel.frozen() for name, rel in relations.items()},
            {key: rel.frozen() for key, rel in chosen.items()})
        key = (tuple(sorted((n, r) for n, r in interp.relations.items())),
               tuple(sorted((p, tuple(sorted(g)), r)
                            for (p, g), r in interp.id_relations.items())))
        if key not in seen:
            seen.add(key)
            yield interp


def is_perfect_model(program: Union[str, Program, IdlogProgram],
                     db: Database, interp: IdlogInterpretation,
                     ) -> bool:
    """Check that ``interp`` is the perfect model its ID-assignment induces.

    For a stratified program and a fixed ID-assignment the perfect model
    is the iterated stratum-by-stratum least fixpoint; this re-runs that
    fixpoint under the interpretation's own ID-relations and compares.
    """
    check_interpretation(interp)
    engine = IdlogEngine(program)
    compiled = engine.compiled
    chosen = {key: Relation(len(next(iter(rows))) if rows
                            else compiled.program.arity(key[0]) + 1,
                            tuples=rows)
              for key, rows in interp.id_relations.items()}

    from ..datalog.seminaive import evaluate
    provider = _FixedIdProvider(chosen)
    computed, _ = evaluate(compiled.program, db, id_provider=provider,
                           stratification=compiled.stratification)
    for pred in compiled.program.predicates:
        if computed.relation(pred).frozen() != interp.relation(pred):
            return False
    return True
