"""Tid-assignment strategies.

An IDLOG interpretation must assign to each ID-predicate ``p[s]`` an
ID-relation of ``p`` on ``s`` (Section 2.2).  A *strategy* decides which
ID-function to use each time the engine materializes one:

* :class:`CanonicalAssignment` — deterministic (sorted tuple order); used as
  the default so evaluation is repeatable.
* :class:`RandomAssignment` — a fresh uniform ID-function per predicate,
  seeded; this realizes "one arbitrary answer" of the non-deterministic
  query.
* :class:`OracleAssignment` — explicitly supplied ID-functions (used by the
  answer-set enumerator and by tests to pin a particular model).
"""

from __future__ import annotations

import random
from typing import Mapping, Optional, Protocol

from ..datalog.database import Relation
from ..errors import EvaluationError
from .idrelations import (Grouping, IdFunction, canonical_id_function,
                          random_id_function)


class AssignmentStrategy(Protocol):
    """Chooser of ID-functions, one call per (predicate, grouping)."""

    def id_function(self, pred: str, group: Grouping,
                    base: Relation) -> IdFunction:
        """Return the ID-function to use for ``pred[group]`` over ``base``."""
        ...


class CanonicalAssignment:
    """Deterministic assignment: tids follow the sorted tuple order."""

    def id_function(self, pred: str, group: Grouping,
                    base: Relation) -> IdFunction:
        return canonical_id_function(base, group)


class RandomAssignment:
    """Uniformly random assignment, reproducible from a seed.

    Each (predicate, grouping) gets an independent random ID-function; the
    same strategy object reused across evaluations keeps drawing fresh
    randomness, which is what repeated sampling of a non-deterministic
    query wants.
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        self._rng = random.Random(seed)

    def id_function(self, pred: str, group: Grouping,
                    base: Relation) -> IdFunction:
        return random_id_function(base, group, self._rng)


class OracleAssignment:
    """Assignment from an explicit table of ID-functions.

    Args:
        table: Maps (predicate, grouping) to an ID-function.
        fallback: Strategy consulted for pairs missing from the table
            (default: none — missing pairs are an error, which keeps
            enumeration honest).
    """

    def __init__(self, table: Mapping[tuple[str, Grouping], IdFunction],
                 fallback: Optional[AssignmentStrategy] = None) -> None:
        self._table = dict(table)
        self._fallback = fallback

    @classmethod
    def from_choice_log(cls, log,
                        fallback: Optional[AssignmentStrategy] = None,
                        ) -> "OracleAssignment":
        """Build an oracle from a recorded choice log.

        Each recorded ``(pred, group)`` pair becomes an explicit
        ID-function assembled from its per-block orderings (tid = index
        in the ordering; a prefix-limited recording yields the matching
        partial function).  Convenience for tests and oracles — for
        faithful replay with drift *diagnosis*, use
        :meth:`repro.core.engine.IdlogEngine.replay` instead, which also
        re-checks the recorded block digests.
        """
        from .idrelations import ordering_to_id_function
        orderings: dict[tuple[str, Grouping], list] = {}
        for record in log:
            key = (record.pred, frozenset(record.group))
            orderings.setdefault(key, []).append(record.ordering)
        table = {key: ordering_to_id_function(blocks)
                 for key, blocks in orderings.items()}
        for pred, group in log.groupings():
            table.setdefault((pred, frozenset(group)), {})
        return cls(table, fallback=fallback)

    def id_function(self, pred: str, group: Grouping,
                    base: Relation) -> IdFunction:
        chosen = self._table.get((pred, group))
        if chosen is not None:
            return chosen
        if self._fallback is not None:
            return self._fallback.id_function(pred, group, base)
        raise EvaluationError(
            f"no ID-function supplied for {pred}[{sorted(group)}]")
