"""IDLOG program wrapper: validation, slicing, and tid-bound analysis.

:class:`IdlogProgram` validates the syntactic restrictions of Section 2.2
(heads are ordinary atoms, safety, stratifiability with ID-literals counted
strict) and precomputes the *tid bounds* used by the Section 4 group-limit
optimization: when every occurrence of ``p[s]`` in the program constrains
its tid below some constant ``k`` (a constant tid, ``N < k``, ``N <= k-1``
or ``N = k-1``), the engine needs to materialize at most ``k`` tuples per
sub-relation — the paper's footnotes 6 and 7 ("the condition N < 2 ...
ensures that only two tuples of the relation emp will be used in the
evaluation").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..datalog.ast import Atom, Clause, Program
from ..datalog.parser import parse_program
from ..datalog.safety import check_program
from ..datalog.stratify import Stratification, stratify
from ..datalog.terms import Const, Var
from ..errors import SchemaError
from .idrelations import Grouping


def _tid_bound_from_literal(atom: Atom, tid_var: Var) -> Optional[int]:
    """The exclusive tid bound one comparison literal implies, if any."""
    if atom.group is not None or len(atom.args) != 2:
        return None
    left, right = atom.args
    if atom.pred == "<" and left == tid_var and isinstance(right, Const) \
            and isinstance(right.value, int):
        return right.value
    if atom.pred == "<=" and left == tid_var and isinstance(right, Const) \
            and isinstance(right.value, int):
        return right.value + 1
    if atom.pred == ">" and right == tid_var and isinstance(left, Const) \
            and isinstance(left.value, int):
        return left.value
    if atom.pred == ">=" and right == tid_var and isinstance(left, Const) \
            and isinstance(left.value, int):
        return left.value + 1
    if atom.pred == "=":
        if left == tid_var and isinstance(right, Const) \
                and isinstance(right.value, int):
            return right.value + 1
        if right == tid_var and isinstance(left, Const) \
                and isinstance(left.value, int):
            return left.value + 1
    return None


def _occurrence_bound(clause: Clause, id_atom: Atom) -> Optional[int]:
    """The exclusive tid bound of one ID-atom occurrence, if derivable."""
    tid_term = id_atom.args[-1]
    if isinstance(tid_term, Const):
        if not isinstance(tid_term.value, int):
            raise SchemaError(f"tid of {id_atom} must be of sort i")
        return tid_term.value + 1
    bounds = []
    for literal in clause.body:
        if not literal.positive or not isinstance(literal.atom, Atom):
            continue
        bound = _tid_bound_from_literal(literal.atom, tid_term)
        if bound is not None:
            bounds.append(bound)
    return min(bounds) if bounds else None


def compute_tid_limits(program: Program) -> dict[tuple[str, Grouping],
                                                 Optional[int]]:
    """Per (predicate, grouping), the max tids any occurrence can observe.

    Returns a mapping whose value is ``None`` when some occurrence is
    unbounded (full materialization required) and an integer ``k`` when
    every occurrence of ``p[s]`` only ever inspects tids below ``k``.
    """
    limits: dict[tuple[str, Grouping], Optional[int]] = {}
    seen_unbounded: set[tuple[str, Grouping]] = set()
    for clause in program.clauses:
        for literal in clause.body:
            atom = literal.atom
            if not isinstance(atom, Atom) or not atom.is_id:
                continue
            key = (atom.pred, atom.group)
            bound = _occurrence_bound(clause, atom)
            if bound is None:
                seen_unbounded.add(key)
                limits[key] = None
            elif key not in seen_unbounded:
                current = limits.get(key)
                limits[key] = bound if current is None else max(current, bound)
    return limits


@dataclass(frozen=True)
class IdlogProgram:
    """A validated IDLOG program.

    Attributes:
        program: The underlying clause set.
        stratification: Stratum assignment (ID-literals strict).
        tid_limits: Result of :func:`compute_tid_limits`.
    """

    program: Program
    stratification: Stratification
    tid_limits: dict[tuple[str, Grouping], Optional[int]]

    @classmethod
    def compile(cls, source: Union[str, Program],
                name: str = "program") -> "IdlogProgram":
        """Parse (if needed) and validate an IDLOG program.

        Raises:
            SchemaError: when the program uses choice operators (those
                belong to :mod:`repro.choice`).
            SafetyError: when some clause is unsafe.
            StratificationError: when the program is not stratified.
        """
        program = parse_program(source, name=name) \
            if isinstance(source, str) else source
        if program.has_choice():
            raise SchemaError(
                "IDLOG programs have no choice operator; translate with "
                "repro.choice first")
        check_program(program)
        return cls(program, stratify(program), compute_tid_limits(program))

    @property
    def input_predicates(self) -> frozenset[str]:
        """The EDB predicates (paper Section 3.1)."""
        return self.program.input_predicates

    @property
    def output_predicates(self) -> frozenset[str]:
        """The IDB predicates (paper Section 3.1)."""
        return self.program.head_predicates

    def restrict_to(self, query: str) -> "IdlogProgram":
        """The validated program portion ``P/query``."""
        return IdlogProgram.compile(self.program.restrict_to(query))

    def genericity_constants(self) -> frozenset[str]:
        """The constants ``C`` making every defined query C-generic."""
        return self.program.u_constants()
