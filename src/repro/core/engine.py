"""The IDLOG evaluation engine (the paper's Sections 2–3).

Evaluation of a stratified IDLOG program is stratum-by-stratum least
fixpoints, exactly like stratified Datalog, except that ID-relations are
materialized lazily: the first time a stratum's clause reads ``p[s]``, the
engine asks its :class:`~repro.core.assignment.AssignmentStrategy` for an
ID-function of the (complete, lower-stratum) relation ``p`` and installs the
resulting ID-relation.  Different strategies realize the language's
non-determinism:

* ``run`` — deterministic canonical assignment (repeatable),
* ``one`` — seeded random assignment: *one arbitrary answer* of the query,
* ``answers`` — exhaustive enumeration of the full answer set, branching
  over every ID-function at every stratum (exact on example-scale inputs;
  guarded against explosion).

The group-limit optimization (Section 4 / footnotes 6–7) is applied
automatically: when every use of ``p[s]`` bounds its tid below ``k``, only
``k`` tuples per sub-relation are materialized, and enumeration shrinks from
``∏ b!`` to ``∏ P(b, k)`` per block size ``b``.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import product
from time import perf_counter
from typing import Iterator, Optional, Union

from ..datalog.ast import Atom, Program
from ..datalog.database import Database, Relation
from ..datalog.engine import EvalResult
from ..datalog.executor import BATCH, BatchExecutor, check_engine_mode
from ..datalog.planner import ClausePlanner, check_plan_mode
from ..datalog.seminaive import (EvalStats, RelationStore, evaluate_stratum,
                                 prepare_store)
from ..datalog.trace import (EV_EVAL_END, EV_EVAL_START, EV_ID_CHOICE,
                             EV_ID_MATERIALIZED, Tracer, resolve_tracer)
from ..errors import EvaluationError, ReplayError
from .assignment import (AssignmentStrategy, CanonicalAssignment,
                         RandomAssignment)
from .choicelog import ChoiceLog, block_digest, choice_records
from .idrelations import (Grouping, count_id_functions,
                          enumerate_id_functions, make_id_relation,
                          sub_relations)
from .program import IdlogProgram


class _StrategyIdProvider:
    """IdProvider backed by an assignment strategy plus tid limits."""

    def __init__(self, strategy: AssignmentStrategy,
                 limits: dict[tuple[str, Grouping], Optional[int]],
                 use_limits: bool,
                 tracer: Optional[Tracer] = None,
                 record: Optional[ChoiceLog] = None) -> None:
        self._strategy = strategy
        self._limits = limits
        self._use_limits = use_limits
        self._tracer = tracer
        self._record = record
        #: Everything materialized so far (exposed on EvalResult).
        self.materialized: dict[tuple[str, Grouping], Relation] = {}

    def materialize(self, pred: str, group: Grouping,
                    base: Relation, stats: EvalStats) -> Relation:
        if self._tracer is not None:
            start = perf_counter()
        id_function = self._strategy.id_function(pred, group, base)
        limit = self._limits.get((pred, group)) if self._use_limits else None
        relation = make_id_relation(base, id_function, limit)
        stats.id_tuples += len(relation)
        self.materialized[(pred, group)] = relation
        # The no-record, no-tracer hot path ends here: the audit records
        # are only ever constructed when someone is listening.
        if self._record is not None or self._tracer is not None:
            if self._record is not None:
                records = self._record.record_assignment(
                    pred, group, base, id_function, limit)
            else:
                records = choice_records(pred, group, base, id_function,
                                         limit)
            if self._tracer is not None:
                for rec in records:
                    self._tracer.emit(EV_ID_CHOICE,
                                      **rec.as_event_fields())
        if self._tracer is not None:
            self._tracer.emit(
                EV_ID_MATERIALIZED, pred=pred, group=sorted(group),
                base_size=len(base), id_tuples=len(relation),
                tid_limit=limit, wall_s=perf_counter() - start)
        return relation


class _FixedIdProvider:
    """IdProvider returning pre-materialized relations (enumeration branches)."""

    def __init__(self, relations: dict[tuple[str, Grouping], Relation]) -> None:
        self._relations = relations

    def materialize(self, pred: str, group: Grouping,
                    base: Relation, stats: EvalStats) -> Relation:
        relation = self._relations.get((pred, group))
        if relation is None:
            raise EvaluationError(
                f"enumeration branch is missing the ID-relation for "
                f"{pred}[{sorted(group)}]")
        stats.id_tuples += len(relation)
        return relation


class ReplayIdProvider:
    """IdProvider re-applying a recorded :class:`ChoiceLog`.

    Deterministic replay with drift diagnosis: every block of every base
    relation is checked against the digest the log recorded.  When the
    database (or an earlier stratum's output) no longer matches, the
    raised :class:`~repro.errors.ReplayError` names the exact
    ``(pred, grouping, block)`` site and the expected vs. found digest —
    a replay never silently produces a different model.
    """

    def __init__(self, log: ChoiceLog,
                 tracer: Optional[Tracer] = None) -> None:
        self._log = log
        self._tracer = tracer
        #: Everything materialized so far (exposed on EvalResult).
        self.materialized: dict[tuple[str, Grouping], Relation] = {}

    def materialize(self, pred: str, group: Grouping,
                    base: Relation, stats: EvalStats) -> Relation:
        if self._tracer is not None:
            start = perf_counter()
        label = f"{pred}[{','.join(map(str, sorted(group)))}]"
        recorded = self._log.records_for(pred, group)
        blocks = sub_relations(base, group)
        if recorded is None:
            if blocks:
                raise ReplayError(
                    f"choice log holds no decision for {label} but the "
                    f"program needs one ({len(blocks)} block(s)); the "
                    "program or database gained an ID-relation the "
                    "recorded run never materialized")
            recorded = {}
        missing = sorted(set(recorded) - set(blocks), key=repr)
        extra = sorted(set(blocks) - set(recorded), key=repr)
        if missing or extra:
            bits = []
            if missing:
                bits.append("recorded block(s) no longer present: "
                            + ", ".join(map(repr, missing[:3]))
                            + ("…" if len(missing) > 3 else ""))
            if extra:
                bits.append("new block(s) absent from the log: "
                            + ", ".join(map(repr, extra[:3]))
                            + ("…" if len(extra) > 3 else ""))
            raise ReplayError(
                f"database drifted under {label}: " + "; ".join(bits))
        mapping: dict[tuple, int] = {}
        limit = self._log.limit_for(pred, group)
        for key in sorted(blocks, key=repr):
            rec = recorded[key]
            found = block_digest(blocks[key])
            if found != rec.block_digest:
                raise ReplayError(
                    f"database drifted under {label}: block {key!r} "
                    f"digests {found} but the log expected "
                    f"{rec.block_digest} (found {len(blocks[key])} "
                    f"tuple(s), recorded {rec.block_size})")
            members = set(blocks[key])
            for tid, row in enumerate(rec.ordering):
                if row not in members:
                    raise ReplayError(
                        f"choice log is corrupt: {label} block {key!r} "
                        f"ordering lists {row!r}, which is not in the "
                        "block despite a matching digest")
                mapping[row] = tid
        relation = make_id_relation(base, mapping, limit)
        stats.id_tuples += len(relation)
        self.materialized[(pred, group)] = relation
        if self._tracer is not None:
            for rec in sorted(recorded.values(), key=lambda r: repr(r.block)):
                self._tracer.emit(EV_ID_CHOICE, replayed=True,
                                  **rec.as_event_fields())
            self._tracer.emit(
                EV_ID_MATERIALIZED, pred=pred, group=sorted(group),
                base_size=len(base), id_tuples=len(relation),
                tid_limit=limit, replayed=True,
                wall_s=perf_counter() - start)
        return relation


class IdlogEngine:
    """Evaluator for stratified IDLOG programs.

    Example (the paper's Section 1 sampling query):
        >>> engine = IdlogEngine('''
        ...     select_two_emp(Name) :- emp[2](Name, Dept, N), N < 2.
        ... ''')
        >>> db = Database.from_facts({"emp": [
        ...     ("ann", "toys"), ("bob", "toys"), ("cal", "toys"),
        ...     ("dee", "it"), ("eli", "it")]})
        >>> sample = engine.one(db, seed=0).tuples("select_two_emp")
        >>> len(sample)
        4

    Args:
        program: IDLOG source text, a parsed :class:`Program`, or an
            already-compiled :class:`IdlogProgram`.
        use_group_limits: Apply the Section 4 tid-bound optimization
            (default on; turn off to measure its effect).
        plan: Body-literal planning mode — ``"greedy"`` (purely syntactic)
            or ``"cost"`` (cardinality-aware, see
            :mod:`repro.datalog.planner`).
        engine: Execution engine — ``"batch"`` (compiled set-oriented join
            pipelines, see :mod:`repro.datalog.executor`) or ``"interp"``
            (tuple-at-a-time reference interpreter).
        tracer: Optional span-event receiver (see
            :mod:`repro.datalog.trace`): :meth:`run`/:meth:`one` emit
            eval/stratum/clause/ID-materialization spans to it.  Defaults
            to the ambient tracer installed by
            :func:`repro.datalog.trace.use_tracer`.
        persistent_caches: Keep one :class:`ClausePlanner` and one
            :class:`BatchExecutor` alive *across* :meth:`run` /
            :meth:`one` / :meth:`replay` calls, so compiled plans and
            batch pipelines (keyed per clause) are reused from one
            evaluation to the next — the "prepared program" mode the
            long-lived server (:mod:`repro.server`) runs every session
            under.  Off by default: a persistent engine must not be used
            from several threads at once, and cost plans are re-costed
            (not discarded) when relation cardinalities drift between
            calls.
    """

    def __init__(self, program: Union[str, Program, IdlogProgram],
                 use_group_limits: bool = True,
                 plan: str = "greedy",
                 engine: str = BATCH,
                 tracer: Optional[Tracer] = None,
                 persistent_caches: bool = False) -> None:
        if isinstance(program, IdlogProgram):
            self.compiled = program
        else:
            self.compiled = IdlogProgram.compile(program)
        self.use_group_limits = use_group_limits
        self.plan = check_plan_mode(plan)
        self.engine = check_engine_mode(engine)
        self.tracer = tracer
        self.persistent_caches = persistent_caches
        self._planner: Optional[ClausePlanner] = None
        self._executor: Optional[BatchExecutor] = None

    def _make_executor(self, tracer: Optional[Tracer] = None,
                       ) -> Optional[BatchExecutor]:
        return BatchExecutor(tracer=tracer) if self.engine == BATCH else None

    def _pipeline_state(self, tracer: Optional[Tracer]
                        ) -> tuple[ClausePlanner, Optional[BatchExecutor]]:
        """The planner/executor pair for one evaluation.

        Fresh per call by default; with ``persistent_caches`` the same
        pair is handed out every time (tracer re-pointed per call), so
        plan and pipeline caches survive between evaluations.
        """
        if not self.persistent_caches:
            return (ClausePlanner(self.plan, tracer=tracer),
                    self._make_executor(tracer))
        if self._planner is None:
            self._planner = ClausePlanner(self.plan, tracer=tracer)
            self._executor = self._make_executor(tracer)
        self._planner.tracer = tracer
        if self._executor is not None:
            self._executor.tracer = tracer
        return self._planner, self._executor

    @property
    def program(self) -> Program:
        """The underlying clause set."""
        return self.compiled.program

    # -- single-model evaluation ------------------------------------------

    def run(self, db: Database,
            assignment: Optional[AssignmentStrategy] = None,
            record: Optional[ChoiceLog] = None) -> EvalResult:
        """Evaluate under one assignment (canonical by default).

        Returns one perfect model of the database program; with the default
        canonical strategy this is deterministic and repeatable.

        Args:
            db: Input database.
            assignment: Tid-assignment strategy (canonical by default).
            record: A :class:`~repro.core.choicelog.ChoiceLog` to fill
                with every ID-function decision the evaluation makes —
                the audit trail :meth:`replay` re-applies.
        """
        strategy = assignment or CanonicalAssignment()
        tracer = resolve_tracer(self.tracer)
        provider = _StrategyIdProvider(
            strategy, self.compiled.tid_limits, self.use_group_limits,
            tracer=tracer, record=record)
        return self._evaluate(db, provider, tracer)

    def replay(self, db: Database, log: ChoiceLog) -> EvalResult:
        """Re-evaluate under the ID choices a recorded log captured.

        Deterministic: the same database and program reproduce the
        recorded run's model exactly.  When the database drifted since
        recording, evaluation fails with a
        :class:`~repro.errors.ReplayError` naming the first block whose
        contents no longer match the recorded digest.
        """
        tracer = resolve_tracer(self.tracer)
        provider = ReplayIdProvider(log, tracer=tracer)
        return self._evaluate(db, provider, tracer)

    def _evaluate(self, db: Database, provider, tracer) -> EvalResult:
        stats = EvalStats()
        store = prepare_store(self.program, db, provider, stats)
        if tracer is not None:
            start = perf_counter()
            tracer.emit(EV_EVAL_START, program=self.program.name,
                        plan=self.plan, engine=self.engine,
                        strata=self.compiled.stratification.depth,
                        idlog=True)
        self._run_strata(store, stats, tracer)
        if tracer is not None:
            tracer.emit(EV_EVAL_END, program=self.program.name,
                        wall_s=perf_counter() - start,
                        derived=stats.total_derived, probes=stats.probes,
                        firings=stats.firings, iterations=stats.iterations,
                        id_tuples=stats.id_tuples)
        database = store.as_database(db.udomain | self.program.u_constants())
        return EvalResult(database, stats, dict(provider.materialized))

    def one(self, db: Database, seed: Optional[int] = None,
            record: Optional[ChoiceLog] = None) -> EvalResult:
        """Sample one answer: evaluate under a random assignment.

        Pass ``record`` to capture the drawn ID choices for later
        :meth:`replay` — the seeded sample becomes exactly reproducible
        even across interpreter versions and hash seeds.
        """
        return self.run(db, RandomAssignment(seed), record=record)

    def query(self, db: Database, pred: str,
              assignment: Optional[AssignmentStrategy] = None,
              ) -> frozenset[tuple]:
        """Evaluate under one assignment and project one predicate."""
        return self.run(db, assignment).tuples(pred)

    def _run_strata(self, store: RelationStore, stats: EvalStats,
                    tracer: Optional[Tracer] = None) -> None:
        planner, executor = self._pipeline_state(tracer)
        heads = self.program.head_predicates
        for level, stratum in enumerate(self.compiled.stratification.strata):
            stratum_heads = frozenset(stratum & heads)
            clauses = tuple(c for c in self.program.clauses
                            if c.head.pred in stratum_heads)
            if clauses:
                evaluate_stratum(clauses, stratum_heads, store, stats,
                                 planner=planner, executor=executor,
                                 tracer=tracer, stratum=level)

    # -- answer-set enumeration --------------------------------------------

    def answers(self, db: Database, pred: str,
                max_branches: int = 200_000,
                slice_program: bool = True) -> frozenset[frozenset[tuple]]:
        """The exact answer set of the query ``pred`` on ``db``.

        Enumerates every combination of ID-functions (branching per stratum,
        because lower-stratum contents may depend on earlier choices) and
        collects the distinct values of ``pred``.  This realizes the paper's
        definition ``q(r) = {q^M : M ∈ PERF_D}``.

        Args:
            db: Input database.
            pred: Output predicate to project.
            max_branches: Abort (with :class:`EvaluationError`) after this
                many enumeration leaves — non-determinism can be factorial.
            slice_program: Evaluate only the program portion ``P/pred``
                (the paper's dbp construction); avoids branching on
                ID-functions irrelevant to the query.

        Returns:
            A frozenset of relations (each a frozenset of tuples).
        """
        snapshots = self.answer_relations(db, (pred,), max_branches,
                                          slice_program)
        return frozenset(snapshot[0] for snapshot in snapshots)

    def answer_relations(self, db: Database, preds: tuple[str, ...],
                         max_branches: int = 200_000,
                         slice_program: bool = True,
                         ) -> frozenset[tuple[frozenset[tuple], ...]]:
        """Joint answer set over several output predicates.

        Each element is a tuple of relations, one per requested predicate,
        arising from a single perfect model — so correlations between output
        predicates (e.g. man/woman partitioning person) are preserved.
        """
        compiled = self.compiled
        if slice_program:
            program = self.program
            related: set[str] = set()
            for pred in preds:
                related |= program.related_to(pred)
            sliced = Program(
                tuple(c for c in program.clauses if c.head.pred in related),
                name=f"{program.name}/{'+'.join(preds)}")
            compiled = IdlogProgram.compile(sliced)
        results = set()
        budget = [max_branches]
        for relations, _, _ in self._enumerate_models(compiled, db, budget):
            snapshot = tuple(
                relations[p].frozen() if p in relations else frozenset()
                for p in preds)
            results.add(snapshot)
        return frozenset(results)

    def answer_probabilities(self, db: Database, pred: str,
                             max_branches: int = 200_000,
                             slice_program: bool = True,
                             ) -> dict[frozenset[tuple], Fraction]:
        """The EXACT probability of every answer under uniform tids.

        Each (predicate, grouping) pair draws its ID-function uniformly;
        the probability of an answer is the total weight of the
        enumeration leaves producing it (leaves within one branch node are
        equally likely; prefix-limited classes partition the full space
        evenly).  The returned probabilities sum to exactly 1 — they are
        :class:`fractions.Fraction` values, not floats.

        This is what ``IdlogQuery.answer_distribution`` estimates by
        sampling; the E4/E5-style sampling queries come out uniform.
        """
        compiled = self.compiled
        if slice_program:
            sliced = self.program.restrict_to(pred)
            compiled = IdlogProgram.compile(sliced)
        budget = [max_branches]
        probabilities: dict[frozenset[tuple], Fraction] = {}
        for relations, _, weight in self._enumerate_models(
                compiled, db, budget):
            answer = relations[pred].frozen() if pred in relations \
                else frozenset()
            probabilities[answer] = probabilities.get(
                answer, Fraction(0)) + weight
        return probabilities

    def count_models(self, db: Database, max_branches: int = 200_000) -> int:
        """Number of enumeration leaves (assignment combinations) on ``db``.

        An upper bound on (and usually far above) the number of distinct
        answers.
        """
        budget = [max_branches]
        return sum(1 for _ in self._enumerate_models(
            self.compiled, db, budget))

    def _enumerate_models(
            self, compiled: IdlogProgram, db: Database, budget: list[int],
    ) -> Iterator[tuple[dict[str, Relation],
                        dict[tuple[str, Grouping], Relation], Fraction]]:
        """Yield every perfect model of the program on ``db``.

        Walks strata in order; before evaluating stratum ``k``, branches on
        every ID-function of every (pred, group) pair first needed there.
        Yields (relations, chosen ID-relations, weight) per model: the
        first dict maps predicate names to their final relations (shared
        EDB relations included); the second maps each (predicate,
        grouping) pair to the ID-relation the model's interpretation
        assigns it; the weight is the model's exact probability under
        uniformly random ID-functions (weights sum to 1).
        """
        program = compiled.program
        stats = EvalStats()
        store = prepare_store(program, db, _FixedIdProvider({}), stats)
        relations = {name: store.relation(name)
                     for name in program.predicates}
        heads = program.head_predicates
        strata = compiled.stratification.strata

        # Each ID-predicate gets exactly ONE ID-relation per interpretation,
        # so a (pred, group) pair is branched on at its first-use stratum
        # only; the chosen relation is carried to later strata.
        assigned: set[tuple[str, Grouping]] = set()
        needed_per_stratum = []
        for stratum in strata:
            needed: set[tuple[str, Grouping]] = set()
            for clause in program.clauses:
                if clause.head.pred not in stratum:
                    continue
                for literal in clause.body:
                    atom = literal.atom
                    if isinstance(atom, Atom) and atom.is_id:
                        key = (atom.pred, atom.group)
                        if key not in assigned:
                            needed.add(key)
                            assigned.add(key)
            needed_per_stratum.append(sorted(needed))

        # One plan cache (and one compiled-pipeline cache) for the whole
        # enumeration: branches share clause identities, the cost mode's
        # staleness check absorbs the cardinality drift between branches,
        # and pipelines resolve relations at run time so they are
        # branch-independent.
        tracer = resolve_tracer(self.tracer)
        planner = ClausePlanner(self.plan, tracer=tracer)
        executor = self._make_executor(tracer)
        yield from self._branch(compiled, relations, heads, strata, 0,
                                needed_per_stratum, budget, {},
                                Fraction(1), planner, executor, tracer)

    def _branch(self, compiled: IdlogProgram,
                relations: dict[str, Relation], heads: frozenset[str],
                strata, k: int, needed_per_stratum, budget: list[int],
                chosen: dict[tuple[str, Grouping], Relation],
                weight: Fraction, planner: ClausePlanner,
                executor: Optional[BatchExecutor],
                tracer: Optional[Tracer] = None,
                ) -> Iterator[tuple]:
        program = compiled.program
        if k == len(strata):
            budget[0] -= 1
            if budget[0] < 0:
                raise EvaluationError(
                    "answer-set enumeration exceeded max_branches; the "
                    "input is too non-deterministic to enumerate exactly — "
                    "raise max_branches or sample with one()")
            yield relations, chosen, weight
            return

        stratum_heads = frozenset(strata[k] & heads)
        clauses = tuple(c for c in program.clauses
                        if c.head.pred in stratum_heads)
        needed = needed_per_stratum[k]

        choice_spaces = []
        for pred, group in needed:
            base = relations[pred]
            limit = compiled.tid_limits.get((pred, group)) \
                if self.use_group_limits else None
            count = count_id_functions(base, group, limit)
            if count > max(budget[0], 1):
                raise EvaluationError(
                    f"{count} ID-functions for {pred}[{sorted(group)}] "
                    "exceed the enumeration budget; raise max_branches or "
                    "sample with one()")
            choice_spaces.append([
                make_id_relation(base, fn, limit)
                for fn in enumerate_id_functions(base, group, limit)])

        branch_weight = weight
        for space in choice_spaces:
            branch_weight /= len(space)
        for combo in product(*choice_spaces) if choice_spaces else [()]:
            branch_relations = {
                name: (rel.copy() if name in heads else rel)
                for name, rel in relations.items()}
            branch_chosen = dict(chosen)
            branch_chosen.update(zip(needed, combo))
            stats = EvalStats()
            provider = _FixedIdProvider(branch_chosen)
            store = RelationStore(provider, stats)
            for name, rel in branch_relations.items():
                store.install(name, rel)
            if clauses:
                evaluate_stratum(clauses, stratum_heads, store, stats,
                                 planner=planner, executor=executor,
                                 tracer=tracer, stratum=k)
            yield from self._branch(compiled, branch_relations, heads,
                                    strata, k + 1, needed_per_stratum,
                                    budget, branch_chosen, branch_weight,
                                    planner, executor, tracer)
