"""Database programs ``dbp(P, q, r)`` (the paper's Section 3.1).

Given a program ``P``, an output predicate ``q`` and an input database
``r`` over u-domain ``D = {d1, ..., dm}``, the paper evaluates the query
against the *database program*::

    dbp(P, q, r) = P/q  ∪  { p_j(t) : t ∈ r_j, p_j appears in P/q }
                        ∪  { udom(d_i) : i = 1..m }

together with the unique-name and domain-closure axioms.  Inlining the
facts makes the program self-contained, and the ``udom`` relation gives
clauses access to the domain closure (used e.g. by the Definition 1
rewrite in experiment E7).

This module constructs that object explicitly; the engines accept it like
any other program (it simply has an empty EDB).
"""

from __future__ import annotations

from typing import Union

from ..datalog.ast import Clause, Program, fact
from ..datalog.database import Database
from ..datalog.parser import parse_program
from ..errors import SchemaError

UDOM_PREDICATE = "udom"
"""The reserved name of the domain-closure predicate."""


def database_program(program: Union[str, Program], query: str,
                     db: Database) -> Program:
    """Build ``dbp(P, query, db)``.

    Args:
        program: The program ``P`` (source text or parsed).
        query: The output predicate.
        db: The input database; its relations for the slice's input
            predicates are inlined as facts and its u-domain becomes the
            ``udom`` relation.

    Returns:
        A self-contained program: the ``P/query`` slice, one fact clause
        per input tuple, and one ``udom`` fact per domain element.

    Raises:
        SchemaError: when ``P`` already defines the reserved ``udom``
            predicate with clauses that would clash with the generated
            facts.
    """
    if isinstance(program, str):
        program = parse_program(program)
    sliced = program.restrict_to(query)
    if UDOM_PREDICATE in sliced.head_predicates:
        raise SchemaError(
            f"{UDOM_PREDICATE} is reserved for the domain-closure facts "
            "of database programs")

    facts: list[Clause] = []
    for name in sorted(sliced.input_predicates):
        if name == UDOM_PREDICATE or name not in db:
            continue
        for row in sorted(db.relation(name), key=lambda r: tuple(map(repr, r))):
            facts.append(fact(name, *row))
    for constant in sorted(db.udomain):
        facts.append(fact(UDOM_PREDICATE, constant))

    return Program(sliced.clauses + tuple(facts),
                   name=f"dbp({program.name},{query})")


def strip_database_program(program: Program) -> tuple[Program, Database]:
    """Invert :func:`database_program`: split fact clauses back out.

    Returns:
        (rules-only program, database built from the fact clauses).
        ``udom`` facts become the returned database's declared u-domain.
    """
    rules: list[Clause] = []
    db = Database()
    udomain: set[str] = set()
    for clause in program.clauses:
        if clause.is_fact:
            values = tuple(term.value for term in clause.head.args)  # type: ignore[union-attr]
            if clause.head.pred == UDOM_PREDICATE and len(values) == 1 \
                    and isinstance(values[0], str):
                udomain.add(values[0])
            else:
                db.add_fact(clause.head.pred, values)
        else:
            rules.append(clause)
    stripped = Database({n: db.relation(n) for n in db.relation_names()},
                        udomain=udomain or None)
    return Program(tuple(rules), name=program.name), stripped
