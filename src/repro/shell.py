"""An interactive IDLOG shell.

Line-oriented: typed clauses (ending in ``.``) extend the current program;
``?- goal.`` queries it; dot-commands manage state::

    idlog> emp(ann, toys).            % ground fact -> into the database
    idlog> two(N) :- emp[2](N, D, T), T < 2.
    idlog> ?- two(N).
    idlog> .answers two
    idlog> .one two 7
    idlog> .explain
    idlog> .help

The shell is a plain object around ``handle_line`` so it is scriptable and
testable; ``repro-idlog`` users get it via ``python -m repro.shell``.
"""

from __future__ import annotations

import sys
from typing import Optional, TextIO

from .choice import ChoiceEngine
from .core import IdlogEngine
from .datalog.ast import Clause, Program
from .datalog.database import Database
from .datalog.explain import explain_program
from .datalog.parser import parse_atom, parse_clause, parse_program
from .datalog.terms import Const
from .errors import ReproError

_HELP = """\
commands:
  <clause>.             add a rule (ground facts go to the database)
  ?- <atom>.            query: print matching tuples (canonical model)
  .answers <pred> [N]   the exact answer set (budget N, default 10000)
  .one <pred> [seed]    one arbitrary answer
  .record <file> [seed] draw one answer, logging every ID choice to file
  .replay <file>        re-apply a recorded choice log (detects drift)
  .load <file>          load clauses from a file
  .facts <file>         load ground facts from a file
  .save <dir>           save the database to a directory (CSV + schema)
  .open <dir>           load a database saved with .save
  .program              show the current program
  .db                   show the database summary
  .stats                memory report: rows, bytes/tuple, interning ratio
  .explain              show the evaluation plan
  .why <fact>.          show a derivation tree for a ground fact
  .lint                 report likely mistakes / optimization hints
  .clear                forget program and database
  .help                 this text
  .quit                 leave"""


class Shell:
    """State and command dispatch for the interactive shell."""

    def __init__(self, out: Optional[TextIO] = None) -> None:
        self.out = out or sys.stdout
        self.clauses: list[Clause] = []
        self.db = Database()

    # -- helpers -----------------------------------------------------------

    def _print(self, text: str) -> None:
        print(text, file=self.out)

    def _program(self) -> Program:
        return Program(tuple(self.clauses), name="session")

    def _engine(self):
        program = self._program()
        if program.has_choice():
            return ChoiceEngine(program)
        return IdlogEngine(program)

    def _rows(self, rows) -> None:
        if not rows:
            self._print("  (empty)")
            return
        for row in sorted(rows, key=lambda r: tuple(map(repr, r))):
            self._print("  " + ", ".join(map(str, row)))

    # -- commands ----------------------------------------------------------

    def handle_line(self, line: str) -> bool:
        """Process one input line; returns False when the shell should
        exit.  Errors are printed, never raised."""
        line = line.strip()
        if not line or line.startswith("%"):
            return True
        try:
            if line.startswith("."):
                return self._command(line)
            if line.startswith("?-"):
                self._query(line[2:].strip().rstrip("."))
                return True
            self._add_clause(line)
            return True
        except (ReproError, OSError) as exc:
            self._print(f"error: {exc}")
            return True

    def _command(self, line: str) -> bool:
        parts = line.split()
        name, args = parts[0], parts[1:]
        if name == ".quit":
            return False
        if name == ".help":
            self._print(_HELP)
        elif name == ".clear":
            self.clauses = []
            self.db = Database()
            self._print("cleared")
        elif name == ".program":
            if self.clauses:
                for clause in self.clauses:
                    self._print(str(clause))
            else:
                self._print("(no clauses)")
        elif name == ".db":
            names = sorted(self.db.relation_names())
            if not names:
                self._print("(empty database)")
            for rel_name in names:
                relation = self.db.relation(rel_name)
                self._print(f"{rel_name}/{relation.arity}: "
                            f"{len(relation)} tuple(s)")
        elif name == ".stats":
            self._stats()
        elif name == ".explain":
            program = self._program()
            if program.has_choice():
                from .choice import choice_to_idlog
                program = choice_to_idlog(program).program
            self._print(explain_program(program))
        elif name == ".load":
            self._load(args, facts_only=False)
        elif name == ".facts":
            self._load(args, facts_only=True)
        elif name == ".save":
            from .datalog.storage import save_database
            if len(args) != 1:
                self._print("usage: .save <dir>")
            else:
                save_database(self.db, args[0])
                self._print(f"saved {len(self.db.relation_names())} "
                            f"relation(s) to {args[0]}")
        elif name == ".open":
            from .datalog.storage import load_database
            if len(args) != 1:
                self._print("usage: .open <dir>")
            else:
                self.db = load_database(args[0])
                self._print(f"opened {len(self.db.relation_names())} "
                            f"relation(s) from {args[0]}")
        elif name == ".lint":
            from .datalog.lint import lint
            findings = lint(self._program())
            if not findings:
                self._print("clean: no findings")
            for finding in findings:
                self._print(str(finding))
        elif name == ".why":
            self._why(line[len(".why"):].strip())
        elif name == ".answers":
            self._answers(args)
        elif name == ".one":
            self._one(args)
        elif name == ".record":
            self._record(args)
        elif name == ".replay":
            self._replay(args)
        else:
            self._print(f"unknown command {name} (try .help)")
        return True

    def _stats(self) -> None:
        report = self.db.stats()
        if not report["relations"]:
            self._print("(empty database)")
            return
        for rel_name in sorted(report["relations"]):
            info = report["relations"][rel_name]
            self._print(
                f"{rel_name}/{info['arity']}: rows={info['rows']} "
                f"indexes={info['indexes']} "
                f"index_buckets={info['index_buckets']} "
                f"approx_bytes={info['approx_bytes']} "
                f"bytes_per_tuple={info['bytes_per_tuple']}")
        self._print(f"total: rows={report['total_rows']} "
                    f"approx_bytes={report['total_approx_bytes']} "
                    f"logical_bytes={report['total_logical_bytes']} "
                    f"udomain={report['udomain_size']}")
        self._print(f"pool: constants={report['pool_constants']} "
                    f"approx_bytes={report['pool_approx_bytes']} "
                    f"interning_ratio={report['interning_ratio']}")

    def _add_clause(self, line: str) -> None:
        clause = parse_clause(line)
        if clause.is_fact:
            row = tuple(t.value for t in clause.head.args
                        if isinstance(t, Const))
            self.db.add_fact(clause.head.pred, row)
            self._print(f"fact added to {clause.head.pred}")
        else:
            self.clauses.append(clause)
            self._print("rule added")

    def _load(self, args: list[str], facts_only: bool) -> None:
        if len(args) != 1:
            self._print("usage: .load/.facts <file>")
            return
        with open(args[0]) as handle:
            program = parse_program(handle.read())
        added_rules = added_facts = 0
        for clause in program.clauses:
            if clause.is_fact:
                row = tuple(t.value for t in clause.head.args)  # type: ignore[union-attr]
                self.db.add_fact(clause.head.pred, row)
                added_facts += 1
            elif facts_only:
                self._print(f"error: {args[0]} contains a rule: {clause}")
                return
            else:
                self.clauses.append(clause)
                added_rules += 1
        self._print(f"loaded {added_rules} rule(s), {added_facts} fact(s)")

    def _why(self, goal_text: str) -> None:
        from .datalog.provenance import Explainer, format_tree
        program = self._program()
        if program.has_choice():
            self._print("error: .why does not support choice programs "
                        "(translate with choice_to_idlog first)")
            return
        goal = parse_atom(goal_text.rstrip("."))
        if goal.vars:
            self._print("usage: .why <ground fact>.  e.g. .why path(a, c).")
            return
        from repro.core import IdlogEngine
        result = IdlogEngine(program).run(self.db)
        row = tuple(t.value for t in goal.args)  # type: ignore[union-attr]
        explainer = Explainer(program, result.database,
                              result.id_relations)
        self._print(format_tree(explainer.explain(goal.pred, row)))

    def _query(self, goal_text: str) -> None:
        goal = parse_atom(goal_text)
        program = self._program()
        if goal.pred in program.predicates:
            rows = self._engine().run(self.db).tuples(goal.pred)
        else:
            # Pure EDB query: no rule mentions the predicate.
            rows = self.db.relation_or_empty(
                goal.pred, len(goal.args)).frozen()
        matching = [
            row for row in rows
            if all(not isinstance(t, Const) or t.value == v
                   for t, v in zip(goal.args, row))]
        self._print(f"{goal.pred}: {len(matching)} tuple(s)")
        self._rows(matching)

    def _answers(self, args: list[str]) -> None:
        if not args:
            self._print("usage: .answers <pred> [budget]")
            return
        pred = args[0]
        budget = int(args[1]) if len(args) > 1 else 10_000
        answers = self._engine().answers(self.db, pred, budget)
        self._print(f"{pred}: {len(answers)} possible answer(s)")
        for i, answer in enumerate(
                sorted(answers, key=lambda a: sorted(map(repr, a)))):
            self._print(f" answer {i + 1}:")
            self._rows(answer)

    def _one(self, args: list[str]) -> None:
        if not args:
            self._print("usage: .one <pred> [seed]")
            return
        pred = args[0]
        seed = int(args[1]) if len(args) > 1 else None
        result = self._engine().one(self.db, seed=seed)
        rows = result.tuples(pred)
        self._print(f"{pred}: {len(rows)} tuple(s)")
        self._rows(rows)

    def _idlog_engine(self) -> Optional[IdlogEngine]:
        """The IDLOG engine of the session, or None for choice programs
        (record/replay needs the translated program, not the front end)."""
        program = self._program()
        if program.has_choice():
            self._print("error: record/replay applies to Datalog/IDLOG "
                        "sessions; translate the choice program first")
            return None
        return IdlogEngine(program)

    def _record(self, args: list[str]) -> None:
        if not args or len(args) > 2:
            self._print("usage: .record <file> [seed]")
            return
        engine = self._idlog_engine()
        if engine is None:
            return
        from .core.choicelog import ChoiceLog
        seed = int(args[1]) if len(args) > 1 else None
        log = ChoiceLog(meta={"program": "session", "seed": seed})
        result = engine.one(self.db, seed=seed, record=log)
        preds = sorted(engine.program.head_predicates)
        log.set_answers({pred: result.tuples(pred) for pred in preds})
        log.save(args[0])
        self._print(f"recorded {len(log)} ID choice(s) and "
                    f"{len(preds)} answer predicate(s) to {args[0]}")
        for pred in preds:
            rows = result.tuples(pred)
            self._print(f"{pred}: {len(rows)} tuple(s)")
            self._rows(rows)

    def _replay(self, args: list[str]) -> None:
        if len(args) != 1:
            self._print("usage: .replay <file>")
            return
        engine = self._idlog_engine()
        if engine is None:
            return
        from .core.choicelog import ChoiceLog
        log = ChoiceLog.load(args[0])
        result = engine.replay(self.db, log)
        mismatched = [pred for pred in sorted(log.answers)
                      if frozenset(result.tuples(pred))
                      != log.answer_tuples(pred)]
        for pred in sorted(engine.program.head_predicates):
            rows = result.tuples(pred)
            self._print(f"{pred}: {len(rows)} tuple(s)")
            self._rows(rows)
        if mismatched:
            self._print(
                f"warning: answers differ from the recorded run for "
                f"{', '.join(mismatched)} — program or database changed")
        else:
            self._print(f"replayed {len(log)} ID choice(s); answers match "
                        "the recorded run")

    # -- driver ------------------------------------------------------------

    def run(self, stream: Optional[TextIO] = None,
            prompt: str = "idlog> ") -> None:
        """Read-eval-print until EOF or ``.quit``."""
        interactive = stream is None
        stream = stream or sys.stdin
        while True:
            if interactive:
                self.out.write(prompt)
                self.out.flush()
            line = stream.readline()
            if not line:
                return
            if not self.handle_line(line):
                return


def main() -> int:  # pragma: no cover - interactive entry point
    print("IDLOG shell — .help for commands, .quit to leave")
    Shell().run()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
