"""The server's synchronous core: sessions, prepared programs, handlers.

:class:`IdlogService` is everything the IDLOG server does *minus* the
transport: it owns the per-session :class:`~repro.datalog.database.Database`
objects, the prepared-program cache, the metrics registry, and one
handler per request type.  The asyncio layer
(:mod:`repro.server.server`) is a thin shell that frames NDJSON lines,
schedules :meth:`IdlogService.handle` onto a bounded worker pool, and
adds the two transport-level request types (``cancel``, ``shutdown``).

Keeping the core synchronous buys two things:

* **In-process use** — tests (and the serve-vs-in-process differential)
  drive the exact handler code without sockets:
  ``IdlogService().handle({"type": "ping"})``.
* **Honest concurrency** — evaluation is CPU-bound Python; the service
  documents its locking (one :class:`threading.Lock` per session, one
  registry lock) instead of pretending the event loop parallelizes it.

Session isolation: every session owns its database, its prepared
programs, and its ID-choice sequence numbers; two sessions never share
mutable state, so requests of *different* sessions run concurrently on
the worker pool while requests of one session serialize on its lock.

Prepared programs: ``prepare`` compiles (parse + safety + stratify +
plan scaffolding) once and keeps an :class:`~repro.core.IdlogEngine`
with ``persistent_caches=True`` alive, so later ``run`` calls reuse the
compiled clause pipelines and plans (their caches are keyed per clause).
Inline ``run {"program": ...}`` requests get the same treatment through
a source-hash cache — the second identical inline program is a cache
hit, visible in ``stats.pipelines_reused`` and the
``idlog_server_prepared_cache_total`` metric.
"""

from __future__ import annotations

import collections
import hashlib
import io
import json
import os
import threading
import time
from dataclasses import dataclass, field as dataclass_field
from time import perf_counter
from typing import Optional

from ..core import IdlogEngine
from ..core.choicelog import ChoiceLog
from ..datalog.database import Database
from ..datalog.executor import check_engine_mode
from ..datalog.metrics import MetricsRegistry, MetricsTracer
from ..datalog.parser import parse_program
from ..datalog.planner import check_plan_mode
from ..datalog.storage import STORAGE_FORMAT, load_database, save_database
from ..datalog.trace import (MISESTIMATE_THRESHOLD, SCHEMA_VERSION,
                             ContextTracer, JsonTracer, TeeTracer,
                             TimingTracer)
from ..obs.log import StructuredLogger, check_log_level
from .protocol import (PROTOCOL_VERSION, REQUEST_TYPES, RequestError,
                       field, positive_number)

#: Request-latency histogram buckets: 100µs .. 100s by decades — server
#: round trips sit well above the engine's clause-level buckets.
_REQUEST_BUCKETS = (1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0)


@dataclass
class ServerConfig:
    """Knobs for :class:`IdlogService` and the asyncio transport.

    Attributes:
        plan: Default planning mode for new sessions (``greedy``/``cost``).
        engine: Default execution engine (``batch``/``interp``).
        workers: Worker-pool threads; also the bound on concurrently
            *executing* requests (excess requests queue).
        timeout_s: Default per-request timeout (None = unlimited);
            individual requests may pass a smaller ``timeout``.
        drain_s: Graceful-shutdown drain budget for in-flight requests.
        metrics_path: When set, the transport flushes the metrics
            registry here in a ``finally:`` on shutdown — a killed
            server still leaves a valid export (the PR-4/PR-5 contract).
        metrics_format: ``prom`` or ``json`` for ``metrics_path``.
        choice_log_dir: When set, every ``run {"record": true}`` also
            saves its choice log as
            ``<dir>/<session>-<seq>.choices.jsonl`` at request
            completion, so a mid-request kill leaves all *completed*
            requests' logs valid on disk.
        max_sessions: Open-session cap (a garbage client cannot OOM the
            server by opening sessions in a loop).
        slow_ms: Slow-query threshold in milliseconds (None disables
            slow capture).  A ``run``/``answers``-class request at or
            over the threshold lands in the in-memory slow log (the
            ``slowlog`` request type) and, when ``slow_log_path`` is
            set, is appended to that JSONL file with its per-clause
            profile and choice-log digest.  Setting it also turns on
            per-request tracing (profile + digest) for every ``run``,
            which costs a few percent of evaluation wall time.
        slow_log_path: JSONL file slow-request entries append to.
        recent_requests: Ring-buffer capacity for the ``recent``
            introspection request.
        log_path: Structured-log sink (JSONL); None logs to stderr.
        log_level: Threshold for the structured log
            (``debug``/``info``/``warning``/``error``).  The quiet
            default keeps in-process/test servers silent; ``repro-idlog
            serve`` defaults to ``info``.
    """

    plan: str = "greedy"
    engine: str = "batch"
    workers: int = 4
    timeout_s: Optional[float] = None
    drain_s: float = 5.0
    metrics_path: Optional[str] = None
    metrics_format: str = "prom"
    choice_log_dir: Optional[str] = None
    max_sessions: int = 256
    slow_ms: Optional[float] = None
    slow_log_path: Optional[str] = None
    recent_requests: int = 128
    log_path: Optional[str] = None
    log_level: str = "warning"

    def __post_init__(self) -> None:
        self.plan = check_plan_mode(self.plan)
        self.engine = check_engine_mode(self.engine)
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.metrics_format not in ("prom", "json"):
            raise ValueError(
                f"metrics_format must be prom or json, "
                f"got {self.metrics_format!r}")
        if self.slow_ms is not None and self.slow_ms < 0:
            raise ValueError("slow_ms must be >= 0 (or None to disable)")
        if self.recent_requests < 1:
            raise ValueError("recent_requests must be >= 1")
        self.log_level = check_log_level(self.log_level)


@dataclass
class RequestContext:
    """Identity and timings of one request, threaded transport → engine.

    The transport (:mod:`repro.server.server`) mints one per dispatched
    request via :meth:`IdlogService.new_context`; :meth:`IdlogService.handle`
    stamps queue/handler timings and the evaluation handlers fill in
    attribution (session, prepared program, counters, per-clause
    profile, choice-log digest).  :meth:`IdlogService.observe` folds the
    finished context into the recent-request ring buffer and — past the
    ``slow_ms`` threshold — the slow-query log.  In-process callers may
    omit it; :meth:`~IdlogService.handle` then mints a local one.

    Attributes:
        request_id: Server-assigned id (``r<n>``), unique per service;
            also returned in ``run`` responses and stamped (with the
            session id) on every span event via
            :class:`~repro.datalog.trace.ContextTracer`.
        wire_id: The client-chosen ``id`` field, echoed for correlation.
        enqueued_s/started_s: ``perf_counter`` at transport dispatch /
            handler start; their difference is the worker-queue wait.
    """

    request_id: str
    rtype: str
    wire_id: object = None
    ts: float = 0.0
    enqueued_s: float = 0.0
    started_s: float = 0.0
    queue_s: float = 0.0
    wall_s: float = 0.0
    status: str = "pending"
    session: Optional[str] = None
    prepared: Optional[str] = None
    counters: Optional[dict] = None
    answers: Optional[dict] = None
    profile: Optional[dict] = dataclass_field(default=None, repr=False)
    choice_digest: Optional[str] = None
    #: Compact plan-quality roll-up (median/max q-error, misestimate and
    #: plan-drift counts, worst clause) — small enough for the ring.
    plan_quality: Optional[dict] = None

    def summary(self) -> dict:
        """The JSON-ready ring-buffer row (profile excluded: bulky)."""
        return {
            "request_id": self.request_id,
            "id": self.wire_id,
            "type": self.rtype,
            "session": self.session,
            "prepared": self.prepared,
            "status": self.status,
            "ts": round(self.ts, 3),
            "wall_ms": round(self.wall_s * 1000.0, 3),
            "queue_ms": round(self.queue_s * 1000.0, 3),
            "counters": self.counters,
            "answers": self.answers,
            "choice_digest": self.choice_digest,
            "plan_quality": self.plan_quality,
        }


class PreparedProgram:
    """One compiled program held resident for a session.

    The engine is constructed with ``persistent_caches=True`` so its
    clause pipelines and plans survive between ``run`` calls — that
    reuse (not the parse) is what makes preparing worth a round trip.
    """

    def __init__(self, name: str, source: str, plan: str,
                 engine_mode: str, tracer) -> None:
        program = parse_program(source, name=name)
        if program.has_choice():
            raise RequestError(
                "bad_request",
                "choice programs are not served over the wire; translate "
                "to IDLOG first (repro-idlog explain shows the "
                "translation)")
        self.name = name
        self.source = source
        self.plan = plan
        self.engine_mode = engine_mode
        self.engine = IdlogEngine(program, plan=plan, engine=engine_mode,
                                  tracer=tracer, persistent_caches=True)
        self.uses = 0

    def describe(self) -> dict:
        program = self.engine.program
        return {
            "name": self.name,
            "clauses": len(program.clauses),
            "strata": self.engine.compiled.stratification.depth,
            "outputs": sorted(program.head_predicates),
            "inputs": sorted(program.input_predicates),
            "plan": self.plan,
            "engine": self.engine_mode,
            "uses": self.uses,
        }


class Session:
    """One client session: a private database plus prepared programs."""

    def __init__(self, session_id: str, plan: str, engine_mode: str) -> None:
        self.id = session_id
        self.plan = plan
        self.engine_mode = engine_mode
        self.db = Database()
        self.udom: set[str] = set()
        self.programs: dict[str, PreparedProgram] = {}
        self.seq = 0
        #: Serializes evaluation within the session — prepared engines
        #: (persistent caches) are not safe for concurrent use.
        self.lock = threading.Lock()


class IdlogService:
    """Session registry + request handlers (everything but the sockets).

    >>> service = IdlogService()
    >>> service.handle({"type": "ping"})["pong"]
    True
    """

    def __init__(self, config: Optional[ServerConfig] = None,
                 registry: Optional[MetricsRegistry] = None) -> None:
        self.config = config or ServerConfig()
        self.registry = registry or MetricsRegistry()
        #: Folds engine span events (idlog_* families) into the registry.
        self.tracer = MetricsTracer(self.registry)
        self._sessions: dict[str, Session] = {}
        self._lock = threading.Lock()
        self._next_session = 0
        r = self.registry
        self.m_requests = r.counter(
            "idlog_server_requests_total",
            "Requests served, by type and outcome ('ok' or an error type)",
            labels=("type", "status"))
        self.m_request_seconds = r.histogram(
            "idlog_server_request_seconds",
            "Wall time per served request", buckets=_REQUEST_BUCKETS)
        self.m_sessions = r.gauge(
            "idlog_server_sessions", "Sessions currently open")
        self.m_sessions_total = r.counter(
            "idlog_server_sessions_total", "Sessions ever opened")
        self.m_prepared = r.gauge(
            "idlog_server_prepared_programs",
            "Prepared programs resident across all sessions")
        self.m_prepared_cache = r.counter(
            "idlog_server_prepared_cache_total",
            "Prepared-program cache lookups", labels=("result",))
        self.m_connections = r.gauge(
            "idlog_server_connections", "Connections currently open")
        self.m_connections_total = r.counter(
            "idlog_server_connections_total", "Connections ever accepted")
        self.m_inflight = r.gauge(
            "idlog_server_inflight_requests",
            "Requests currently executing or awaiting a worker")
        self.m_timeouts = r.counter(
            "idlog_server_timeouts_total",
            "Requests that exceeded their per-request timeout")
        self.m_cancelled = r.counter(
            "idlog_server_cancelled_total",
            "Requests cancelled by a cancel request or shutdown")
        self.m_http = r.counter(
            "idlog_server_http_requests_total",
            "HTTP GETs answered on the NDJSON listener", labels=("path",))
        self.m_request_duration = r.histogram(
            "idlog_server_request_duration",
            "Wall time per served request, by request type",
            labels=("type",), buckets=_REQUEST_BUCKETS)
        self.m_slow = r.counter(
            "idlog_server_slow_requests_total",
            "Requests at or over the slow_ms threshold")
        self._requests_served = 0
        self._next_request = 0
        #: Structured log (stderr or ``config.log_path``); the transport
        #: and the CLI write through this, never raw stderr.
        self.log = StructuredLogger(sink=self.config.log_path,
                                    level=self.config.log_level)
        #: Ring buffer of finished-request summaries (``recent``).
        self._recent: collections.deque = collections.deque(
            maxlen=self.config.recent_requests)
        #: In-memory tail of slow-request entries (``slowlog``).
        self._slow: collections.deque = collections.deque(maxlen=64)
        self._slow_lock = threading.Lock()
        #: Per-clause plan-quality aggregate across observed runs (the
        #: ``plans`` request), keyed by clause text.  Fed by every run
        #: that captured per-stage estimates (profile/trace requested,
        #: or slow-query capture on).
        self._plans_agg: dict[str, dict] = {}
        self._plan_requests = 0

    # -- dispatch -----------------------------------------------------------

    def new_context(self, request: dict, rtype: str) -> RequestContext:
        """Mint the request-scoped identity the transport threads
        through :meth:`handle` and :meth:`observe`."""
        with self._lock:
            self._next_request += 1
            number = self._next_request
        return RequestContext(
            request_id=f"r{number}", rtype=rtype,
            wire_id=request.get("id"),
            ts=time.time(), enqueued_s=perf_counter())

    def handle(self, request: dict,
               context: Optional[RequestContext] = None) -> dict:
        """Serve one parsed request; the ``result`` payload of a response.

        Args:
            context: The :class:`RequestContext` the transport minted at
                dispatch; in-process callers may omit it (a local one is
                minted, so handlers can rely on it existing).

        Raises:
            RequestError: for every anticipated failure; the caller maps
                it to an ``ok: false`` response.  ``cancel`` and
                ``shutdown`` are transport-level types — in-process
                callers have nothing to cancel, so they fail here with
                ``bad_request``.
        """
        rtype = field(request, "type", str)
        if rtype not in REQUEST_TYPES:
            raise RequestError(
                "bad_request",
                f"unknown request type {rtype!r}; known: "
                + ", ".join(REQUEST_TYPES))
        if rtype in ("cancel", "shutdown"):
            raise RequestError(
                "bad_request",
                f"{rtype} is a transport-level request; it is only "
                "served over a live server connection")
        if context is None:
            context = self.new_context(request, rtype)
        context.started_s = perf_counter()
        if context.enqueued_s:
            context.queue_s = max(0.0,
                                  context.started_s - context.enqueued_s)
        handler = getattr(self, f"_handle_{rtype}")
        result = handler(request, context)
        with self._lock:
            self._requests_served += 1
        return result

    def observe(self, rtype: str, status: str, seconds: float,
                context: Optional[RequestContext] = None) -> None:
        """Record one transport-level request outcome.

        Besides the metric families, a finished :class:`RequestContext`
        lands in the recent-request ring buffer and — at or over the
        ``slow_ms`` threshold — in the slow-query log.  A timed-out
        request's context may still be mutating on its abandoned worker
        thread; the summary snapshot simply reflects whatever the worker
        had filled in by now.
        """
        self.m_requests.labels(type=rtype, status=status).inc()
        self.m_request_seconds.observe(seconds)
        self.m_request_duration.labels(type=rtype).observe(seconds)
        if context is None:
            return
        context.status = status
        context.wall_s = seconds
        summary = context.summary()
        with self._lock:
            self._recent.append(summary)
        slow_ms = self.config.slow_ms
        if slow_ms is not None and seconds * 1000.0 >= slow_ms:
            self.m_slow.inc()
            entry = {"event": "slow_request", "schema": SCHEMA_VERSION,
                     **summary}
            if context.profile is not None:
                entry["profile"] = context.profile
            with self._slow_lock:
                self._slow.append(entry)
                path = self.config.slow_log_path
                if path:
                    with open(path, "a", encoding="utf-8") as handle:
                        handle.write(json.dumps(entry, sort_keys=True)
                                     + "\n")
            self.log.warning("slow_request", **summary)
        elif self.log.enabled("debug"):
            self.log.debug("request", **summary)
        # Plan-drift audit log: a request whose re-costing flipped a
        # cached clause order lands in the slow-query ring (and file)
        # regardless of its wall time — order flips mid-fixpoint are
        # rare and worth a post-mortem trail.
        plan_quality = context.plan_quality
        if plan_quality and plan_quality.get("plan_drifts"):
            entry = {"event": "plan_drift", "schema": SCHEMA_VERSION,
                     **summary}
            with self._slow_lock:
                self._slow.append(entry)
                path = self.config.slow_log_path
                if path:
                    with open(path, "a", encoding="utf-8") as handle:
                        handle.write(json.dumps(entry, sort_keys=True)
                                     + "\n")
            self.log.warning("plan_drift", **summary)

    # -- sessions -----------------------------------------------------------

    def session(self, request: dict,
                context: Optional[RequestContext] = None) -> Session:
        """The session a request addresses (stamped on ``context`` for
        the recent/slow-log attribution).

        Raises:
            RequestError: (``unknown_session``) when the id is unknown —
                including sessions already closed.
        """
        sid = field(request, "session", str)
        with self._lock:
            session = self._sessions.get(sid)
        if session is None:
            raise RequestError(
                "unknown_session",
                f"no open session {sid!r} (open_session creates one; "
                "sessions die with close_session, not with the "
                "connection)")
        if context is not None:
            context.session = session.id
        return session

    def session_count(self) -> int:
        with self._lock:
            return len(self._sessions)

    def _handle_ping(self, request: dict,
                     context: RequestContext) -> dict:
        return {"pong": True, "server": "repro-idlog",
                "protocol": PROTOCOL_VERSION, "schema": SCHEMA_VERSION}

    def _handle_open_session(self, request: dict,
                             context: RequestContext) -> dict:
        plan = field(request, "plan", str, required=False,
                     default=self.config.plan)
        engine_mode = field(request, "engine", str, required=False,
                            default=self.config.engine)
        try:
            plan = check_plan_mode(plan)
            engine_mode = check_engine_mode(engine_mode)
        except Exception as exc:
            raise RequestError("bad_request", str(exc))
        with self._lock:
            if len(self._sessions) >= self.config.max_sessions:
                raise RequestError(
                    "bad_request",
                    f"session cap reached ({self.config.max_sessions}); "
                    "close sessions before opening more")
            self._next_session += 1
            sid = f"s{self._next_session}"
            self._sessions[sid] = Session(sid, plan, engine_mode)
        self.m_sessions.inc()
        self.m_sessions_total.inc()
        return {"session": sid, "plan": plan, "engine": engine_mode}

    def _handle_close_session(self, request: dict,
                              context: RequestContext) -> dict:
        session = self.session(request, context)
        with session.lock:  # drain: no close mid-evaluation
            with self._lock:
                self._sessions.pop(session.id, None)
        self.m_sessions.dec()
        self.m_prepared.dec(len(session.programs))
        return {"closed": session.id,
                "prepared_dropped": len(session.programs)}

    def close_all_sessions(self) -> int:
        """Drop every session (graceful-shutdown cleanup)."""
        with self._lock:
            sessions = list(self._sessions.values())
            self._sessions.clear()
        for session in sessions:
            self.m_sessions.dec()
            self.m_prepared.dec(len(session.programs))
        return len(sessions)

    # -- data ---------------------------------------------------------------

    def _handle_assert_facts(self, request: dict,
                             context: RequestContext) -> dict:
        session = self.session(request, context)
        facts = field(request, "facts", dict, required=False, default={})
        udom = field(request, "udom", list, required=False, default=[])
        for item in udom:
            if not isinstance(item, str):
                raise RequestError(
                    "bad_request", "udom entries must be strings")
        with session.lock:
            added = 0
            for pred, rows in facts.items():
                if not isinstance(pred, str) or not isinstance(rows, list):
                    raise RequestError(
                        "bad_request",
                        "facts must map predicate names to row lists")
                for row in rows:
                    if not isinstance(row, list) or not all(
                            isinstance(v, (str, int))
                            and not isinstance(v, bool) for v in row):
                        raise RequestError(
                            "bad_request",
                            f"rows of {pred} must be lists of "
                            "strings/integers")
                    added += bool(session.db.add_fact(pred, tuple(row)))
            if udom:
                session.udom.update(udom)
                session.db = Database(
                    {name: session.db.relation(name)
                     for name in session.db.relation_names()},
                    udomain=session.udom)
            sizes = {name: len(session.db.relation(name))
                     for name in sorted(session.db.relation_names())}
        return {"added": added, "relations": sizes,
                "udomain_size": len(session.db.udomain)}

    # -- programs -----------------------------------------------------------

    def _compile(self, session: Session, key: str, source: str,
                 display_name: str) -> PreparedProgram:
        """Cache-or-compile one program under ``key`` (caller holds the
        session lock).  Counts the ``prepared_cache`` hit/miss."""
        existing = session.programs.get(key)
        if existing is not None and existing.source == source:
            self.m_prepared_cache.labels(result="hit").inc()
            return existing
        self.m_prepared_cache.labels(result="miss").inc()
        prepared = PreparedProgram(display_name, source, session.plan,
                                   session.engine_mode, self.tracer)
        if existing is None:
            self.m_prepared.inc()
        session.programs[key] = prepared
        return prepared

    def _resolve_program(self, session: Session,
                         request: dict) -> PreparedProgram:
        """The prepared program a run/answers request names — either
        ``prepared`` (a name from an earlier ``prepare``) or ``program``
        (inline source, cached by content hash)."""
        name = field(request, "prepared", str, required=False)
        source = field(request, "program", str, required=False)
        if (name is None) == (source is None):
            raise RequestError(
                "bad_request",
                "exactly one of 'prepared' (a prepared name) or "
                "'program' (inline source) is required")
        if name is not None:
            prepared = session.programs.get(name)
            if prepared is None:
                raise RequestError(
                    "unknown_prepared",
                    f"session {session.id} has no prepared program "
                    f"{name!r} (prepare installs one)")
            self.m_prepared_cache.labels(result="hit").inc()
            return prepared
        digest = hashlib.sha256(source.encode()).hexdigest()[:16]
        return self._compile(session, f"\x00inline:{digest}", source,
                             f"inline:{digest}")

    def _handle_prepare(self, request: dict,
                        context: RequestContext) -> dict:
        session = self.session(request, context)
        name = field(request, "name", str)
        source = field(request, "program", str)
        if name.startswith("\x00"):
            raise RequestError("bad_request",
                               "prepared names must be printable")
        with session.lock:
            before = session.programs.get(name)
            prepared = self._compile(session, name, source, name)
            result = prepared.describe()
            result["cached"] = prepared is before
        return result

    # -- evaluation ---------------------------------------------------------

    @staticmethod
    def _rows_out(rows) -> list[list]:
        """Answer tuples as JSON rows, deterministically ordered."""
        return [list(row)
                for row in sorted(rows, key=lambda r: tuple(map(repr, r)))]

    @staticmethod
    def _tuples(result, pred: str) -> frozenset:
        """Answer tuples for ``pred`` — empty when nothing was derived
        (the fixpoint materializes no relation for an empty head)."""
        try:
            return result.tuples(pred)
        except KeyError:
            return frozenset()

    @staticmethod
    def _stats_out(stats) -> dict:
        return {"derived": stats.total_derived, "firings": stats.firings,
                "probes": stats.probes, "iterations": stats.iterations,
                "id_tuples": stats.id_tuples,
                "plans_built": stats.plans_built,
                "plans_reused": stats.plans_reused,
                "pipelines_compiled": stats.pipelines_compiled,
                "pipelines_reused": stats.pipelines_reused}

    def _pick_queries(self, prepared: PreparedProgram,
                      request: dict) -> list[str]:
        heads = prepared.engine.program.head_predicates
        query = field(request, "query", list, required=False)
        if query is None:
            return sorted(heads)
        for pred in query:
            if not isinstance(pred, str):
                raise RequestError("bad_request",
                                   "query must be a list of predicate "
                                   "names")
            if pred not in heads:
                raise RequestError(
                    "bad_request",
                    f"{pred} is not an output predicate of the program "
                    f"(outputs: {', '.join(sorted(heads)) or '-'})")
        return list(query)

    def _handle_run(self, request: dict,
                    context: RequestContext) -> dict:
        session = self.session(request, context)
        mode = field(request, "mode", str, required=False, default="run")
        if mode not in ("run", "one"):
            raise RequestError("bad_request",
                               "mode must be 'run' or 'one' (answers has "
                               "its own request type)")
        seed = field(request, "seed", int, required=False)
        record = field(request, "record", bool, required=False,
                       default=False)
        replay_data = field(request, "replay", dict, required=False)
        want_trace = field(request, "trace", bool, required=False,
                           default=False)
        want_profile = field(request, "profile", bool, required=False,
                             default=False)
        if record and replay_data is not None:
            raise RequestError("bad_request",
                               "record and replay are mutually exclusive")
        # Per-request observability engages when the request asked for
        # it (trace/profile) or the server captures slow queries; with
        # all three off the engine keeps the shared metrics fold and the
        # uninstrumented hot path — zero added cost.
        observing = (want_trace or want_profile
                     or self.config.slow_ms is not None)
        with session.lock:
            prepared = self._resolve_program(session, request)
            context.prepared = prepared.name
            queries = self._pick_queries(prepared, request)
            record_log = ChoiceLog(meta={
                "session": session.id, "program": prepared.name,
                "mode": mode, "seed": seed}) if record else None
            # The digest log feeds the per-request choice-log digest;
            # it is the client's record log when one was asked for, and
            # a service-internal one otherwise.
            digest_log = record_log
            if observing and digest_log is None and replay_data is None:
                digest_log = ChoiceLog(meta={
                    "session": session.id, "request": context.request_id})
            tracer, timing, trace_buf = self.tracer, None, None
            if observing:
                timing = TimingTracer()
                parts = [self.tracer, timing]
                if want_trace:
                    trace_buf = io.StringIO()
                    parts.append(JsonTracer(trace_buf))
                tracer = ContextTracer(TeeTracer(parts),
                                       request_id=context.request_id,
                                       session_id=session.id)
            engine = prepared.engine
            prepared.uses += 1
            replay_log = None
            try:
                # The session lock serializes engine use, so re-pointing
                # the prepared engine's tracer for one call is safe;
                # restore the shared fold either way.
                engine.tracer = tracer
                if replay_data is not None:
                    replay_log = ChoiceLog.from_jsonable(replay_data)
                    result = engine.replay(session.db, replay_log)
                elif mode == "one":
                    result = engine.one(session.db, seed=seed,
                                        record=digest_log)
                else:
                    result = engine.run(session.db, record=digest_log)
            finally:
                engine.tracer = self.tracer
            out = {
                "mode": mode,
                "prepared": prepared.name,
                "request_id": context.request_id,
                "answers": {pred: self._rows_out(self._tuples(result, pred))
                            for pred in queries},
                "stats": self._stats_out(result.stats),
            }
            source_log = replay_log if replay_data is not None \
                else digest_log
            if source_log is not None:
                context.choice_digest = source_log.digest()
                out["choice_digest"] = context.choice_digest
            if timing is not None:
                context.profile = timing.profile.as_dict()
                if want_profile:
                    out["profile"] = context.profile
                plan_quality = timing.profile.plan_quality()
                if plan_quality["clauses"]:
                    out["plan_quality"] = plan_quality
                    context.plan_quality = {
                        "median_q_error": plan_quality["median_q_error"],
                        "max_q_error": plan_quality["max_q_error"],
                        "misestimates": plan_quality["misestimates"],
                        "plan_drifts": plan_quality["plan_drifts"],
                        "worst_clause":
                            plan_quality["clauses"][0]["clause"],
                    }
                    self._fold_plan_quality(plan_quality)
            if trace_buf is not None:
                out["trace"] = [json.loads(line) for line
                                in trace_buf.getvalue().splitlines()]
            if record_log is not None:
                record_log.set_answers(
                    {pred: self._tuples(result, pred) for pred in queries})
                out["choice_log"] = record_log.to_jsonable()
                out["id_choices"] = len(record_log)
                if self.config.choice_log_dir:
                    session.seq += 1
                    os.makedirs(self.config.choice_log_dir, exist_ok=True)
                    path = os.path.join(
                        self.config.choice_log_dir,
                        f"{session.id}-{session.seq:04d}.choices.jsonl")
                    record_log.save(path)
                    out["choice_log_path"] = path
            context.counters = out["stats"]
            context.answers = {pred: len(rows)
                               for pred, rows in out["answers"].items()}
        return out

    def _fold_plan_quality(self, plan_quality: dict) -> None:
        """Fold one run's plan-quality block into the ``plans`` aggregate.

        Bounded: once 4096 distinct clauses have been seen, new clause
        texts are dropped (existing ones keep accumulating) — a garbage
        client cannot grow the aggregate without bound.
        """
        with self._lock:
            self._plan_requests += 1
            for row in plan_quality["clauses"]:
                agg = self._plans_agg.get(row["clause"])
                if agg is None:
                    if len(self._plans_agg) >= 4096:
                        continue
                    agg = self._plans_agg[row["clause"]] = {
                        "clause": row["clause"],
                        "stratum": row["stratum"],
                        "requests": 0, "calls": 0,
                        "est_probes": 0.0, "probes": 0,
                        "worst_q_error": 0.0,
                        "misestimates": 0, "plan_drifts": 0}
                agg["requests"] += 1
                agg["calls"] += row["calls"]
                agg["est_probes"] += row["est_probes"]
                agg["probes"] += row["probes"]
                agg["worst_q_error"] = max(
                    agg["worst_q_error"], row["q_error"],
                    row["worst_stage_q_error"])
                agg["misestimates"] += bool(row["misestimated"])
                agg["plan_drifts"] += row["plan_drifts"]

    def _handle_answers(self, request: dict,
                        context: RequestContext) -> dict:
        session = self.session(request, context)
        pred = field(request, "pred", str)
        max_branches = field(request, "max_branches", int, required=False,
                             default=200_000)
        with session.lock:
            prepared = self._resolve_program(session, request)
            context.prepared = prepared.name
            if pred not in prepared.engine.program.head_predicates:
                raise RequestError(
                    "bad_request",
                    f"{pred} is not an output predicate of the program")
            prepared.uses += 1
            answers = prepared.engine.answers(session.db, pred,
                                              max_branches)
        rendered = sorted((self._rows_out(answer) for answer in answers),
                          key=repr)
        return {"pred": pred, "count": len(answers), "answers": rendered}

    # -- persistence --------------------------------------------------------

    def _handle_snapshot(self, request: dict,
                         context: RequestContext) -> dict:
        session = self.session(request, context)
        directory = field(request, "dir", str)
        with session.lock:
            save_database(session.db, directory, format=STORAGE_FORMAT)
            rows = sum(len(session.db.relation(name))
                       for name in session.db.relation_names())
            count = len(session.db.relation_names())
        return {"dir": directory, "relations": count, "rows": rows,
                "format": STORAGE_FORMAT}

    def _handle_restore(self, request: dict,
                        context: RequestContext) -> dict:
        session = self.session(request, context)
        directory = field(request, "dir", str)
        with session.lock:
            db = load_database(directory)
            session.db = db
            session.udom = set(db.udomain)
            rows = sum(len(db.relation(name))
                       for name in db.relation_names())
        return {"dir": directory,
                "relations": len(db.relation_names()), "rows": rows}

    # -- introspection ------------------------------------------------------

    def _handle_stats(self, request: dict,
                      context: RequestContext) -> dict:
        session = self.session(request, context)
        with session.lock:
            report = session.db.stats()
            report["session"] = session.id
            report["prepared"] = [p.describe()
                                  for p in session.programs.values()]
        return report

    def _handle_server_stats(self, request: dict,
                             context: RequestContext) -> dict:
        with self._lock:
            sessions = len(self._sessions)
            prepared = sum(len(s.programs)
                           for s in self._sessions.values())
            served = self._requests_served
        return {"sessions": sessions, "prepared_programs": prepared,
                "requests_served": served,
                "inflight": int(self.m_inflight.value),
                "workers": self.config.workers,
                "protocol": PROTOCOL_VERSION, "schema": SCHEMA_VERSION,
                "timeout_s": self.config.timeout_s,
                "slow_ms": self.config.slow_ms}

    def _handle_recent(self, request: dict,
                       context: RequestContext) -> dict:
        limit = field(request, "limit", int, required=False, default=50)
        if limit < 1:
            raise RequestError("bad_request", "limit must be >= 1")
        with self._lock:
            items = list(self._recent)[-limit:]
            served = self._requests_served
        return {"requests": items[::-1],  # newest first
                "count": len(items),
                "capacity": self.config.recent_requests,
                "requests_served": served}

    def _handle_plans(self, request: dict,
                      context: RequestContext) -> dict:
        limit = field(request, "limit", int, required=False, default=20)
        if limit < 1:
            raise RequestError("bad_request", "limit must be >= 1")
        with self._lock:
            rows = sorted(self._plans_agg.values(),
                          key=lambda r: (-r["worst_q_error"], r["clause"]))
            dropped = max(0, len(rows) - limit)
            rows = [dict(row, est_probes=round(row["est_probes"], 3),
                         worst_q_error=round(row["worst_q_error"], 3))
                    for row in rows[:limit]]
            observed = self._plan_requests
        return {"clauses": rows, "count": len(rows), "dropped": dropped,
                "requests_observed": observed,
                "misestimate_threshold": MISESTIMATE_THRESHOLD,
                "observing": self.config.slow_ms is not None}

    def _handle_slowlog(self, request: dict,
                        context: RequestContext) -> dict:
        limit = field(request, "limit", int, required=False, default=50)
        if limit < 1:
            raise RequestError("bad_request", "limit must be >= 1")
        with self._slow_lock:
            entries = list(self._slow)[-limit:]
        return {"slow_ms": self.config.slow_ms,
                "path": self.config.slow_log_path,
                "count": len(entries),
                "entries": entries[::-1]}  # newest first

    # -- timeouts -----------------------------------------------------------

    def request_timeout(self, request: dict) -> Optional[float]:
        """The effective timeout for one request (request field, else the
        configured default, else None = unlimited)."""
        return positive_number(request, "timeout",
                               default=self.config.timeout_s)

    # -- export -------------------------------------------------------------

    def metrics_text(self) -> str:
        """Prometheus exposition of the whole registry (the ``/metrics``
        body)."""
        return self.registry.to_prometheus()

    def flush_metrics(self) -> Optional[str]:
        """Write the registry to ``config.metrics_path`` (if set).

        Called by the transport in a ``finally:`` — runs on clean
        shutdown, on drain timeout, and on a fatal error alike, so the
        file on disk is always a valid exposition of everything counted
        so far.
        """
        path = self.config.metrics_path
        if not path:
            return None
        if self.config.metrics_format == "json":
            import json
            text = json.dumps(self.registry.snapshot(), indent=2) + "\n"
        else:
            text = self.registry.to_prometheus()
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp, path)
        return path
