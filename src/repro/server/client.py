"""Blocking client for the IDLOG server protocol.

:class:`ServerClient` speaks the NDJSON protocol over TCP or a unix
socket with plain synchronous sockets — it has no asyncio dependency, so
the CLI (``repro-idlog connect``), the benchmark load generator, and
tests all share it.  One client is one connection; it is not
thread-safe (each benchmark worker opens its own).

>>> from repro.server import ServerThread, ServerClient
>>> with ServerThread() as handle:
...     with handle.client() as client:
...         session = client.call("open_session")["session"]
...         _ = client.call("assert_facts", session=session,
...                         facts={"edge": [["a", "b"], ["b", "c"]]})
...         result = client.call("run", session=session, program='''
...             path(X, Y) :- edge(X, Y).
...             path(X, Y) :- edge(X, Z), path(Z, Y).
...         ''')
...         result["answers"]["path"]
[['a', 'b'], ['a', 'c'], ['b', 'c']]
"""

from __future__ import annotations

import socket
from typing import Optional

from .protocol import ServerError, decode, encode

#: Must match the server's line limit (see
#: :data:`repro.server.server.LINE_LIMIT`).
_CHUNK = 1 << 16


class ServerClient:
    """One NDJSON connection to an IDLOG server.

    Build one with :meth:`connect_tcp` or :meth:`connect_unix`; use as a
    context manager to guarantee the socket closes.
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._buffer = b""
        self._next_id = 0

    @classmethod
    def connect_tcp(cls, host: str, port: int,
                    timeout: float = 30.0) -> "ServerClient":
        sock = socket.create_connection((host, port), timeout=timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return cls(sock)

    @classmethod
    def connect_unix(cls, path: str,
                     timeout: float = 30.0) -> "ServerClient":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.connect(path)
        return cls(sock)

    # -- wire ---------------------------------------------------------------

    def send(self, request: dict):
        """Send one request, auto-assigning an ``id``; returns the id."""
        if "id" not in request:
            self._next_id += 1
            request = {"id": self._next_id, **request}
        self._sock.sendall(encode(request))
        return request["id"]

    def recv(self) -> dict:
        """Read the next response line (whatever request it answers)."""
        while b"\n" not in self._buffer:
            chunk = self._sock.recv(_CHUNK)
            if not chunk:
                raise ConnectionError(
                    "server closed the connection mid-response")
            self._buffer += chunk
        line, self._buffer = self._buffer.split(b"\n", 1)
        return decode(line)

    def recv_for(self, request_id) -> dict:
        """Read responses until the one answering ``request_id``.

        Responses for other ids are discarded — callers that pipeline
        several requests should use :meth:`send` + :meth:`recv` and
        match ids themselves; :meth:`call` is strictly one-at-a-time, so
        nothing is ever skipped there.
        """
        while True:
            response = self.recv()
            if response.get("id") == request_id:
                return response

    # -- convenience --------------------------------------------------------

    def call(self, rtype: str, **fields) -> dict:
        """One request, one response; the ``result`` payload.

        Raises:
            ServerError: for an ``ok: false`` response, carrying the
                typed protocol error.
        """
        rid = self.send({"type": rtype, **fields})
        response = self.recv_for(rid)
        return self.unwrap(response)

    @staticmethod
    def unwrap(response: dict) -> dict:
        """The ``result`` of a response, raising on protocol errors."""
        if response.get("ok"):
            return response.get("result", {})
        error = response.get("error") or {}
        raise ServerError(error.get("type", "internal"),
                          error.get("message", "malformed error response"))

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def http_get(host: str, port: int, path: str,
             timeout: float = 30.0) -> tuple[int, str]:
    """One HTTP GET against the server's NDJSON listener.

    The default timeout matches :meth:`ServerClient.connect_tcp` (30 s),
    so the two halves of ``repro-idlog connect``/``top`` degrade
    identically on a wedged server.

    Returns:
        ``(status_code, body)`` — how ``/metrics`` and ``/healthz`` are
        scraped without an HTTP library.
    """
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(f"GET {path} HTTP/1.0\r\nHost: {host}\r\n\r\n"
                     .encode("latin-1"))
        blob = b""
        while True:
            chunk = sock.recv(_CHUNK)
            if not chunk:
                break
            blob += chunk
    head, _, body = blob.partition(b"\r\n\r\n")
    status_line = head.split(b"\r\n", 1)[0].split()
    code = int(status_line[1]) if len(status_line) > 1 else 0
    return code, body.decode("utf-8", errors="replace")
