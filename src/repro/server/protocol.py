"""The IDLOG server wire protocol: newline-delimited JSON.

One request is one JSON object on one line; one response is one JSON
object on one line.  The full request/response reference (with examples)
lives in ``docs/SERVER.md``; this module is the single source of truth
for the *vocabulary* — request types, error types, protocol version —
shared by the server (:mod:`repro.server.server`), the client
(:mod:`repro.server.client`), and the docs health checks
(``tests/test_docs.py`` cross-checks ``docs/SERVER.md`` against
:data:`REQUEST_TYPES`).

Framing
-------

* Request:  ``{"id": 7, "type": "run", ...}\\n`` — ``id`` is optional
  and client-chosen; the server echoes it verbatim so a client may keep
  several requests in flight on one connection and match responses out
  of order.
* Success:  ``{"id": 7, "ok": true, "result": {...}}\\n``
* Failure:  ``{"id": 7, "ok": false, "error": {"type": "...",
  "message": "..."}}\\n`` — a malformed or failing request NEVER drops
  the connection; the error response is the contract.

The same listener also answers two HTTP GET paths (``/metrics``,
``/healthz``) for scrape tooling; see :mod:`repro.server.server`.
"""

from __future__ import annotations

import json
from typing import Optional

from ..errors import (EvaluationError, ParseError, ReplayError, ReproError,
                      SafetyError, SchemaError, StratificationError)

#: Bumped when the wire format changes incompatibly.  ``ping`` reports it
#: so clients can refuse to talk across versions.
PROTOCOL_VERSION = 1

#: Every request type the server answers.  ``docs/SERVER.md`` documents
#: each one and ``tests/server/test_server.py`` exercises each one — both
#: facts are enforced by tests, so this tuple cannot silently grow.
REQUEST_TYPES = (
    "ping",
    "open_session",
    "close_session",
    "assert_facts",
    "prepare",
    "run",
    "answers",
    "snapshot",
    "restore",
    "stats",
    "server_stats",
    "recent",
    "slowlog",
    "plans",
    "cancel",
    "shutdown",
)

#: Error types a response may carry.  ``bad_request`` covers malformed
#: requests (unknown type, missing/ill-typed fields); ``internal`` is the
#: catch-all for unexpected exceptions (the message names the exception
#: class, never a traceback).
ERROR_TYPES = (
    "bad_request",
    "parse_error",
    "safety_error",
    "stratification_error",
    "schema_error",
    "evaluation_error",
    "replay_error",
    "unknown_session",
    "unknown_prepared",
    "timeout",
    "cancelled",
    "shutting_down",
    "error",
    "internal",
)

#: Library exception -> wire error type (checked most-specific first).
_EXCEPTION_MAP = (
    (ParseError, "parse_error"),
    (SafetyError, "safety_error"),
    (StratificationError, "stratification_error"),
    (SchemaError, "schema_error"),
    (ReplayError, "replay_error"),
    (EvaluationError, "evaluation_error"),
    (ReproError, "error"),
)


class RequestError(ReproError):
    """A request that cannot be served, carrying its wire error type.

    Raised inside the service/server layers and serialized with
    :func:`error_response`; raising it never tears down the connection.
    """

    def __init__(self, error_type: str, message: str) -> None:
        if error_type not in ERROR_TYPES:
            raise ValueError(f"unknown error type {error_type!r}")
        super().__init__(message)
        self.error_type = error_type


class ServerError(ReproError):
    """Client-side view of an ``ok: false`` response.

    Attributes:
        error_type: The wire error type (one of :data:`ERROR_TYPES`).
    """

    def __init__(self, error_type: str, message: str) -> None:
        super().__init__(f"[{error_type}] {message}")
        self.error_type = error_type


def classify_exception(exc: BaseException) -> str:
    """The wire error type for a library exception."""
    if isinstance(exc, RequestError):
        return exc.error_type
    for cls, error_type in _EXCEPTION_MAP:
        if isinstance(exc, cls):
            return error_type
    return "internal"


def encode(message: dict) -> bytes:
    """One protocol message as its wire line (newline included)."""
    return (json.dumps(message, separators=(",", ":"),
                       sort_keys=True) + "\n").encode("utf-8")


def decode(line: bytes | str) -> dict:
    """Parse one wire line into a message dict.

    Raises:
        RequestError: (``bad_request``) when the line is not a JSON
            object — the caller turns this into an error *response*, so a
            garbage line costs one reply, not the connection.
    """
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise RequestError("bad_request",
                           f"request line is not valid JSON: {exc}")
    if not isinstance(message, dict):
        raise RequestError(
            "bad_request",
            f"request must be a JSON object, got {type(message).__name__}")
    return message


def ok_response(request_id, result: dict) -> dict:
    """A success response echoing ``request_id``."""
    return {"id": request_id, "ok": True, "result": result}


def error_response(request_id, error_type: str, message: str) -> dict:
    """A failure response echoing ``request_id``."""
    if error_type not in ERROR_TYPES:
        error_type = "internal"
    return {"id": request_id, "ok": False,
            "error": {"type": error_type, "message": message}}


# -- request-field validation helpers ----------------------------------------

def field(request: dict, name: str, kind: type,
          required: bool = True, default=None):
    """Pull one typed field out of a request.

    ``bool`` is not accepted where ``int`` is asked for (JSON ``true``
    silently being 1 hides client bugs).

    Raises:
        RequestError: (``bad_request``) on a missing required field or a
            type mismatch.
    """
    if name not in request or request[name] is None:
        if required:
            raise RequestError(
                "bad_request",
                f"{request.get('type', '?')} request needs a "
                f"{kind.__name__} field {name!r}")
        return default
    value = request[name]
    if not isinstance(value, kind) or (kind is not bool
                                       and isinstance(value, bool)):
        raise RequestError(
            "bad_request",
            f"field {name!r} must be {kind.__name__}, "
            f"got {type(value).__name__}")
    return value


def positive_number(request: dict, name: str,
                    default: Optional[float] = None) -> Optional[float]:
    """An optional strictly-positive numeric field (int or float)."""
    value = request.get(name)
    if value is None:
        return default
    if isinstance(value, bool) or not isinstance(value, (int, float)) \
            or value <= 0:
        raise RequestError("bad_request",
                           f"field {name!r} must be a positive number")
    return float(value)
