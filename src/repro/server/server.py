"""The asyncio transport for the IDLOG server.

:class:`IdlogServer` frames NDJSON requests off TCP and unix-socket
connections, schedules them onto a bounded thread pool (evaluation is
CPU-bound synchronous Python — the event loop only frames and
dispatches), and writes one response line per request.  The same
listeners also answer two HTTP GET paths — ``/metrics`` (Prometheus
text) and ``/healthz`` — by sniffing the first bytes of a connection.

Guarantees (the operator-facing contract, documented in
``docs/SERVER.md``):

* A malformed or failing request costs one error response, never the
  connection.
* Several requests may be in flight per connection; responses carry the
  request ``id`` and may arrive out of order.
* Per-request timeouts and ``cancel`` stop *waiting* immediately; a
  worker thread already inside the engine runs on, its result discarded
  (Python threads cannot be interrupted) — the semantics are
  "best-effort abandon", stated rather than hidden.
* Graceful shutdown drains in-flight requests for ``drain_s`` seconds,
  cancels stragglers, and flushes metrics in a ``finally:`` — a
  SIGTERM mid-request still leaves a valid metrics file and all
  completed choice logs on disk (the PR-4/PR-5 flush-on-error contract).
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import contextlib
import json
import os
import queue
import signal
import threading
from time import perf_counter
from typing import Optional

from .protocol import (RequestError, classify_exception, decode, encode,
                       error_response, ok_response)
from .service import IdlogService, ServerConfig

#: asyncio streams default to a 64 KiB line limit — far too small for a
#: big ``assert_facts`` or a recorded choice log on one line.
LINE_LIMIT = 8 * 2 ** 20


class DaemonWorkerPool:
    """Bounded pool of daemon worker threads with an executor-shaped
    :meth:`submit` (usable with ``loop.run_in_executor``).

    A deliberate stand-in for :class:`concurrent.futures.ThreadPoolExecutor`:
    that class joins its non-daemon workers at interpreter exit, so a
    timed-out or cancelled request whose thread is still mid-evaluation
    (Python threads cannot be interrupted) would keep a SIGTERM'd server
    process alive until the abandoned work finished.  Daemon workers let
    the process exit as soon as the graceful drain-and-flush completes.
    """

    def __init__(self, max_workers: int,
                 thread_name_prefix: str = "worker") -> None:
        self._queue: queue.SimpleQueue = queue.SimpleQueue()
        self._threads = [
            threading.Thread(target=self._work, daemon=True,
                             name=f"{thread_name_prefix}-{index}")
            for index in range(max(1, max_workers))]
        for thread in self._threads:
            thread.start()

    def submit(self, fn, *args) -> concurrent.futures.Future:
        future: concurrent.futures.Future = concurrent.futures.Future()
        self._queue.put((future, fn, args))
        return future

    def _work(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            future, fn, args = item
            if not future.set_running_or_notify_cancel():
                continue
            try:
                future.set_result(fn(*args))
            except BaseException as exc:  # delivered via the future
                future.set_exception(exc)

    def shutdown(self, wait: bool = False) -> None:
        for _ in self._threads:
            self._queue.put(None)
        if wait:
            for thread in self._threads:
                thread.join()


def _key(request_id) -> str:
    """Hashable in-flight-table key for an arbitrary JSON request id."""
    return json.dumps(request_id, sort_keys=True, default=repr)


class _Connection:
    """One client connection: its streams, write lock, in-flight tasks."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self.reader = reader
        self.writer = writer
        self.inflight: dict[str, asyncio.Task] = {}
        self._wlock = asyncio.Lock()

    async def send(self, message: dict) -> None:
        """Write one response line (serialized; losing the race against a
        closing connection is silently absorbed)."""
        try:
            async with self._wlock:
                self.writer.write(encode(message))
                await self.writer.drain()
        except (ConnectionError, RuntimeError):
            pass


class IdlogServer:
    """NDJSON-over-asyncio front end for one :class:`IdlogService`.

    Args:
        service: The synchronous core; defaults to a fresh one.
        host/port: TCP listener (``port=0`` picks an ephemeral port;
            ``host=None`` disables TCP).
        unix_path: Unix-socket listener path (``None`` disables it).
    """

    def __init__(self, service: Optional[IdlogService] = None,
                 host: Optional[str] = "127.0.0.1", port: int = 0,
                 unix_path: Optional[str] = None) -> None:
        if host is None and unix_path is None:
            raise ValueError("need a TCP host or a unix socket path")
        self.service = service or IdlogService()
        self.host = host
        self.port = port
        self.unix_path = unix_path
        self._servers: list[asyncio.base_events.Server] = []
        self._connections: set[_Connection] = set()
        self._stopping = asyncio.Event()
        self._stop_reason = ""
        self.pool = DaemonWorkerPool(
            max_workers=self.service.config.workers,
            thread_name_prefix="idlog-worker")
        self.tcp_address: Optional[tuple[str, int]] = None

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        """Bind the listeners (after this, :attr:`tcp_address` is real)."""
        if self.host is not None:
            server = await asyncio.start_server(
                self._handle_connection, self.host, self.port,
                limit=LINE_LIMIT)
            self._servers.append(server)
            sock = server.sockets[0].getsockname()
            self.tcp_address = (sock[0], sock[1])
        if self.unix_path is not None:
            if os.path.exists(self.unix_path):
                os.unlink(self.unix_path)
            server = await asyncio.start_unix_server(
                self._handle_connection, self.unix_path, limit=LINE_LIMIT)
            self._servers.append(server)
        self.service.log.info(
            "listening",
            tcp=(f"{self.tcp_address[0]}:{self.tcp_address[1]}"
                 if self.tcp_address else None),
            unix=self.unix_path, workers=self.service.config.workers)

    def request_shutdown(self, reason: str = "requested") -> None:
        """Begin graceful shutdown (idempotent; safe from signal
        handlers scheduled on the loop)."""
        if not self._stopping.is_set():
            self._stop_reason = reason
            self._stopping.set()

    async def serve_until_shutdown(self,
                                   install_signals: bool = False) -> str:
        """Run until a shutdown request, then drain and clean up.

        The ``finally:`` block is the flush-on-error contract: metrics
        land on disk whether shutdown was a clean ``shutdown`` request,
        a SIGTERM, or a crashed loop.

        Returns:
            The shutdown reason.
        """
        loop = asyncio.get_running_loop()
        if install_signals:
            for signum in (signal.SIGINT, signal.SIGTERM):
                loop.add_signal_handler(
                    signum, self.request_shutdown,
                    signal.Signals(signum).name)
        try:
            await self._stopping.wait()
            self.service.log.info(
                "draining", reason=self._stop_reason,
                inflight=int(self.service.m_inflight.value),
                drain_s=self.service.config.drain_s)
            # Listeners stay bound through the drain: balancer health
            # checks see an explicit 503 "draining" from /healthz
            # (instead of connection refused), and new NDJSON requests
            # get a typed `shutting_down` error per request.  The
            # listeners close in the finally below, once the drain is
            # over.
            await self._drain()
        finally:
            await self._close_connections()
            for server in self._servers:
                server.close()
                with contextlib.suppress(Exception):
                    await server.wait_closed()
            if self.unix_path and os.path.exists(self.unix_path):
                with contextlib.suppress(OSError):
                    os.unlink(self.unix_path)
            self.service.close_all_sessions()
            self.service.flush_metrics()
            self.pool.shutdown(wait=False)
            self.service.log.info("stopped", reason=self._stop_reason)
            self.service.log.close()
            if install_signals:
                for signum in (signal.SIGINT, signal.SIGTERM):
                    with contextlib.suppress(Exception):
                        loop.remove_signal_handler(signum)
        return self._stop_reason

    async def _drain(self) -> None:
        """Give in-flight requests ``drain_s`` to finish, then cancel
        them (each cancelled request still sends its error response)."""
        tasks = [task for conn in list(self._connections)
                 for task in list(conn.inflight.values())]
        if not tasks:
            return
        _done, pending = await asyncio.wait(
            tasks, timeout=self.service.config.drain_s)
        for task in pending:
            task.cancel()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)

    async def _close_connections(self) -> None:
        for conn in list(self._connections):
            for task in list(conn.inflight.values()):
                task.cancel()
            with contextlib.suppress(Exception):
                conn.writer.close()
        self._connections.clear()

    # -- connections --------------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        service = self.service
        service.m_connections.inc()
        service.m_connections_total.inc()
        conn = _Connection(reader, writer)
        self._connections.add(conn)
        try:
            line = await reader.readline()
            if line[:4] == b"GET " or line[:5] == b"HEAD ":
                await self._serve_http(conn, line)
                return
            while line:
                if line.strip():
                    await self._dispatch_line(conn, line.strip())
                line = await reader.readline()
        except asyncio.CancelledError:
            pass  # loop teardown cancelled a blocked readline
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except ValueError:
            # Line over LINE_LIMIT: answer, then give up on the stream
            # (we cannot find the next line boundary reliably).
            service.log.warning("oversized_line", limit=LINE_LIMIT)
            await conn.send(error_response(
                None, "bad_request",
                f"request line exceeds the {LINE_LIMIT} byte limit"))
        finally:
            for task in list(conn.inflight.values()):
                task.cancel()
            self._connections.discard(conn)
            with contextlib.suppress(Exception):
                conn.writer.close()
            service.m_connections.dec()

    async def _dispatch_line(self, conn: _Connection, line: bytes) -> None:
        try:
            request = decode(line)
        except RequestError as exc:
            await conn.send(error_response(None, exc.error_type, str(exc)))
            return
        rid = request.get("id")
        rtype = request.get("type")
        if not isinstance(rtype, str):
            await conn.send(error_response(
                rid, "bad_request", "request needs a string 'type' field"))
            return
        if self._stopping.is_set():
            await conn.send(error_response(
                rid, "shutting_down",
                f"server is shutting down ({self._stop_reason})"))
            return
        if rtype == "cancel":
            await self._serve_cancel(conn, request, rid)
            return
        if rtype == "shutdown":
            self.service.observe("shutdown", "ok", 0.0)
            # Flip the stopping state BEFORE acknowledging: a client
            # that has read "stopping": true must never observe a
            # healthy /healthz afterwards.
            self.request_shutdown("shutdown request")
            await conn.send(ok_response(rid, {"stopping": True}))
            return
        loop = asyncio.get_running_loop()
        # The request-scoped identity is minted here, at dispatch, so
        # the queue wait (dispatch -> worker pickup) is part of it.
        context = self.service.new_context(request, rtype)
        task = loop.create_task(self._serve_request(conn, request, rid,
                                                    rtype, context))
        conn.inflight[_key(rid)] = task
        # A cancel can land before the task's first step — the coroutine
        # body then never runs, so ITS response guarantee never engages.
        # This callback fills that gap: a task that ends in the
        # cancelled state (vs. handling cancellation itself and ending
        # normally) still gets its typed response.
        task.add_done_callback(
            lambda t: self._respond_if_killed(conn, rid, rtype, t,
                                              context))

    def _respond_if_killed(self, conn: _Connection, rid, rtype: str,
                           task: asyncio.Task, context=None) -> None:
        if not task.cancelled():
            return
        self.service.m_cancelled.inc()
        self.service.observe(rtype, "cancelled", 0.0, context)
        conn.inflight.pop(_key(rid), None)
        with contextlib.suppress(RuntimeError):  # loop already closing
            asyncio.get_running_loop().create_task(conn.send(
                error_response(rid, "cancelled",
                               f"{rtype} was cancelled before it "
                               "started")))

    async def _serve_cancel(self, conn: _Connection, request: dict,
                            rid) -> None:
        """Cancel an in-flight request *on this connection* by its id."""
        target = request.get("target")
        task = conn.inflight.get(_key(target))
        cancelled = task is not None and task.cancel()
        self.service.observe("cancel", "ok", 0.0)
        await conn.send(ok_response(
            rid, {"target": target, "cancelled": bool(cancelled)}))

    async def _serve_request(self, conn: _Connection, request: dict,
                             rid, rtype: str, context=None) -> None:
        """Run one request on the worker pool and send its response."""
        service = self.service
        service.m_inflight.inc()
        start = perf_counter()
        status = "ok"
        try:
            try:
                timeout = service.request_timeout(request)
                future = asyncio.get_running_loop().run_in_executor(
                    self.pool, service.handle, request, context)
                result = await asyncio.wait_for(future, timeout)
            except asyncio.TimeoutError:
                status = "timeout"
                service.m_timeouts.inc()
                response = error_response(
                    rid, "timeout",
                    f"{rtype} exceeded its {timeout}s timeout; the worker "
                    "thread finishes in the background and its result is "
                    "discarded")
            except asyncio.CancelledError:
                status = "cancelled"
                service.m_cancelled.inc()
                response = error_response(
                    rid, "cancelled", f"{rtype} was cancelled")
            except BaseException as exc:
                status = classify_exception(exc)
                response = error_response(
                    rid, status, str(exc) or type(exc).__name__)
            else:
                response = ok_response(rid, result)
        finally:
            service.m_inflight.dec()
            conn.inflight.pop(_key(rid), None)
            service.observe(rtype, status, perf_counter() - start,
                            context)
        await conn.send(response)

    # -- HTTP ---------------------------------------------------------------

    async def _serve_http(self, conn: _Connection,
                          first_line: bytes) -> None:
        """Answer one HTTP/1.0-style GET on the NDJSON listener."""
        parts = first_line.decode("latin-1").split()
        path = (parts[1] if len(parts) > 1 else "/").split("?")[0]
        while True:  # drain request headers
            line = await conn.reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
        if path == "/metrics":
            code, reason = 200, "OK"
            ctype = "text/plain; version=0.0.4; charset=utf-8"
            body = self.service.metrics_text()
        elif path == "/healthz":
            # Liveness vs readiness: while draining the process is alive
            # but must not receive new traffic, so balancers get an
            # explicit 503 + "draining" instead of a green 200.
            draining = self._stopping.is_set()
            code, reason = (503, "Service Unavailable") if draining \
                else (200, "OK")
            ctype = "application/json"
            body = json.dumps({
                "status": "draining" if draining else "ok",
                "sessions": self.service.session_count(),
                "inflight": int(self.service.m_inflight.value),
                "stopping": draining,
            }) + "\n"
        else:
            code, reason = 404, "Not Found"
            ctype = "text/plain; charset=utf-8"
            body = f"no such path {path} (try /metrics or /healthz)\n"
        # Known paths keep their own label whatever the status code (a
        # draining /healthz is still a /healthz probe); everything else
        # collapses into "other" so garbage paths cannot explode the
        # label space.
        self.service.m_http.labels(
            path=path if path in ("/metrics", "/healthz") else "other"
        ).inc()
        self.service.log.debug("http", path=path, code=code)
        payload = body.encode("utf-8")
        head = (f"HTTP/1.0 {code} {reason}\r\n"
                f"Content-Type: {ctype}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                "Connection: close\r\n\r\n")
        with contextlib.suppress(ConnectionError):
            conn.writer.write(head.encode("latin-1") + payload)
            await conn.writer.drain()


def serve(config: Optional[ServerConfig] = None,
          host: Optional[str] = "127.0.0.1", port: int = 0,
          unix_path: Optional[str] = None,
          ready=None) -> str:
    """Blocking entry point: run a server until SIGINT/SIGTERM or a
    ``shutdown`` request (what ``repro-idlog serve`` calls).

    Args:
        ready: Optional callback invoked once with the
            :class:`IdlogServer` after the listeners are bound (the CLI
            prints its ready line from here).

    Returns:
        The shutdown reason.
    """

    async def _main() -> str:
        server = IdlogServer(IdlogService(config), host=host, port=port,
                             unix_path=unix_path)
        await server.start()
        if ready is not None:
            ready(server)
        return await server.serve_until_shutdown(install_signals=True)

    return asyncio.run(_main())


class ServerThread:
    """A live server on a background thread — the test/bench harness.

    >>> from repro.server import ServerThread
    >>> with ServerThread() as handle:
    ...     client = handle.client()
    ...     client.call("ping")["pong"]
    ...     client.close()
    True

    The context manager guarantees a bound listener on entry and a
    drained shutdown (metrics flushed) on exit.
    """

    def __init__(self, config: Optional[ServerConfig] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 unix_path: Optional[str] = None) -> None:
        self.config = config or ServerConfig()
        self._host = host
        self._port = port
        self._unix_path = unix_path
        self.server: Optional[IdlogServer] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread = threading.Thread(target=self._run,
                                        name="idlog-server", daemon=True)

    def _run(self) -> None:
        async def _main() -> None:
            self.server = IdlogServer(
                IdlogService(self.config), host=self._host,
                port=self._port, unix_path=self._unix_path)
            self._loop = asyncio.get_running_loop()
            try:
                await self.server.start()
            finally:
                self._ready.set()
            await self.server.serve_until_shutdown()

        try:
            asyncio.run(_main())
        except BaseException as exc:  # surfaced by start()/__enter__
            self._error = exc
            self._ready.set()

    def start(self) -> "ServerThread":
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._error is not None:
            raise RuntimeError(
                f"server failed to start: {self._error}") from self._error
        if self.server is None or not self._ready.is_set():
            raise RuntimeError("server failed to start in time")
        return self

    def stop(self) -> None:
        if self.server is not None and self._loop is not None:
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(
                    self.server.request_shutdown, "ServerThread.stop")
        self._thread.join(timeout=30)

    @property
    def address(self) -> tuple[str, int]:
        """Bound ``(host, port)`` of the TCP listener."""
        assert self.server is not None and self.server.tcp_address
        return self.server.tcp_address

    @property
    def service(self) -> IdlogService:
        assert self.server is not None
        return self.server.service

    def client(self, timeout: float = 30.0):
        """A connected :class:`~repro.server.client.ServerClient`."""
        from .client import ServerClient
        host, port = self.address
        return ServerClient.connect_tcp(host, port, timeout=timeout)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
