"""Long-lived IDLOG server: sessions, prepared programs, NDJSON wire.

The layers, bottom-up (full reference: ``docs/SERVER.md``):

* :mod:`~repro.server.protocol` — wire vocabulary (request/error types,
  encode/decode, versioning).
* :mod:`~repro.server.service` — the synchronous core: session
  registry, prepared-program cache, one handler per request type.
* :mod:`~repro.server.server` — the asyncio transport: TCP + unix
  listeners, worker pool, timeouts/cancel, ``/metrics`` + ``/healthz``,
  graceful shutdown.  :class:`ServerThread` runs one in-process for
  tests and benchmarks.
* :mod:`~repro.server.client` — blocking :class:`ServerClient` shared
  by ``repro-idlog connect`` and ``benchmarks/bench_server.py``.
"""

from .client import ServerClient, http_get
from .protocol import (ERROR_TYPES, PROTOCOL_VERSION, REQUEST_TYPES,
                       RequestError, ServerError)
from .server import IdlogServer, ServerThread, serve
from .service import IdlogService, RequestContext, ServerConfig

__all__ = [
    "ERROR_TYPES",
    "PROTOCOL_VERSION",
    "REQUEST_TYPES",
    "RequestError",
    "ServerError",
    "ServerClient",
    "http_get",
    "IdlogServer",
    "ServerThread",
    "serve",
    "IdlogService",
    "RequestContext",
    "ServerConfig",
]
