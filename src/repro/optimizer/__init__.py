"""Section 4: optimizing DATALOG programs with existential arguments.

The pipeline: :func:`detect_existential` (RBK88 adornment, the sufficient
test) → :func:`optimize` (projection pushing + ∃-existential ID-literals)
→ :func:`compare_cost` (instrumented before/after) with
:func:`q_equivalent_on` as the empirical correctness check.
"""

from .adornment import AdornmentResult, detect_existential
from .containment import (canonical_database, cq_contained, cq_equivalent,
                          minimize_cq, ucq_contained)
from .equivalence import (answer_set, find_witness, q_equivalent_on,
                          random_database, random_databases)
from .magic import MagicResult, answer_goal, goal_pattern, magic_rewrite
from .report import CostReport, compare_cost
from .transform import OptimizationResult, optimize

__all__ = [
    "AdornmentResult", "detect_existential",
    "canonical_database", "cq_contained", "cq_equivalent", "minimize_cq",
    "ucq_contained",
    "answer_set", "find_witness", "q_equivalent_on",
    "random_database", "random_databases",
    "MagicResult", "answer_goal", "goal_pattern", "magic_rewrite",
    "CostReport", "compare_cost",
    "OptimizationResult", "optimize",
]
