"""Empirical q-equivalence checking.

Identifying ∃-existential arguments is undecidable (Theorem 3), so no
checker can certify the optimizer's rewrites in general.  What we can do —
and what the E7/E10 experiments do — is compare *answer sets* of two
programs exhaustively on families of small databases: the paper's
definition makes two programs q-equivalent exactly when they define the
same non-deterministic query, i.e. the same database → answer-set mapping.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, Mapping, Union

from ..core.engine import IdlogEngine
from ..core.program import IdlogProgram
from ..datalog.ast import Program
from ..datalog.database import Database, Relation

ProgramLike = Union[str, Program, IdlogProgram]


def answer_set(program: ProgramLike, db: Database, pred: str,
               max_branches: int = 200_000) -> frozenset[frozenset[tuple]]:
    """The answer set of ``pred`` under a program (plain Datalog included:
    a program without ID-atoms simply has a singleton answer set)."""
    return IdlogEngine(program).answers(db, pred, max_branches)


def q_equivalent_on(first: ProgramLike, second: ProgramLike, pred: str,
                    databases: Iterable[Database],
                    max_branches: int = 200_000) -> bool:
    """True when both programs have equal answer sets on every database.

    This is a *refutation-complete* check over the supplied databases: a
    ``False`` result is a genuine witness of inequivalence; ``True`` only
    says no witness was found.
    """
    first_engine = IdlogEngine(first)
    second_engine = IdlogEngine(second)
    for db in databases:
        if first_engine.answers(db, pred, max_branches) != \
                second_engine.answers(db, pred, max_branches):
            return False
    return True


def find_witness(first: ProgramLike, second: ProgramLike, pred: str,
                 databases: Iterable[Database],
                 max_branches: int = 200_000):
    """The first database on which the answer sets differ, or ``None``."""
    first_engine = IdlogEngine(first)
    second_engine = IdlogEngine(second)
    for db in databases:
        if first_engine.answers(db, pred, max_branches) != \
                second_engine.answers(db, pred, max_branches):
            return db
    return None


def random_database(schema: Mapping[str, int], domain: Iterable[str],
                    rng: random.Random, max_rows: int = 6) -> Database:
    """A random database over a u-domain.

    Args:
        schema: Predicate name -> arity.
        domain: Candidate u-constants.
        rng: Randomness source.
        max_rows: Upper bound on tuples per relation.
    """
    values = list(domain)
    db = Database(udomain=values)
    for name, arity in schema.items():
        relation = Relation(arity)
        for _ in range(rng.randrange(max_rows + 1)):
            relation.add(tuple(rng.choice(values) for _ in range(arity)))
        db.add_relation(name, relation, replace=True)
    return db


def random_databases(schema: Mapping[str, int], domain: Iterable[str],
                     count: int, seed: int = 0,
                     max_rows: int = 6) -> Iterator[Database]:
    """A reproducible stream of random databases (see
    :func:`random_database`)."""
    rng = random.Random(seed)
    values = list(domain)
    for _ in range(count):
        yield random_database(schema, values, rng, max_rows)
