"""Magic sets: goal-directed rewriting of positive Datalog programs.

The paper's §4 optimizations cut *columns* (existential arguments); magic
sets — the canonical deductive-database optimization from the same era and
community (Bancilhon/Maier/Sagiv/Ullman; Beeri & Ramakrishnan) — cut
*rows*: given a query goal with bound arguments such as ``path(a, Y)``,
bottom-up evaluation of the rewritten program only derives facts relevant
to the goal, matching top-down relevance while keeping set-at-a-time
semantics.

The classic construction, specialized to positive programs:

1. **Adorn** predicates with b/f binding patterns, starting from the
   goal's pattern, propagating through each rule body along a *sideways
   information passing* order — here the same planner order the engine
   itself would use, so every sip is evaluable.
2. For each adorned rule, generate **magic rules** that compute the set
   of bound-argument demands for every IDB body literal, and guard the
   original rule with its own magic predicate.
3. **Seed** the magic set of the goal with the goal's constants.

Stratified negation is handled *conservatively*: the positive backbone is
demand-restricted as usual, but every predicate reachable through a
negated literal is included with its original, unguarded definitions
(negation needs the complete relation — restricting it by demand is
unsound without the doubled-program construction).  ID-atoms remain out
of scope.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..datalog.ast import Atom, Clause, Literal, Program
from ..datalog.database import Database
from ..datalog.engine import DatalogEngine, EvalResult
from ..datalog.parser import parse_atom, parse_program
from ..datalog.safety import order_body
from ..datalog.terms import Const, Term, Var
from ..errors import SchemaError

Pattern = str  # over 'b' (bound) / 'f' (free)


def goal_pattern(goal: Atom) -> Pattern:
    """The b/f pattern of a goal atom: constants bound, variables free."""
    return "".join("b" if isinstance(t, Const) else "f" for t in goal.args)


def _adorned_name(pred: str, pattern: Pattern) -> str:
    return f"{pred}__{pattern}"


def _magic_name(pred: str, pattern: Pattern) -> str:
    return f"m_{pred}__{pattern}"


def _bound_args(atom: Atom, pattern: Pattern) -> tuple[Term, ...]:
    return tuple(t for t, p in zip(atom.args, pattern) if p == "b")


@dataclass(frozen=True)
class MagicResult:
    """Output of the magic-sets rewriting.

    Attributes:
        rewritten: The guarded program (magic + adorned rules + seed).
        goal: The original goal atom.
        answer_pred: The adorned predicate holding the goal's answers.
    """

    rewritten: Program
    goal: Atom
    answer_pred: str

    def answer(self, db: Database) -> frozenset[tuple]:
        """Evaluate the rewritten program and extract the goal's answers.

        Returns the tuples of the goal predicate matching the goal's
        constants (full tuples, constants included).
        """
        result = self.run(db)
        return self._extract(result)

    def run(self, db: Database) -> EvalResult:
        """Evaluate the rewritten program (exposes stats for benchmarks)."""
        return DatalogEngine(self.rewritten).run(db)

    def _extract(self, result: EvalResult) -> frozenset[tuple]:
        rows = result.tuples(self.answer_pred)
        matching = set()
        for row in rows:
            if all(not isinstance(t, Const) or t.value == v
                   for t, v in zip(self.goal.args, row)):
                matching.add(row)
        return frozenset(matching)


def _check_supported(program: Program) -> None:
    if program.has_choice() or program.has_id_atoms():
        raise SchemaError(
            "magic sets here covers plain Datalog; compile choice/ID "
            "constructs away first")
    from ..datalog.stratify import stratify
    stratify(program)  # stratified negation only


def _negated_cone(program: Program) -> frozenset[str]:
    """Predicates reachable through some negated literal: these must be
    evaluated in full (no demand restriction)."""
    seeds: set[str] = set()
    for clause in program.clauses:
        for literal in clause.body:
            atom = literal.atom
            if not literal.positive and isinstance(atom, Atom) \
                    and not atom.is_builtin:
                seeds.add(atom.pred)
    cone: set[str] = set()
    frontier = sorted(seeds)
    while frontier:
        pred = frontier.pop()
        if pred in cone:
            continue
        cone.add(pred)
        for clause in program.clauses_defining(pred):
            for atom in clause.body_atoms:
                if not atom.is_builtin and atom.pred not in cone:
                    frontier.append(atom.pred)
    return frozenset(cone)


def magic_rewrite(program: Union[str, Program],
                  goal: Union[str, Atom]) -> MagicResult:
    """Rewrite ``program`` for the query ``goal``.

    Args:
        program: A positive Datalog program (text or parsed).
        goal: The query atom, e.g. ``"path(a, Y)"`` — its constants define
            the binding pattern.

    Returns:
        A :class:`MagicResult`; ``result.answer(db)`` evaluates the goal.

    Raises:
        SchemaError: for unsupported constructs or a goal over an unknown
            predicate.
    """
    if isinstance(program, str):
        program = parse_program(program)
    if isinstance(goal, str):
        goal = parse_atom(goal)
    _check_supported(program)
    if goal.pred not in program.head_predicates:
        raise SchemaError(
            f"goal predicate {goal.pred} is not defined by the program")

    idb = program.head_predicates
    cone = _negated_cone(program)
    new_clauses: list[Clause] = []
    # Predicates read through negation are included in full, unguarded.
    for pred in sorted(cone & idb):
        new_clauses.extend(program.clauses_defining(pred))
    done: set[tuple[str, Pattern]] = set()
    worklist: list[tuple[str, Pattern]] = [(goal.pred, goal_pattern(goal))]

    while worklist:
        pred, pattern = worklist.pop()
        if (pred, pattern) in done:
            continue
        done.add((pred, pattern))
        adorned = _adorned_name(pred, pattern)
        magic = _magic_name(pred, pattern)
        for clause in program.clauses_defining(pred):
            head = clause.head
            bound_head_terms = _bound_args(head, pattern)
            bound_vars = frozenset(
                t for t in bound_head_terms if isinstance(t, Var))
            # The sip: the order our planner would evaluate this body in,
            # given the head's bound variables.
            ordered = order_body(clause, initially_bound=bound_vars) \
                if clause.body else ()
            guard = Literal(Atom(magic, bound_head_terms))
            new_body: list[Literal] = [guard]
            bound = set(bound_vars)
            for literal in ordered:
                atom = literal.atom
                assert isinstance(atom, Atom)
                if atom.is_builtin or atom.pred not in idb \
                        or atom.pred in cone or not literal.positive:
                    # EDB, arithmetic, negated, or inside a negated cone:
                    # read the full (original-name) relation.
                    new_body.append(literal)
                else:
                    sub_pattern = "".join(
                        "b" if isinstance(t, Const) or t in bound else "f"
                        for t in atom.args)
                    sub_adorned = _adorned_name(atom.pred, sub_pattern)
                    sub_magic = _magic_name(atom.pred, sub_pattern)
                    demand = _bound_args(atom, sub_pattern)
                    # Magic rule: the demand for this literal is reachable
                    # from our own magic set through the preceding body.
                    new_clauses.append(Clause(
                        Atom(sub_magic, demand), tuple(new_body)))
                    new_body.append(Literal(atom.rename_pred(sub_adorned)))
                    worklist.append((atom.pred, sub_pattern))
                if literal.positive:
                    bound |= atom.vars
            new_clauses.append(Clause(
                head.rename_pred(adorned), tuple(new_body)))

    # Seed: the goal's own demand.
    seed_pattern = goal_pattern(goal)
    seed = Clause(Atom(_magic_name(goal.pred, seed_pattern),
                       _bound_args(goal, seed_pattern)))
    new_clauses.append(seed)

    rewritten = Program(tuple(new_clauses),
                        name=f"{program.name}_magic")
    return MagicResult(rewritten, goal,
                       _adorned_name(goal.pred, seed_pattern))


def answer_goal(program: Union[str, Program], db: Database,
                goal: Union[str, Atom]) -> frozenset[tuple]:
    """One-shot goal evaluation through the magic rewriting."""
    return magic_rewrite(program, goal).answer(db)
