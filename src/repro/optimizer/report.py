"""Cost reporting for the Section 4 optimization experiments.

The paper's claim is qualitative — the ID-literal rewrite "may greatly
reduce the number of intermediate redundant tuples".  :func:`compare_cost`
makes it quantitative: it evaluates the original and the optimized program
on the same database under the deterministic canonical assignment and
reports derived-tuple counts, join probes and clause firings side by side.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.engine import IdlogEngine
from ..datalog.database import Database
from ..datalog.seminaive import EvalStats
from .transform import OptimizationResult


@dataclass(frozen=True)
class CostReport:
    """Instrumented before/after comparison of one optimization.

    Attributes:
        original_stats: Counters from evaluating the original program.
        optimized_stats: Counters from evaluating the optimized program.
        answers_agree: Whether the query predicate's canonical answers
            matched (a smoke check; full equivalence is answer-set level).
        query: The compared output predicate.
    """

    original_stats: EvalStats
    optimized_stats: EvalStats
    answers_agree: bool
    query: str

    @property
    def intermediate_tuples_before(self) -> int:
        """Derived tuples, excluding the query predicate itself."""
        return sum(n for p, n in self.original_stats.derived.items()
                   if p != self.query)

    @property
    def intermediate_tuples_after(self) -> int:
        """Derived tuples after optimization, query predicate excluded."""
        return sum(n for p, n in self.optimized_stats.derived.items()
                   if p != self.query)

    @property
    def probe_ratio(self) -> float:
        """Join probes of the original per optimized probe (>1 = win)."""
        after = max(self.optimized_stats.probes, 1)
        return self.original_stats.probes / after

    def rows(self) -> list[tuple[str, int, int]]:
        """Tabular summary: (metric, before, after)."""
        return [
            ("derived tuples (total)",
             self.original_stats.total_derived,
             self.optimized_stats.total_derived),
            ("intermediate tuples",
             self.intermediate_tuples_before,
             self.intermediate_tuples_after),
            ("join probes",
             self.original_stats.probes,
             self.optimized_stats.probes),
            ("clause firings",
             self.original_stats.firings,
             self.optimized_stats.firings),
            ("ID tuples materialized",
             self.original_stats.id_tuples,
             self.optimized_stats.id_tuples),
        ]


def compare_cost(result: OptimizationResult, db: Database) -> CostReport:
    """Evaluate original vs optimized on ``db`` and report the counters.

    Both run under the canonical assignment, so the comparison is
    deterministic; for arguments that really are ∃-existential the two
    canonical answers coincide (spot-checked in ``answers_agree``).
    """
    original_engine = IdlogEngine(result.original)
    optimized_engine = IdlogEngine(result.optimized)
    original = original_engine.run(db)
    optimized = optimized_engine.run(db)
    agree = original.tuples(result.query) == optimized.tuples(result.query)
    return CostReport(original.stats, optimized.stats, agree, result.query)
