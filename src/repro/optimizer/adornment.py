"""The RBK88 adornment algorithm: detecting ∀-existential arguments.

The paper (Section 4) recalls the sufficient test of Ramakrishnan, Beeri &
Krishnamurthy: *if a variable Y appears in a body literal and does not
appear anywhere else in the clause, except possibly in an existential
argument of the head, then the argument position corresponding to Y is
existential*; a predicate argument is existential when it is existential in
all of the predicate's body occurrences.

Detecting existential arguments exactly is undecidable (for the paper's new
∃-existential notion too, Theorem 3), but by Theorem 4 every argument this
sufficient test identifies is also ∃-existential — which is what licenses
the ID-literal rewriting of :mod:`repro.optimizer.transform`.

Two granularities come out of the analysis, matching how Section 4 uses
them:

* **predicate-level** marks drive step 2 (dropping existential columns from
  output predicates, Example 6), and
* **occurrence-level** marks drive step 3 (replacing an input-predicate
  literal ``p(Ȳ)`` by the ID-literal ``p[s](Ȳ, 0)``, Example 8 — note the
  paper rewrites ``p`` in clause [3] but not in clause [2]).

The algorithm is a greatest fixpoint: start optimistically (every argument
of every predicate except the query is existential) and knock marks down
until stable.  Occurrences in negative literals, ID-literals and arithmetic
predicates are treated conservatively (never existential).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datalog.ast import Atom, Clause, Program
from ..datalog.terms import Const, Var

ExistentialMarks = dict[str, tuple[bool, ...]]
"""Per predicate, one flag per argument position (True = existential)."""

OccurrenceMarks = dict[tuple[int, int], tuple[bool, ...]]
"""Per (clause index, body literal index), one flag per position."""


@dataclass(frozen=True)
class AdornmentResult:
    """Output of the adornment algorithm.

    Attributes:
        sliced: The analyzed program — ``P/query`` (clause/literal indexes
            in ``occurrences`` refer to it).
        query: The output predicate the analysis was relative to.
        marks: Predicate-level existential flags.
        occurrences: Occurrence-level existential flags for positive,
            ordinary body literals.
    """

    sliced: Program
    query: str
    marks: ExistentialMarks
    occurrences: OccurrenceMarks

    def existential_positions(self, pred: str) -> tuple[int, ...]:
        """The 1-based predicate-level existential positions of ``pred``."""
        flags = self.marks.get(pred, ())
        return tuple(i + 1 for i, flag in enumerate(flags) if flag)

    def any_existential(self) -> bool:
        """True when the analysis found anything to eliminate."""
        return any(any(flags) for flags in self.marks.values()) or \
            any(any(flags) for flags in self.occurrences.values())


def _occurrence_is_existential(clause: Clause, literal_index: int,
                               position: int,
                               marks: dict[str, list[bool]]) -> bool:
    """Apply the RBK88 occurrence rule to one body argument position."""
    atom = clause.body[literal_index].atom
    assert isinstance(atom, Atom)
    term = atom.args[position]
    if isinstance(term, Const):
        return False  # a constant is a filter, not a projectable column
    assert isinstance(term, Var)
    # Every OTHER occurrence of the variable must be an existential
    # argument of the head.
    for j, head_term in enumerate(clause.head.args):
        if head_term == term and not marks[clause.head.pred][j]:
            return False
    for i, other in enumerate(clause.body):
        other_atom = other.atom
        if not isinstance(other_atom, Atom):
            return False  # a choice operator mentions variables opaquely
        for j, other_term in enumerate(other_atom.args):
            if (i, j) == (literal_index, position):
                continue
            if other_term == term:
                return False
    return True


def detect_existential(program: Program, query: str) -> AdornmentResult:
    """Run the adornment algorithm for output predicate ``query``.

    The program is first restricted to ``P/query``; predicates outside the
    slice get no marks.  Arguments of ``query`` itself are never existential
    (the caller asked for them).
    """
    sliced = program.restrict_to(query)
    marks: dict[str, list[bool]] = {}
    for pred in sliced.predicates:
        arity = sliced.arity(pred)
        marks[pred] = [pred != query] * arity

    def eligible(literal) -> bool:
        atom = literal.atom
        return isinstance(atom, Atom) and literal.positive \
            and not atom.is_builtin and not atom.is_id

    changed = True
    while changed:
        changed = False
        for clause in sliced.clauses:
            for i, literal in enumerate(clause.body):
                atom = literal.atom
                if not isinstance(atom, Atom) or atom.is_builtin:
                    continue
                conservative = not eligible(literal)
                base_arity = atom.base_arity
                for j in range(base_arity):
                    if not marks[atom.pred][j]:
                        continue
                    existential = (not conservative) and \
                        _occurrence_is_existential(clause, i, j, marks)
                    if not existential:
                        marks[atom.pred][j] = False
                        changed = True

    occurrences: OccurrenceMarks = {}
    for ci, clause in enumerate(sliced.clauses):
        for li, literal in enumerate(clause.body):
            if not eligible(literal):
                continue
            atom = literal.atom
            flags = tuple(
                _occurrence_is_existential(clause, li, j, marks)
                for j in range(len(atom.args)))
            occurrences[(ci, li)] = flags

    return AdornmentResult(
        sliced, query,
        {pred: tuple(flags) for pred, flags in marks.items()},
        occurrences)
