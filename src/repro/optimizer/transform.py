"""The Section 4 optimization strategy, end to end.

Steps, quoting the paper:

1. Use the adornment algorithm [RBK88] to identify existential arguments
   (:mod:`repro.optimizer.adornment`).
2. Eliminate each identified existential argument appearing in an output
   predicate — "pushing projections", Example 6: ``a(X, Y)`` becomes
   ``a_ex(X)``.
3. For an input predicate literal ``p(Ȳ)`` with existential arguments
   ``X1..Xn``, replace it by the ID-literal ``p[s](Ȳ, 0)`` where ``s``
   corresponds to the non-existential positions — Example 8:
   ``a_ex(X) :- p[1](X, Y, 0)``.
4. The tid 0 is optimization information: the engine's group-limit
   materialization (:mod:`repro.core.program`) uses at most one tuple per
   sub-relation, the paper's footnote 7.

The result is an IDLOG program that is q-equivalent to the original
whenever the replaced arguments are ∃-existential — guaranteed for
arguments the adornment algorithm identified (Theorem 4), and verified
empirically by :mod:`repro.optimizer.equivalence`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..core.program import IdlogProgram
from ..datalog.ast import Atom, Clause, Literal, Program
from ..datalog.parser import parse_program
from ..datalog.terms import Const
from .adornment import AdornmentResult, detect_existential


@dataclass(frozen=True)
class OptimizationResult:
    """Everything the optimizer produced.

    Attributes:
        original: The analyzed program slice ``P/query``.
        optimized: The rewritten program, compiled as IDLOG (it may or may
            not actually contain ID-literals).
        adornment: The analysis driving the rewrite.
        renamed: Output predicates whose existential columns were dropped,
            mapped to their new names.
        query: The output predicate optimized for.
    """

    original: Program
    optimized: IdlogProgram
    adornment: AdornmentResult
    renamed: dict[str, str]
    query: str

    @property
    def changed(self) -> bool:
        """True when the rewrite did anything."""
        return bool(self.renamed) or self.optimized.program.has_id_atoms()


def _fresh_name(base: str, taken: set[str]) -> str:
    candidate = f"{base}_ex"
    while candidate in taken:
        candidate += "x"
    return candidate


def _drop_positions(atom: Atom, drop: frozenset[int],
                    new_name: str) -> Atom:
    """Project the 1-based positions in ``drop`` out of an ordinary atom."""
    kept = tuple(t for i, t in enumerate(atom.args, start=1)
                 if i not in drop)
    return Atom(new_name, kept)


def optimize(program: Union[str, Program], query: str,
             drop_output_columns: bool = True,
             rewrite_inputs: bool = True) -> OptimizationResult:
    """Run the full Section 4 strategy for output predicate ``query``.

    Args:
        program: A plain Datalog program (source text or parsed).
        query: The output predicate to optimize for.
        drop_output_columns: Perform step 2 (projection pushing).
        rewrite_inputs: Perform step 3 (∃-existential ID-literals).

    Returns:
        The :class:`OptimizationResult`; ``result.optimized`` is validated
        and ready for :class:`~repro.core.engine.IdlogEngine`.
    """
    if isinstance(program, str):
        program = parse_program(program)
    adornment = detect_existential(program, query)
    sliced = adornment.sliced
    inputs = sliced.input_predicates

    renamed: dict[str, str] = {}
    drops: dict[str, frozenset[int]] = {}
    if drop_output_columns:
        taken = set(sliced.predicates)
        for pred in sorted(sliced.head_predicates):
            if pred == query:
                continue
            positions = frozenset(adornment.existential_positions(pred))
            if positions:
                renamed[pred] = _fresh_name(pred, taken)
                taken.add(renamed[pred])
                drops[pred] = positions

    new_clauses: list[Clause] = []
    for ci, clause in enumerate(sliced.clauses):
        head = clause.head
        if head.pred in renamed:
            head = _drop_positions(head, drops[head.pred],
                                   renamed[head.pred])
        body: list[Literal] = []
        for li, literal in enumerate(clause.body):
            atom = literal.atom
            if not isinstance(atom, Atom) or atom.is_builtin or atom.is_id:
                body.append(literal)
                continue
            if atom.pred in renamed and literal.positive:
                body.append(Literal(
                    _drop_positions(atom, drops[atom.pred],
                                    renamed[atom.pred]),
                    literal.positive))
                continue
            flags = adornment.occurrences.get((ci, li))
            if rewrite_inputs and literal.positive \
                    and atom.pred in inputs and flags and any(flags):
                group = frozenset(
                    i for i, flag in enumerate(flags, start=1) if not flag)
                body.append(Literal(
                    Atom(atom.pred, atom.args + (Const(0),), group)))
                continue
            body.append(literal)
        new_clauses.append(Clause(head, tuple(body)))

    optimized_program = Program(tuple(new_clauses),
                                name=f"{sliced.name}_opt")
    return OptimizationResult(
        original=sliced,
        optimized=IdlogProgram.compile(optimized_program),
        adornment=adornment,
        renamed=renamed,
        query=query)
