"""Conjunctive-query containment and minimization (Chandra–Merkle).

The paper leans on undecidability for its *existential-argument* notions
(Theorem 3); for plain **conjunctive queries** — single positive
non-recursive clauses — containment IS decidable, by the classic
canonical-database argument: ``Q1 ⊑ Q2`` iff evaluating ``Q2`` over the
*frozen body* of ``Q1`` (variables turned into fresh constants) yields
``Q1``'s frozen head.  On top of the check we get CQ **minimization**:
repeatedly drop body atoms whose removal keeps the query equivalent —
the optimizer-adjacent tool for removing genuinely redundant joins (as
opposed to §4's projectable columns).

Scope: positive, builtin-free, u-sorted conjunctive queries.
"""

from __future__ import annotations

from typing import Union

from ..datalog.ast import Atom, Clause, Program
from ..datalog.database import Database
from ..datalog.engine import DatalogEngine
from ..datalog.parser import parse_clause
from ..datalog.terms import Const, Term, Var
from ..errors import SchemaError


def _as_clause(query: Union[str, Clause]) -> Clause:
    return parse_clause(query) if isinstance(query, str) else query


def _check_cq(clause: Clause) -> None:
    if not clause.body:
        raise SchemaError(f"{clause} has no body; not a conjunctive query")
    for literal in clause.body:
        atom = literal.atom
        if not isinstance(atom, Atom) or atom.is_builtin or atom.is_id:
            raise SchemaError(
                f"{clause}: conjunctive queries allow plain positive "
                "relation atoms only")
        if not literal.positive:
            raise SchemaError(f"{clause}: negation is not a CQ construct")
        if atom.pred == clause.head.pred:
            raise SchemaError(f"{clause}: recursive — not a CQ")
        for term in atom.args:
            if isinstance(term, Const) and isinstance(term.value, int):
                raise SchemaError(
                    f"{clause}: i-sorted constants are not supported by "
                    "the freezing construction")


def _freeze(term: Term, table: dict[Var, str]) -> str:
    if isinstance(term, Const):
        assert isinstance(term.value, str)
        return term.value
    if term not in table:
        table[term] = f"frz_{len(table)}_{term.name.lower()}"
    return table[term]


def canonical_database(clause: Clause) -> tuple[Database, tuple[str, ...]]:
    """The frozen body of a CQ, plus its frozen head tuple.

    Every variable becomes a fresh constant; the body atoms become the
    database's facts.
    """
    _check_cq(clause)
    table: dict[Var, str] = {}
    db = Database()
    for literal in clause.body:
        atom = literal.atom
        assert isinstance(atom, Atom)
        db.add_fact(atom.pred,
                    tuple(_freeze(t, table) for t in atom.args))
    head = tuple(_freeze(t, table) for t in clause.head.args)
    return db, head


def cq_contained(first: Union[str, Clause],
                 second: Union[str, Clause]) -> bool:
    """Is ``first ⊑ second`` (every answer of first is one of second)?

    Both queries must share the head predicate's arity.  Decided by
    evaluating ``second`` over ``first``'s canonical database.
    """
    q1 = _as_clause(first)
    q2 = _as_clause(second)
    _check_cq(q1)
    _check_cq(q2)
    if len(q1.head.args) != len(q2.head.args):
        raise SchemaError("the queries have different head arities")
    db, frozen_head = canonical_database(q1)
    aligned = Clause(q2.head.rename_pred(q1.head.pred), q2.body)
    engine = DatalogEngine(Program((aligned,), name="containment"))
    return frozen_head in engine.query(db, q1.head.pred)


def cq_equivalent(first: Union[str, Clause],
                  second: Union[str, Clause]) -> bool:
    """Mutual containment."""
    return cq_contained(first, second) and cq_contained(second, first)


def ucq_contained(first: Union[str, Clause, list],
                  second: Union[str, Clause, list]) -> bool:
    """Containment of unions of conjunctive queries.

    ``∪ first_i ⊑ ∪ second_j`` iff each ``first_i`` is contained in the
    union — decided by evaluating *all* of ``second`` (one program, one
    head predicate) over each ``first_i``'s canonical database (the
    Sagiv–Yannakakis criterion).

    Args:
        first, second: A CQ, source text, or a list of either.
    """
    firsts = [_as_clause(q) for q in
              (first if isinstance(first, list) else [first])]
    seconds = [_as_clause(q) for q in
               (second if isinstance(second, list) else [second])]
    for q in firsts + seconds:
        _check_cq(q)
    arities = {len(q.head.args) for q in firsts + seconds}
    if len(arities) != 1:
        raise SchemaError("the queries have different head arities")
    for q in firsts:
        db, frozen_head = canonical_database(q)
        aligned = tuple(Clause(p.head.rename_pred(q.head.pred), p.body)
                        for p in seconds)
        engine = DatalogEngine(Program(aligned, name="ucq"))
        if frozen_head not in engine.query(db, q.head.pred):
            return False
    return True


def minimize_cq(query: Union[str, Clause]) -> Clause:
    """An equivalent CQ with a minimal body (redundant joins dropped).

    Greedy: try removing each body atom; keep the removal when the
    shrunken query is still contained in the original (the other
    direction is automatic — fewer conditions can only widen the
    answer).  The result is a *core* of the query.
    """
    clause = _as_clause(query)
    _check_cq(clause)
    changed = True
    while changed and len(clause.body) > 1:
        changed = False
        for i in range(len(clause.body)):
            body = clause.body[:i] + clause.body[i + 1:]
            head_vars = clause.head.vars
            bound = frozenset().union(*(lit.vars for lit in body))
            if not head_vars <= bound:
                continue  # dropping would unbind the head
            candidate = Clause(clause.head, body)
            if cq_contained(candidate, clause):
                clause = candidate
                changed = True
                break
    return clause
