"""Stable models of normal logic programs (paper §3.2).

The paper notes that non-stratified programs under stable-model semantics
[GL88, SZ90] are another route to non-determinism, and that every such
query is also definable in stratified IDLOG (a corollary of Theorem 6).
Experiment E12 demonstrates the containment on concrete programs.

Implementation: the textbook guess-and-check.  Ground the program over an
upper bound ``U`` (the least model with negative literals dropped — every
stable model is a subset of ``U``), then test each candidate
``EDB ∪ S, S ⊆ derivable atoms``: ``M`` is stable iff the least model of
the Gelfond–Lifschitz reduct ``P^M`` equals ``M``.  Exponential, intended
for example-scale programs only.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Union

from ..datalog.ast import Atom, Clause, Program
from ..datalog.database import Database, Relation
from ..datalog.parser import parse_program
from ..datalog.safety import order_body
from ..datalog.seminaive import EvalStats, RelationStore, _solve_literals
from ..datalog.terms import Const, Value
from ..errors import EvaluationError

Fact = tuple[str, tuple[Value, ...]]
State = frozenset[Fact]


@dataclass(frozen=True)
class GroundClause:
    """One ground instance: head fact, positive facts, negative facts."""

    head: Fact
    positive: tuple[Fact, ...]
    negative: tuple[Fact, ...]


class StableEngine:
    """Stable-model enumeration for normal programs.

    Example (the classic non-stratified choice program):
        >>> engine = StableEngine('''
        ...     man(X) :- person(X), not woman(X).
        ...     woman(X) :- person(X), not man(X).
        ... ''')
        >>> db = Database.from_facts({"person": [("a",)]})
        >>> len(engine.stable_models(db))
        2
    """

    def __init__(self, program: Union[str, Program]) -> None:
        if isinstance(program, str):
            program = parse_program(program)
        if program.has_choice() or program.has_id_atoms():
            raise EvaluationError(
                "stable-model semantics is defined here for normal "
                "programs only (no choice, no ID-atoms)")
        self.program = program
        # The positive envelope: clauses with negative literals dropped.
        self._envelope = Program(tuple(
            Clause(c.head,
                   tuple(lit for lit in c.body
                         if lit.positive or lit.atom.is_builtin))
            for c in program.clauses), name="envelope")

    def _initial_facts(self, db: Database) -> State:
        facts: set[Fact] = set()
        for name in db.relation_names():
            if name in self.program.predicates:
                for row in db.relation(name):
                    facts.add((name, row))
        return frozenset(facts)

    def _store_for(self, state: State) -> RelationStore:
        store = RelationStore(None, EvalStats())
        relations: dict[str, Relation] = {}
        for pred in self.program.predicates:
            relations[pred] = Relation(self.program.arity(pred))
        for pred, row in state:
            relations[pred].add(row)
        for pred, relation in relations.items():
            store.install(pred, relation)
        return store

    def upper_bound(self, db: Database) -> State:
        """The least model of the positive envelope: ⊇ every stable model."""
        state = set(self._initial_facts(db))
        changed = True
        plans = []
        for clause in self._envelope.clauses:
            positive_only = tuple(
                lit for lit in clause.body
                if lit.positive or lit.atom.is_builtin)
            plans.append((clause, order_body(Clause(clause.head,
                                                    positive_only))))
        while changed:
            changed = False
            store = self._store_for(frozenset(state))
            stats = EvalStats()
            for clause, plan in plans:
                for subst in list(_solve_literals(plan, 0, {}, store,
                                                  stats, {})):
                    row = tuple(
                        t.value if isinstance(t, Const) else subst[t]
                        for t in clause.head.args)
                    fact = (clause.head.pred, row)
                    if fact not in state:
                        state.add(fact)
                        changed = True
        return frozenset(state)

    def ground_clauses(self, db: Database) -> list[GroundClause]:
        """Ground instances whose positive body lies inside the envelope."""
        bound = self.upper_bound(db)
        store = self._store_for(bound)
        out: list[GroundClause] = []
        for clause in self.program.clauses:
            # Plan with negative relation literals removed but comparisons
            # kept: negatives are recorded, not joined.
            plan_body = tuple(
                lit for lit in clause.body
                if lit.positive or lit.atom.is_builtin)
            plan = order_body(Clause(clause.head, plan_body))
            negatives = tuple(
                lit.atom for lit in clause.body
                if not lit.positive and not lit.atom.is_builtin)
            stats = EvalStats()
            for subst in _solve_literals(plan, 0, {}, store, stats, {}):
                def ground(atom: Atom) -> Fact:
                    return (atom.pred, tuple(
                        t.value if isinstance(t, Const) else subst[t]
                        for t in atom.args))
                head = ground(clause.head)
                positive = tuple(
                    ground(lit.atom) for lit in clause.body
                    if lit.positive and not lit.atom.is_builtin)
                negative = tuple(ground(atom) for atom in negatives)
                out.append(GroundClause(head, positive, negative))
        return out

    @staticmethod
    def _least_model_of_reduct(ground: list[GroundClause],
                               candidate: State, base: State) -> State:
        """Least model of the GL-reduct ``P^candidate`` over ``base`` facts."""
        state = set(base)
        surviving = [g for g in ground
                     if not any(n in candidate for n in g.negative)]
        changed = True
        while changed:
            changed = False
            for g in surviving:
                if g.head not in state and all(p in state for p in g.positive):
                    state.add(g.head)
                    changed = True
        return frozenset(state)

    def stable_models(self, db: Database,
                      max_candidates: int = 1 << 20) -> frozenset[State]:
        """All stable models on ``db``.

        Raises:
            EvaluationError: when the candidate space (2^|derivable atoms|)
                exceeds ``max_candidates``.
        """
        base = self._initial_facts(db)
        derivable = sorted(self.upper_bound(db) - base)
        if 2 ** len(derivable) > max_candidates:
            raise EvaluationError(
                f"{len(derivable)} derivable atoms: candidate space too "
                "large for exhaustive stable-model search")
        ground = self.ground_clauses(db)
        models: set[State] = set()
        for k in range(len(derivable) + 1):
            for subset in combinations(derivable, k):
                candidate = base | frozenset(subset)
                if self._least_model_of_reduct(ground, candidate, base) \
                        == candidate:
                    models.add(candidate)
        return frozenset(models)

    def answers(self, db: Database, pred: str,
                max_candidates: int = 1 << 20) -> frozenset[frozenset[tuple]]:
        """The non-deterministic query: ``pred``'s relation per stable model."""
        return frozenset(
            frozenset(row for name, row in model if name == pred)
            for model in self.stable_models(db, max_candidates))
