"""Stable-model semantics for normal programs (paper §3.2)."""

from .models import GroundClause, StableEngine

__all__ = ["GroundClause", "StableEngine"]
