"""Concrete generic Turing machines used by the §5 experiments.

Two machines over the paper's tape alphabet ``0 1 , ( ) [ ]``:

* :func:`choose_one_machine` — a *non-deterministic* generic machine
  computing the sampling query "pick one tuple of the input relation":
  at every tuple it branches between selecting it (erasing the rest) and
  skipping it.  Its decoded answer set is the set of singletons, invariant
  under re-coding and re-ordering — a genuinely generic NGTM.
* :func:`parity_machine` — a *deterministic* generic machine writing
  ``(0)`` when the input relation has an even number of tuples and ``(1)``
  otherwise; the query IDLOG expresses with
  :data:`repro.ndtm.idlog_power.PARITY_PROGRAM`.
"""

from __future__ import annotations

from .machine import NDTM, machine_from_table

_DATA = "01,"


def choose_one_machine() -> NDTM:
    """Non-deterministically select exactly one tuple of a unary relation.

    Input tape: ``[(c1)(c2)...(cn)]``; halting tapes: ``(ci)`` for every i.
    On the empty relation ``[]`` every branch spins forever, so the answer
    set is empty.
    """
    rows = [
        ("s0", "[", "scan", "_", 1),
        # At a tuple: select it or skip it (the non-deterministic choice).
        ("scan", "(", "keep", "{", 1),
        ("scan", "(", "skip", "_", 1),
        # Nothing selected and relation exhausted: diverge (no answer).
        ("scan", "]", "spin", "_", 0),
        ("spin", "_", "spin", "_", 0),
        # Skipping: erase through the closing parenthesis.
        ("skip", ")", "scan", "_", 1),
        # Keeping: pass over the payload, then erase everything after.
        ("keep", ")", "wipe", ")", 1),
        ("wipe", "(", "wipe", "_", 1),
        ("wipe", ")", "wipe", "_", 1),
        ("wipe", "]", "back", "_", -1),
        # Return to the marker and restore the opening parenthesis.
        ("back", "_", "back", "_", -1),
        ("back", ")", "back", ")", -1),
        ("back", "{", "halt", "(", 0),
    ]
    for ch in _DATA:
        rows.append(("skip", ch, "skip", "_", 1))
        rows.append(("keep", ch, "keep", ch, 1))
        rows.append(("wipe", ch, "wipe", "_", 1))
        rows.append(("back", ch, "back", ch, -1))
    return machine_from_table(rows, start="s0")


def parity_machine() -> NDTM:
    """Write ``(0)`` for an even tuple count, ``(1)`` for odd.

    Deterministic and generic: the count of ``(`` symbols does not depend
    on constant coding or tuple order.
    """
    rows = [
        ("s0", "[", "even", "_", 1),
        ("even", "(", "odd", "_", 1),
        ("odd", "(", "even", "_", 1),
        ("even", "]", "we0", "(", 1),
        ("odd", "]", "wo0", "(", 1),
        ("we0", "_", "we1", "0", 1),
        ("wo0", "_", "wo1", "1", 1),
        ("we1", "_", "halt", ")", 0),
        ("wo1", "_", "halt", ")", 0),
    ]
    for ch in _DATA + ")":
        rows.append(("even", ch, "even", "_", 1))
        rows.append(("odd", ch, "odd", "_", 1))
    return machine_from_table(rows, start="s0")
