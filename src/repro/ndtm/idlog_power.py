"""IDLOG constructions behind the expressive-power results (paper §5).

Theorem 6 says stratified IDLOG defines all computable non-deterministic
queries.  The crux of the simulation is that a tid on the ungrouped
ID-relation ``dom[∅]`` is an *arbitrary bijection* between the domain and
an initial segment of ℕ — a non-deterministically chosen total order, which
is what lets a fixed program drive a Turing-machine computation over an
unordered database.

This module packages the constructions as ready-made programs over a unary
input predicate ``dom``:

* :data:`TOTAL_ORDER_PROGRAM` — the arbitrary enumeration itself
  (non-deterministic: every bijection is an answer);
* :data:`SUCCESSOR_PROGRAM` — an arbitrary successor relation on the
  domain (each answer is a Hamiltonian ordering);
* :data:`COUNTING_PROGRAM` — ``size(n)`` with n = |dom| (deterministic:
  every enumeration has the same maximum tid);
* :data:`PARITY_PROGRAM` — the classic query *is |dom| even?* which no
  Datalog program expresses but IDLOG answers deterministically despite
  choosing an arbitrary order.
"""

from __future__ import annotations

from typing import Iterable

from ..core.engine import IdlogEngine
from ..datalog.database import Database

TOTAL_ORDER_PROGRAM = """
    ordered(X, N) :- dom[](X, N).
"""
"""An arbitrary enumeration of ``dom``: tid N runs 0..|dom|-1."""

SUCCESSOR_PROGRAM = """
    ordered(X, N) :- dom[](X, N).
    next_elem(X, Y) :- ordered(X, N), ordered(Y, M), succ(N, M).
    first_elem(X) :- dom[](X, 0).
"""
"""An arbitrary successor relation (a Hamiltonian ordering of ``dom``)."""

COUNTING_PROGRAM = """
    ordered(X, N) :- dom[](X, N).
    has_bigger(N) :- ordered(X, N), ordered(Y, M), succ(N, M).
    max_tid(N) :- ordered(X, N), not has_bigger(N).
    size(M) :- max_tid(N), succ(N, M).
"""
"""``size(|dom|)`` — deterministic although built on an arbitrary order."""

PARITY_PROGRAM = COUNTING_PROGRAM + """
    even_size(yes) :- max_tid(N), mod(N, 2, 1).
    odd_size(yes) :- max_tid(N), mod(N, 2, 0).
"""
"""Parity of |dom|: not expressible in Datalog, deterministic in IDLOG."""


def domain_db(names: Iterable[str]) -> Database:
    """A database with ``dom`` holding the given constants."""
    rows = [(name,) for name in names]
    if not rows:
        return Database()
    return Database.from_facts({"dom": rows})


def domain_size(db: Database) -> frozenset[frozenset[tuple]]:
    """Evaluate the counting query's answer set on ``db``.

    For non-empty ``dom`` this is the singleton ``{{(|dom|,)}}`` — the
    determinism is what the E11 experiment asserts.
    """
    return IdlogEngine(COUNTING_PROGRAM).answers(db, "size")


def domain_parity(db: Database) -> tuple[frozenset, frozenset]:
    """Answer sets of (even_size, odd_size) on ``db``."""
    engine = IdlogEngine(PARITY_PROGRAM)
    return (engine.answers(db, "even_size"),
            engine.answers(db, "odd_size"))
