"""Tape encodings of databases (paper §3.1).

"An input database with u-domain D is placed into an ordered list, where
each uninterpreted constant in D − C is encoded as a string of 0's and 1's"
with the distinguished symbols ``0 1 , ( ) [ ]`` in the tape alphabet.

An :class:`Encoding` fixes (i) a bijection from the u-domain to binary
codes and (ii) an order for relations and for the tuples inside each
relation.  *Genericity* of a machine means its answers do not depend on
either choice: :func:`input_order_independent` checks exactly that by
re-running a machine under permuted encodings and tuple orders.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence

from ..datalog.database import Database
from ..datalog.terms import Value
from ..errors import SchemaError
from .machine import NDTM


def binary_code(index: int, width: int) -> str:
    """The fixed-width binary code of ``index``."""
    if index >= 2 ** width:
        raise SchemaError(f"index {index} does not fit in {width} bits")
    return format(index, f"0{width}b")


@dataclass(frozen=True)
class Encoding:
    """A concrete database→tape encoding.

    Attributes:
        codes: u-constant -> binary string (all the same width).
        relation_order: The order relations are written in.
        tuple_orders: Per relation, the order its tuples are written in.
    """

    codes: dict[str, str]
    relation_order: tuple[str, ...]
    tuple_orders: dict[str, tuple[tuple[Value, ...], ...]]

    def encode_value(self, value: Value) -> str:
        """One value: a binary code (sort u) or binary numeral (sort i)."""
        if isinstance(value, str):
            code = self.codes.get(value)
            if code is None:
                raise SchemaError(f"no code for constant {value!r}")
            return code
        return format(value, "b")

    def encode_tuple(self, row: tuple[Value, ...]) -> str:
        return "(" + ",".join(self.encode_value(v) for v in row) + ")"

    def tape(self) -> str:
        """The full input tape: one ``[...]`` block per relation."""
        parts = []
        for name in self.relation_order:
            rows = self.tuple_orders[name]
            parts.append("[" + "".join(self.encode_tuple(r) for r in rows)
                         + "]")
        return "".join(parts)


def encode_database(db: Database,
                    relation_order: Optional[Sequence[str]] = None,
                    rng: Optional[random.Random] = None) -> Encoding:
    """Build an encoding of ``db``.

    With ``rng`` unset, constants are coded in sorted order and tuples
    written sorted (the canonical encoding); with ``rng``, both the
    code assignment and the tuple orders are shuffled — the ingredient for
    genericity checks.
    """
    constants = sorted(db.udomain)
    width = max(1, (len(constants) - 1).bit_length())
    indexes = list(range(len(constants)))
    if rng is not None:
        rng.shuffle(indexes)
    codes = {c: binary_code(i, width) for c, i in zip(constants, indexes)}

    names = list(relation_order) if relation_order is not None \
        else sorted(db.relation_names())
    tuple_orders = {}
    for name in names:
        rows = sorted(db.relation(name), key=lambda r: tuple(map(repr, r)))
        if rng is not None:
            rng.shuffle(rows)
        tuple_orders[name] = tuple(rows)
    return Encoding(codes, tuple(names), tuple_orders)


def decode_output(tape: str, codes: dict[str, str]) -> frozenset[tuple]:
    """Parse a ``(...)(...)`` output tape back into a relation.

    Values are decoded through the inverse of ``codes``; codes not in the
    table are read as binary numerals (sort i).
    """
    inverse = {code: const for const, code in codes.items()}
    rows = []
    text = tape.strip().strip("[]")
    if not text:
        return frozenset()
    for chunk in text.replace(")(", ")|(").split("|"):
        chunk = chunk.strip()
        if not (chunk.startswith("(") and chunk.endswith(")")):
            raise SchemaError(f"malformed output tuple {chunk!r}")
        fields = chunk[1:-1].split(",") if len(chunk) > 2 else []
        row = []
        for fieldtext in fields:
            if fieldtext in inverse:
                row.append(inverse[fieldtext])
            else:
                row.append(int(fieldtext, 2))
        rows.append(tuple(row))
    return frozenset(rows)


def input_order_independent(machine: NDTM, db: Database,
                            trials: int = 5, seed: int = 0,
                            max_steps: int = 2_000,
                            relation_order: Optional[Sequence[str]] = None,
                            ) -> bool:
    """Check genericity empirically: the machine's *decoded* answer set
    must be invariant under re-coding constants and re-ordering tuples.

    Returns:
        True when all ``trials`` randomized encodings produce the decoded
        answer set of the canonical encoding.
    """
    canonical = encode_database(db, relation_order)
    reference = frozenset(
        decode_output(out, canonical.codes)
        for out in machine.outputs(canonical.tape(), max_steps))
    rng = random.Random(seed)
    for _ in range(trials):
        encoding = encode_database(db, relation_order, rng)
        answers = frozenset(
            decode_output(out, encoding.codes)
            for out in machine.outputs(encoding.tape(), max_steps))
        if answers != reference:
            return False
    return True
