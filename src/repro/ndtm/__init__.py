"""Generic Turing machines and the §5 expressive-power constructions."""

from .encoding import (Encoding, binary_code, decode_output,
                       encode_database, input_order_independent)
from .idlog_power import (COUNTING_PROGRAM, PARITY_PROGRAM,
                          SUCCESSOR_PROGRAM, TOTAL_ORDER_PROGRAM,
                          domain_db, domain_parity, domain_size)
from .machine import (BLANK, Configuration, NDTM, Transition,
                      machine_from_table)
from .machines import choose_one_machine, parity_machine

__all__ = [
    "Encoding", "binary_code", "decode_output", "encode_database",
    "input_order_independent",
    "COUNTING_PROGRAM", "PARITY_PROGRAM", "SUCCESSOR_PROGRAM",
    "TOTAL_ORDER_PROGRAM", "domain_db", "domain_parity", "domain_size",
    "BLANK", "Configuration", "NDTM", "Transition", "machine_from_table",
    "choose_one_machine", "parity_machine",
]
