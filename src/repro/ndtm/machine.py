"""Non-deterministic (generic) Turing machines (paper §3.1 and §5).

The paper uses generic Turing machines [HS89] — TMs whose operation is
independent of how uninterpreted constants are encoded and of the order in
which the input is presented — to characterize the computable
(non-deterministic) queries, and shows stratified IDLOG captures exactly
that class (Theorem 6).

:class:`NDTM` is an executable machine model: a transition *relation*
(several options per (state, symbol)), runnable under an explicit oracle
(one choice index per step) or exhaustively by BFS over configurations.
:func:`repro.ndtm.encoding.encode_database` supplies the paper's tape
encoding of databases; genericity of a machine is *checked*, not assumed —
see :func:`repro.ndtm.encoding.input_order_independent`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..errors import EvaluationError, SchemaError

BLANK = "_"
"""The blank tape symbol."""

Move = int  # -1, 0, +1


@dataclass(frozen=True)
class Transition:
    """One transition option: write ``write``, move ``move``, go to ``state``."""

    state: str
    write: str
    move: Move

    def __post_init__(self) -> None:
        if self.move not in (-1, 0, 1):
            raise SchemaError(f"move must be -1, 0 or 1, got {self.move}")
        if len(self.write) != 1:
            raise SchemaError(f"write symbol must be one char: {self.write!r}")


@dataclass(frozen=True)
class Configuration:
    """A machine configuration: state, tape contents, head position."""

    state: str
    tape: tuple[tuple[int, str], ...]  # sparse: (position, non-blank symbol)
    head: int

    def read(self, position: int) -> str:
        for pos, sym in self.tape:
            if pos == position:
                return sym
        return BLANK

    def tape_string(self) -> str:
        """The tape from leftmost to rightmost non-blank cell."""
        cells = dict(self.tape)
        if not cells:
            return ""
        low, high = min(cells), max(cells)
        return "".join(cells.get(i, BLANK) for i in range(low, high + 1))


def _freeze(cells: Mapping[int, str]) -> tuple[tuple[int, str], ...]:
    return tuple(sorted((p, s) for p, s in cells.items() if s != BLANK))


@dataclass
class NDTM:
    """A non-deterministic Turing machine.

    Attributes:
        transitions: (state, read symbol) -> list of :class:`Transition`
            options; an empty/missing entry halts the machine.
        start: Initial state.
        accepting: States that halt immediately (in addition to dead ends).
    """

    transitions: dict[tuple[str, str], list[Transition]]
    start: str
    accepting: frozenset[str] = frozenset()

    def initial(self, tape: str) -> Configuration:
        """The start configuration with ``tape`` written from cell 0."""
        cells = {i: ch for i, ch in enumerate(tape) if ch != BLANK}
        return Configuration(self.start, _freeze(cells), 0)

    def options(self, config: Configuration) -> list[Transition]:
        """The applicable transitions (empty = halted)."""
        if config.state in self.accepting:
            return []
        return self.transitions.get(
            (config.state, config.read(config.head)), [])

    def step(self, config: Configuration,
             transition: Transition) -> Configuration:
        """Apply one transition."""
        cells = dict(config.tape)
        if transition.write == BLANK:
            cells.pop(config.head, None)
        else:
            cells[config.head] = transition.write
        return Configuration(transition.state, _freeze(cells),
                             config.head + transition.move)

    def run_with_oracle(self, tape: str, oracle: Sequence[int],
                        max_steps: int = 10_000) -> Configuration:
        """Run, resolving each choice with the next oracle value (mod the
        number of options).  The oracle is reused cyclically if short.

        Raises:
            EvaluationError: when the machine does not halt in
                ``max_steps`` steps.
        """
        config = self.initial(tape)
        for i in range(max_steps):
            options = self.options(config)
            if not options:
                return config
            pick = oracle[i % len(oracle)] % len(options) if oracle else 0
            config = self.step(config, options[pick])
        raise EvaluationError(f"machine did not halt within {max_steps} steps")

    def halting_configurations(self, tape: str, max_steps: int = 1_000,
                               max_configs: int = 100_000,
                               ) -> frozenset[Configuration]:
        """Every halting configuration reachable within ``max_steps``.

        BFS over the configuration graph with cycle detection.

        Raises:
            EvaluationError: when the explored set exceeds ``max_configs``
                or some branch runs past ``max_steps``.
        """
        initial = self.initial(tape)
        visited = {initial}
        frontier = [initial]
        halting: set[Configuration] = set()
        for _ in range(max_steps + 1):
            if not frontier:
                return frozenset(halting)
            next_frontier = []
            for config in frontier:
                options = self.options(config)
                if not options:
                    halting.add(config)
                    continue
                for transition in options:
                    successor = self.step(config, transition)
                    if successor not in visited:
                        visited.add(successor)
                        if len(visited) > max_configs:
                            raise EvaluationError(
                                "configuration space exceeds max_configs")
                        next_frontier.append(successor)
            frontier = next_frontier
        raise EvaluationError(
            f"some branch did not halt within {max_steps} steps")

    def outputs(self, tape: str, max_steps: int = 1_000,
                max_configs: int = 100_000) -> frozenset[str]:
        """The set of halting tape contents — the machine's answer set."""
        return frozenset(
            c.tape_string()
            for c in self.halting_configurations(tape, max_steps,
                                                 max_configs))


def machine_from_table(rows: Iterable[tuple[str, str, str, str, int]],
                       start: str,
                       accepting: Iterable[str] = ()) -> NDTM:
    """Build a machine from (state, read, next state, write, move) rows.

    Multiple rows for one (state, read) pair make the machine
    non-deterministic at that point.
    """
    transitions: dict[tuple[str, str], list[Transition]] = {}
    for state, read, nxt, write, move in rows:
        transitions.setdefault((state, read), []).append(
            Transition(nxt, write, move))
    return NDTM(transitions, start, frozenset(accepting))
