"""Synthetic workload generators for benchmarks and examples.

Deterministic (seeded) builders for the dataset shapes this repository's
experiments use: grouped relations like the paper's running ``emp(Name,
Dept)``, graph families for reachability workloads, and a small org
hierarchy for same-generation-style queries.  All generators return
ready :class:`~repro.datalog.database.Database` objects.

Realistic sampling workloads are *skewed*: department sizes follow
power laws, not uniform blocks.  The skewed builders
(:func:`zipf_employees`, :func:`mixture_employees`) generate grouped
relations whose group-size distributions stress the stratified-sampling
scenarios of :mod:`repro.eval` — Zipf ranks for heavy-tail skew, a
two-component mixture for the "few huge, many tiny" shape.  Same-seed
calls are bit-identical; the statistical assertions depend on that.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from .datalog.database import Database, Relation
from .errors import ReproError


def employees(per_dept: int, departments: int,
              salary_range: Optional[tuple[int, int]] = None,
              seed: int = 0) -> Database:
    """``emp(Name, Dept)`` (or ``emp(Name, Dept, Salary)``) with equal-size
    departments — the paper's running example at any scale."""
    rng = random.Random(seed)
    rows = []
    for d in range(departments):
        for i in range(per_dept):
            row: tuple = (f"e{d}_{i}", f"dept{d}")
            if salary_range is not None:
                low, high = salary_range
                row = row + (rng.randrange(low, high + 1),)
            rows.append(row)
    return Database.from_facts({"emp": rows})


def zipf_group_sizes(groups: int, total: int, skew: float = 1.5) -> list[int]:
    """Group sizes following a Zipf law: size(rank r) ∝ 1 / r**skew.

    Deterministic (no randomness): exactly ``total`` rows over exactly
    ``groups`` groups, every group at least 1, sizes non-increasing in
    rank.  The heavy head / long tail is the shape real department,
    customer, and product-category distributions take.
    """
    if groups < 1 or total < groups:
        raise ReproError(
            f"need total >= groups >= 1, got groups={groups} total={total}")
    weights = [1.0 / (rank ** skew) for rank in range(1, groups + 1)]
    scale = sum(weights)
    sizes = [max(1, int(total * w / scale)) for w in weights]
    # Fix rounding drift by adjusting the largest groups first (keeps the
    # distribution shape and the sizes non-increasing).
    drift = total - sum(sizes)
    rank = 0
    while drift != 0:
        if drift > 0:
            sizes[rank] += 1
            drift -= 1
        elif sizes[rank] > 1:
            sizes[rank] -= 1
            drift += 1
        rank = (rank + 1) % groups
    return sizes


def _grouped_employees(sizes: Sequence[int],
                       salary_range: Optional[tuple[int, int]],
                       rng: random.Random) -> Database:
    rows = []
    for d, size in enumerate(sizes):
        for i in range(size):
            row: tuple = (f"e{d}_{i}", f"dept{d}")
            if salary_range is not None:
                low, high = salary_range
                row = row + (rng.randrange(low, high + 1),)
            rows.append(row)
    return Database.from_facts({"emp": rows})


def zipf_employees(departments: int, total: int, skew: float = 1.5,
                   salary_range: Optional[tuple[int, int]] = None,
                   seed: int = 0) -> Database:
    """``emp(Name, Dept)`` with Zipf-skewed department sizes.

    ``dept0`` is the heavy head, the tail departments shrink as
    ``1 / rank**skew`` (never below one employee); exactly ``total``
    rows.  The stratified-sampling scenarios use this to check
    exactly-k-per-group semantics when k exceeds some groups and is a
    tiny fraction of others.
    """
    return _grouped_employees(zipf_group_sizes(departments, total, skew),
                              salary_range, random.Random(seed))


def mixture_employees(head_departments: int, tail_departments: int,
                      head_size: int, tail_size: int,
                      spread: float = 0.25,
                      salary_range: Optional[tuple[int, int]] = None,
                      seed: int = 0) -> Database:
    """``emp(Name, Dept)`` with a two-component mixture of group sizes.

    A few huge departments (mean ``head_size``) plus many small ones
    (mean ``tail_size``), each department's size drawn from a gaussian
    around its component mean with relative ``spread`` (floored at 1) —
    the bimodal shape Zipf alone cannot produce.  Seeded and
    deterministic.
    """
    if head_departments < 0 or tail_departments < 0 \
            or head_departments + tail_departments < 1:
        raise ReproError("need at least one department")
    if head_size < 1 or tail_size < 1:
        raise ReproError("component mean sizes must be >= 1")
    rng = random.Random(seed)
    sizes = []
    for mean in [head_size] * head_departments \
            + [tail_size] * tail_departments:
        sizes.append(max(1, round(rng.gauss(mean, mean * spread))))
    return _grouped_employees(sizes, salary_range, rng)


def people(n: int, prefix: str = "p") -> Database:
    """``person(X)`` over ``n`` individuals — the A/B-assignment shape.

    The paper's man/woman Example 2 partitions this relation via a
    two-way guess per person; at scale it is an A/B assignment over the
    whole population.
    """
    if n < 0:
        raise ReproError(f"population size must be >= 0, got {n}")
    person = Relation(1, tuples=[(f"{prefix}{i}",) for i in range(n)])
    return Database({"person": person})


def chain_graph(n: int, fanout: int = 0) -> Database:
    """``edge`` forming a chain ``n0 -> ... -> n<n>`` with optional leaf
    fan-out at every node (the E6 workload shape)."""
    rows = [(f"n{i}", f"n{i+1}") for i in range(n)]
    rows += [(f"n{i}", f"leaf{i}_{j}")
             for i in range(n) for j in range(fanout)]
    return Database.from_facts({"edge": rows})


def forest_graph(reachable: int, components: int, size: int) -> Database:
    """One chain reachable from ``n0`` plus disconnected clutter chains
    (the magic-sets / relevance workload shape)."""
    rows = [(f"n{i}", f"n{i+1}") for i in range(reachable)]
    for c in range(components):
        rows += [(f"u{c}_{i}", f"u{c}_{i+1}") for i in range(size)]
    return Database.from_facts({"edge": rows})


def random_graph(nodes: int, edges: int, seed: int = 0) -> Database:
    """A uniform random digraph with named nodes ``v0..v<nodes-1>``.

    The ``node`` relation lists every vertex (isolated ones included), so
    negation-style queries have their domain.
    """
    rng = random.Random(seed)
    names = [f"v{i}" for i in range(nodes)]
    edge = Relation(2)
    while len(edge) < min(edges, nodes * nodes):
        edge.add((rng.choice(names), rng.choice(names)))
    node = Relation(1, tuples=[(n,) for n in names])
    return Database({"edge": edge, "node": node})


def org_hierarchy(depth: int, branching: int) -> Database:
    """A complete management tree: ``reports_to(Employee, Manager)`` and
    ``person(X)`` — the same-generation workload shape."""
    person = Relation(1)
    reports = Relation(2)
    frontier = ["ceo"]
    person.add(("ceo",))
    counter = 0
    for _ in range(depth):
        next_frontier = []
        for boss in frontier:
            for _ in range(branching):
                name = f"w{counter}"
                counter += 1
                person.add((name,))
                reports.add((name, boss))
                next_frontier.append(name)
        frontier = next_frontier
    return Database({"person": person, "reports_to": reports})
