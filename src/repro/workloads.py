"""Synthetic workload generators for benchmarks and examples.

Deterministic (seeded) builders for the dataset shapes this repository's
experiments use: grouped relations like the paper's running ``emp(Name,
Dept)``, graph families for reachability workloads, and a small org
hierarchy for same-generation-style queries.  All generators return
ready :class:`~repro.datalog.database.Database` objects.
"""

from __future__ import annotations

import random
from typing import Optional

from .datalog.database import Database, Relation


def employees(per_dept: int, departments: int,
              salary_range: Optional[tuple[int, int]] = None,
              seed: int = 0) -> Database:
    """``emp(Name, Dept)`` (or ``emp(Name, Dept, Salary)``) with equal-size
    departments — the paper's running example at any scale."""
    rng = random.Random(seed)
    rows = []
    for d in range(departments):
        for i in range(per_dept):
            row: tuple = (f"e{d}_{i}", f"dept{d}")
            if salary_range is not None:
                low, high = salary_range
                row = row + (rng.randrange(low, high + 1),)
            rows.append(row)
    return Database.from_facts({"emp": rows})


def chain_graph(n: int, fanout: int = 0) -> Database:
    """``edge`` forming a chain ``n0 -> ... -> n<n>`` with optional leaf
    fan-out at every node (the E6 workload shape)."""
    rows = [(f"n{i}", f"n{i+1}") for i in range(n)]
    rows += [(f"n{i}", f"leaf{i}_{j}")
             for i in range(n) for j in range(fanout)]
    return Database.from_facts({"edge": rows})


def forest_graph(reachable: int, components: int, size: int) -> Database:
    """One chain reachable from ``n0`` plus disconnected clutter chains
    (the magic-sets / relevance workload shape)."""
    rows = [(f"n{i}", f"n{i+1}") for i in range(reachable)]
    for c in range(components):
        rows += [(f"u{c}_{i}", f"u{c}_{i+1}") for i in range(size)]
    return Database.from_facts({"edge": rows})


def random_graph(nodes: int, edges: int, seed: int = 0) -> Database:
    """A uniform random digraph with named nodes ``v0..v<nodes-1>``.

    The ``node`` relation lists every vertex (isolated ones included), so
    negation-style queries have their domain.
    """
    rng = random.Random(seed)
    names = [f"v{i}" for i in range(nodes)]
    edge = Relation(2)
    while len(edge) < min(edges, nodes * nodes):
        edge.add((rng.choice(names), rng.choice(names)))
    node = Relation(1, tuples=[(n,) for n in names])
    return Database({"edge": edge, "node": node})


def org_hierarchy(depth: int, branching: int) -> Database:
    """A complete management tree: ``reports_to(Employee, Manager)`` and
    ``person(X)`` — the same-generation workload shape."""
    person = Relation(1)
    reports = Relation(2)
    frontier = ["ceo"]
    person.add(("ceo",))
    counter = 0
    for _ in range(depth):
        next_frontier = []
        for boss in frontier:
            for _ in range(branching):
                name = f"w{counter}"
                counter += 1
                person.add((name,))
                reports.add((name, boss))
                next_frontier.append(name)
        frontier = next_frontier
    return Database({"person": person, "reports_to": reports})
