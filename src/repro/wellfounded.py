"""Well-founded semantics via the alternating fixpoint (Van Gelder).

The paper's §2.2 opens by citing the search for declarative semantics of
logic programs with negation — perfect models [Prz88], stable models
[GL88], and the well-founded semantics [VGRS88].  This module completes
the trio: a three-valued model assigning every ground atom *true*,
*false*, or *undefined*.

Algorithm (alternating fixpoint): with ``Γ(S)`` = least model of the
Gelfond–Lifschitz reduct w.r.t. ``S``, iterate ``U_{i+1} = Γ(Γ(U_i))``
from ``U_0 = ∅``; the sequence of under-estimates grows to the true
atoms, and ``Γ`` of the limit over-estimates to the non-false atoms.
Grounding reuses the machinery of :mod:`repro.stable.models`.

Relationships checked by the tests:

* on stratified programs the well-founded model is total and equals the
  perfect model;
* every stable model contains the well-founded true atoms and avoids the
  false ones;
* odd negative loops (no stable model) come out *undefined* rather than
  inconsistent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from .datalog.ast import Program
from .datalog.database import Database
from .datalog.parser import parse_program
from .stable.models import StableEngine, State


@dataclass(frozen=True)
class WellFoundedModel:
    """A three-valued model.

    Attributes:
        true: Atoms true in the well-founded model.
        false: Atoms false in it.
        undefined: Atoms with no well-founded truth value.
    """

    true: State
    false: State
    undefined: State

    @property
    def is_total(self) -> bool:
        """True when nothing is undefined (two-valued model)."""
        return not self.undefined

    def relation(self, pred: str) -> frozenset[tuple]:
        """The *true* tuples of one predicate."""
        return frozenset(row for name, row in self.true if name == pred)

    def undefined_relation(self, pred: str) -> frozenset[tuple]:
        """The *undefined* tuples of one predicate."""
        return frozenset(
            row for name, row in self.undefined if name == pred)


class WellFoundedEngine:
    """Computes well-founded models of normal programs.

    Example (an even negative loop — everything undefined):
        >>> engine = WellFoundedEngine('''
        ...     p(X) :- e(X), not q(X).
        ...     q(X) :- e(X), not p(X).
        ... ''')
        >>> model = engine.model(Database.from_facts({"e": [("a",)]}))
        >>> model.undefined_relation("p")
        frozenset({('a',)})
    """

    def __init__(self, program: Union[str, Program]) -> None:
        if isinstance(program, str):
            program = parse_program(program)
        # Reuse StableEngine's validation, grounding and reduct machinery.
        self._stable = StableEngine(program)
        self.program = self._stable.program

    def model(self, db: Database) -> WellFoundedModel:
        """The well-founded model of the program on ``db``."""
        base = self._stable._initial_facts(db)
        ground = self._stable.ground_clauses(db)
        universe = self._stable.upper_bound(db)

        def gamma(candidate: State) -> State:
            return StableEngine._least_model_of_reduct(
                ground, candidate, base)

        under: State = frozenset()
        while True:
            over = gamma(under)
            next_under = gamma(over)
            if next_under == under:
                break
            under = next_under
        over = gamma(under)
        true = under
        false = universe - over
        undefined = universe - true - false
        return WellFoundedModel(true, frozenset(false),
                                frozenset(undefined))

    def answers(self, db: Database, pred: str) -> frozenset[tuple]:
        """The true tuples of ``pred`` (the cautious answer)."""
        return self.model(db).relation(pred)
