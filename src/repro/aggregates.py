"""Aggregates via tuple identifiers — an extension the paper enables.

Plain Datalog cannot count.  IDLOG can: the tid column of ``p[s]``
enumerates each group ``0..k-1``, so the *maximum tid per group* + 1 is
the group's cardinality — a **deterministic** query (every ID-function
gives the same maximum) built from a non-deterministic primitive, exactly
the §5 counting construction generalized to grouped relations.

Builders return a :class:`GroupAggregate` wrapping a ready
:class:`~repro.core.query.IdlogQuery`; each generated program is pure
IDLOG, so the same machinery (answer sets, determinism checks) applies.

* :func:`count_per_group` — group cardinalities;
* :func:`sum_per_group` — sums of an i-sorted column per group, folded
  along the tid order (any order gives the same sum);
* :func:`min_per_group` / :func:`max_per_group` — extrema of an i-sorted
  column per group (no tids needed, included for a complete aggregate
  vocabulary over the same API).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .core.query import Answer, IdlogQuery
from .datalog.ast import Program
from .datalog.database import Database
from .datalog.parser import parse_program
from .errors import SchemaError


@dataclass(frozen=True)
class GroupAggregate:
    """A compiled grouped aggregate.

    Attributes:
        query: The underlying IDLOG query; its answers are relations of
            (group key..., aggregate value) tuples.
        pred: The output predicate name.
    """

    query: IdlogQuery
    pred: str

    @property
    def program(self) -> Program:
        """The generated IDLOG program."""
        return self.query.compiled.program

    def compute(self, db: Database) -> Answer:
        """Evaluate the aggregate (canonical assignment — deterministic)."""
        return self.query.canonical(db)

    def is_deterministic_on(self, db: Database,
                            max_branches: int = 200_000) -> bool:
        """Verify order-independence: the answer set is a singleton."""
        return self.query.is_deterministic_on(db, max_branches)


def _group_vars(arity: int, group: Sequence[int]) -> str:
    return ", ".join(f"A{i}" for i in sorted(group))


def _all_vars(arity: int) -> str:
    return ", ".join(f"A{i}" for i in range(1, arity + 1))


def _check_positions(arity: int, positions: Sequence[int]) -> None:
    bad = [i for i in positions if not 1 <= i <= arity]
    if bad:
        raise SchemaError(f"positions {bad} outside 1..{arity}")


def count_per_group(relation: str, arity: int, group: Sequence[int],
                    output: str = "count") -> GroupAggregate:
    """``output(key..., n)``: each group of ``relation`` has n tuples.

    Deterministic: the maximum tid of a group is |group|−1 under *every*
    ID-function.

    >>> agg = count_per_group("emp", 2, group=[2])
    >>> db = Database.from_facts({"emp": [
    ...     ("ann", "toys"), ("bob", "toys"), ("dee", "it")]})
    >>> sorted(agg.compute(db))
    [('it', 1), ('toys', 2)]
    """
    _check_positions(arity, group)
    if not group:
        raise SchemaError("count_per_group needs a non-empty grouping; "
                          "use group=[...] or count the whole relation "
                          "with a constant group column")
    keys = _group_vars(arity, group)
    args = _all_vars(arity)
    gspec = ",".join(str(i) for i in sorted(group))
    source = f"""
        numbered({keys}, T) :- {relation}[{gspec}]({args}, T).
        has_higher({keys}, T) :- numbered({keys}, T), numbered({keys}, T2),
                                 succ(T, T2).
        {output}({keys}, N) :- numbered({keys}, T),
                               not has_higher({keys}, T), succ(T, N).
    """
    return GroupAggregate(IdlogQuery(parse_program(source), output), output)


def sum_per_group(relation: str, arity: int, group: Sequence[int],
                  value: int, output: str = "total") -> GroupAggregate:
    """``output(key..., s)``: s sums the ``value`` column per group.

    The fold runs along the tid order: ``prefix(key, t, s)`` is the sum of
    the first t+1 tuples; the last prefix is the total.  Addition is
    commutative, so every ID-function yields the same answer —
    deterministic despite the arbitrary order.
    """
    _check_positions(arity, group)
    _check_positions(arity, [value])
    if value in set(group):
        raise SchemaError("the summed column cannot be a grouping column")
    keys = _group_vars(arity, group)
    args = _all_vars(arity)
    gspec = ",".join(str(i) for i in sorted(group))
    val = f"A{value}"
    source = f"""
        numbered({keys}, T, {val}) :- {relation}[{gspec}]({args}, T).
        prefix({keys}, 0, V) :- numbered({keys}, 0, V).
        prefix({keys}, T2, S2) :- prefix({keys}, T, S),
                                  succ(T, T2), numbered({keys}, T2, V),
                                  S2 = S + V.
        has_higher({keys}, T) :- numbered({keys}, T, V),
                                 numbered({keys}, T2, V2), succ(T, T2).
        {output}({keys}, S) :- prefix({keys}, T, S),
                               not has_higher({keys}, T).
    """
    return GroupAggregate(IdlogQuery(parse_program(source), output), output)


def _extremum(relation: str, arity: int, group: Sequence[int], value: int,
              output: str, comparison: str) -> GroupAggregate:
    _check_positions(arity, group)
    _check_positions(arity, [value])
    keys = _group_vars(arity, group)
    args = _all_vars(arity)
    val = f"A{value}"
    keyargs = f"{keys}, " if keys else ""
    source = f"""
        vals({keyargs}{val}) :- {relation}({args}).
        beaten({keyargs}V) :- vals({keyargs}V), vals({keyargs}W),
                              {('W < V' if comparison == 'min' else 'V < W')}.
        {output}({keyargs}V) :- vals({keyargs}V), not beaten({keyargs}V).
    """
    return GroupAggregate(IdlogQuery(parse_program(source), output), output)


def min_per_group(relation: str, arity: int, group: Sequence[int],
                  value: int, output: str = "minimum") -> GroupAggregate:
    """``output(key..., m)``: the smallest ``value`` per group."""
    return _extremum(relation, arity, group, value, output, "min")


def max_per_group(relation: str, arity: int, group: Sequence[int],
                  value: int, output: str = "maximum") -> GroupAggregate:
    """``output(key..., m)``: the largest ``value`` per group."""
    return _extremum(relation, arity, group, value, output, "max")
