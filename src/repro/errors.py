"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch one base class.  Sub-hierarchies mirror the processing pipeline:
parsing, static checks (safety / stratification), and evaluation.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ParseError(ReproError):
    """Raised when program text cannot be parsed.

    Attributes:
        line: 1-based line number of the offending token, if known.
        column: 1-based column number of the offending token, if known.
    """

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None) -> None:
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(message + location)
        self.line = line
        self.column = column


class SchemaError(ReproError):
    """Raised on arity or sort mismatches between atoms and relations."""


class SafetyError(ReproError):
    """Raised when a clause is not safe (cannot be planned).

    A clause is safe when some ordering of its body literals evaluates every
    arithmetic predicate under an allowed binding pattern, every negative
    literal with all of its variables bound, and ends with every head
    variable bound (paper, Section 2.2).
    """


class StratificationError(ReproError):
    """Raised when a program is not stratified.

    A program is unstratifiable when a predicate depends on itself through
    negation or through an ID-literal (both force a strictly lower stratum).
    """


class EvaluationError(ReproError):
    """Raised when evaluation fails for a reason not caught statically."""


class UnsafeBuiltinError(EvaluationError):
    """Raised when a builtin call would enumerate infinitely many solutions.

    The static binding-pattern check is only a sufficient condition (paper,
    Section 2.2); a few patterns are conditionally finite (e.g. ``*(0, Y, 0)``)
    and are rejected at run time instead of silently looping.
    """


class ReplayError(EvaluationError):
    """Raised when replaying a recorded choice log cannot reproduce the run.

    Either the database drifted since recording (a block's contents no
    longer match the recorded digest, blocks appeared or vanished) or the
    program now materializes an ID-relation the log never saw.  The
    message names the exact ``(predicate, grouping, block)`` site and the
    expected vs. found state.
    """


class NotDeterministicError(ReproError):
    """Raised when a single answer is requested from a query whose answer
    set on the given input contains more than one relation and the caller
    demanded determinism."""


class ChoiceConditionError(ReproError):
    """Raised when a DATALOG^C program violates condition (C1) or (C2)
    of the paper (Section 3.2.2)."""
