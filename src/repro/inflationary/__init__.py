"""Non-deterministic inflationary semantics: DL and N-DATALOG (§3.2.1)."""

from .dl import (DLClause, DLEngine, DLProgram, Fact, Firing, State,
                 parse_dl_program, parse_ndatalog_program)

__all__ = [
    "DLClause", "DLEngine", "DLProgram", "Fact", "Firing", "State",
    "parse_dl_program", "parse_ndatalog_program",
]
