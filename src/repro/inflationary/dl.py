"""DL and N-DATALOG under (non-)deterministic inflationary semantics.

Section 3.2.1 of the paper reviews two languages of Abiteboul–Vianu whose
non-determinism comes from *firing one clause instantiation at a time*:

* **DL**: Datalog syntax plus negative body literals, multiple positive
  head atoms, and invented values (head variables absent from the body);
* **N-DATALOG**: additionally allows negative literals in heads, read as
  deletions; an instantiation fires only if its head is consistent.

Their *non-deterministic inflationary semantics* applies one instantiation
of one clause at a time, never deleting (DL) until nothing new can be
inferred; the answer set collects all reachable terminal states.  The
*deterministic* inflationary semantics fires all instantiations of every
clause simultaneously per stage.  Example 3 of the paper contrasts the two:
``man(X) :- person(X), not woman(X)`` plus the symmetric clause yields
``man(r) = {∅, {a}, {b}, {a,b}}`` non-deterministically but
``{(a), (b)}`` deterministically.

These interpreters exist for comparison with IDLOG (experiment E3); they
use explicit state-space search and are meant for example-scale inputs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Optional, Union

from ..datalog.ast import Atom, Clause, Literal
from ..datalog.database import Database, Relation
from ..datalog.parser import parse_head_body_clauses
from ..datalog.safety import order_body
from ..datalog.seminaive import EvalStats, RelationStore, _solve_literals
from ..datalog.terms import Const, Value, Var
from ..errors import EvaluationError, SchemaError

Fact = tuple[str, tuple[Value, ...]]
"""A ground fact: (predicate, argument tuple)."""

State = frozenset[Fact]
"""An instantaneous database: the set of facts currently true."""


@dataclass(frozen=True)
class DLClause:
    """A generalized clause with a list of head literals.

    DL heads are all positive; N-DATALOG heads may be negative (deletions).
    """

    heads: tuple[Literal, ...]
    body: tuple[Literal, ...]

    def __post_init__(self) -> None:
        for literal in self.heads:
            atom = literal.atom
            if not isinstance(atom, Atom) or atom.is_builtin or atom.is_id:
                raise SchemaError(
                    f"head literal {literal} must be an ordinary atom")

    @property
    def invented_vars(self) -> frozenset[Var]:
        """Head variables not bound by the body (DL value invention)."""
        body_vars: set[Var] = set()
        for literal in self.body:
            if literal.positive:
                body_vars |= literal.vars
        head_vars: set[Var] = set()
        for literal in self.heads:
            head_vars |= literal.vars
        return frozenset(head_vars - body_vars)

    @property
    def has_deletion(self) -> bool:
        """True when some head literal is negative."""
        return any(not lit.positive for lit in self.heads)

    def __str__(self) -> str:
        heads = ", ".join(str(lit) for lit in self.heads)
        if not self.body:
            return f"{heads}."
        return f"{heads} :- {', '.join(str(lit) for lit in self.body)}."


@dataclass(frozen=True)
class DLProgram:
    """A DL or N-DATALOG program."""

    clauses: tuple[DLClause, ...]
    name: str = "dl_program"

    @property
    def has_invention(self) -> bool:
        """True when some clause invents values."""
        return any(c.invented_vars for c in self.clauses)

    @property
    def has_deletion(self) -> bool:
        """True when some head literal is negative (N-DATALOG)."""
        return any(c.has_deletion for c in self.clauses)

    @property
    def predicates(self) -> frozenset[str]:
        preds: set[str] = set()
        for clause in self.clauses:
            for literal in clause.heads:
                preds.add(literal.atom.pred)
            for literal in clause.body:
                atom = literal.atom
                if isinstance(atom, Atom) and not atom.is_builtin:
                    preds.add(atom.pred)
        return frozenset(preds)

    def arity(self, pred: str) -> int:
        for clause in self.clauses:
            for literal in tuple(clause.heads) + tuple(clause.body):
                atom = literal.atom
                if isinstance(atom, Atom) and not atom.is_builtin \
                        and atom.pred == pred:
                    return len(atom.args)
        raise KeyError(pred)


def parse_dl_program(text: str, allow_deletion: bool = False,
                     name: str = "dl_program") -> DLProgram:
    """Parse a DL (or, with ``allow_deletion``, N-DATALOG) program.

    Heads are comma-separated literal lists; bodies use ordinary Datalog
    syntax.  ``not`` in a head is only legal for N-DATALOG.
    """
    clauses = []
    for heads, body in parse_head_body_clauses(text):
        clause = DLClause(heads, body)
        if clause.has_deletion and not allow_deletion:
            raise SchemaError(
                f"negative head literal in {clause}: DL forbids deletions "
                "(parse with allow_deletion=True for N-DATALOG)")
        if allow_deletion:
            unbound = clause.invented_vars
            if unbound:
                names = sorted(v.name for v in unbound)
                raise SchemaError(
                    f"N-DATALOG requires head variables to be positively "
                    f"bound in the body; {names} are not ({clause})")
        clauses.append(clause)
    return DLProgram(tuple(clauses), name=name)


def parse_ndatalog_program(text: str,
                           name: str = "ndatalog_program") -> DLProgram:
    """Parse an N-DATALOG program (negative heads allowed)."""
    return parse_dl_program(text, allow_deletion=True, name=name)


@dataclass(frozen=True)
class Firing:
    """One applicable clause instantiation.

    Attributes:
        adds: Facts the firing asserts.
        deletes: Facts the firing retracts (N-DATALOG only).
    """

    adds: frozenset[Fact]
    deletes: frozenset[Fact]

    def apply(self, state: State) -> State:
        """The successor state."""
        return (state - self.deletes) | self.adds

    def productive_on(self, state: State) -> bool:
        """True when applying the firing changes ``state``."""
        return not self.adds <= state or bool(self.deletes & state)


class DLEngine:
    """Interpreter for DL / N-DATALOG inflationary semantics.

    Example (the paper's Example 3):
        >>> engine = DLEngine('''
        ...     man(X) :- person(X), not woman(X).
        ...     woman(X) :- person(X), not man(X).
        ... ''')
        >>> db = Database.from_facts({"person": [("a",), ("b",)]})
        >>> len(engine.answers(db, "man"))
        4
    """

    def __init__(self, program: Union[str, DLProgram],
                 allow_deletion: bool = False) -> None:
        if isinstance(program, str):
            program = parse_dl_program(program, allow_deletion)
        self.program = program
        self._plans = [self._plan(clause) for clause in self.program.clauses]
        self._invent_counter = 0

    @staticmethod
    def _plan(clause: DLClause) -> tuple[Literal, ...]:
        # Reuse the Datalog planner with a variable-free dummy head: head
        # variables may legitimately stay unbound (value invention).
        dummy = Clause(Atom("dl_goal", ()), clause.body)
        return order_body(dummy)

    def _initial_state(self, db: Database) -> State:
        facts: set[Fact] = set()
        for name in db.relation_names():
            for row in db.relation(name):
                facts.add((name, row))
        return frozenset(facts)

    def _store_for(self, state: State) -> RelationStore:
        stats = EvalStats()
        store = RelationStore(None, stats)
        relations: dict[str, Relation] = {}
        for pred in self.program.predicates:
            relations[pred] = Relation(self.program.arity(pred))
        for pred, row in state:
            if pred not in relations:
                relations[pred] = Relation(len(row))
            relations[pred].add(row)
        for pred, relation in relations.items():
            store.install(pred, relation)
        return store

    def _fresh_value(self) -> str:
        self._invent_counter += 1
        return f"new_{self._invent_counter}"

    def firings(self, state: State,
                invent: bool = True) -> Iterator[Firing]:
        """All productive instantiations applicable in ``state``."""
        store = self._store_for(state)
        stats = EvalStats()
        for clause, plan in zip(self.program.clauses, self._plans):
            invented = clause.invented_vars
            if invented and not invent:
                raise EvaluationError(
                    f"clause {clause} invents values; exhaustive "
                    "enumeration over invented values is not supported")
            for subst in _solve_literals(plan, 0, {}, store, stats, {}):
                full = dict(subst)
                for var in invented:
                    full[var] = self._fresh_value()
                adds: set[Fact] = set()
                deletes: set[Fact] = set()
                for literal in clause.heads:
                    atom = literal.atom
                    row = tuple(
                        t.value if isinstance(t, Const) else full[t]
                        for t in atom.args)
                    (adds if literal.positive else deletes).add(
                        (atom.pred, row))
                if adds & deletes:
                    continue  # inconsistent head: not fireable
                firing = Firing(frozenset(adds), frozenset(deletes))
                if firing.productive_on(state):
                    yield firing

    def one(self, db: Database, seed: Optional[int] = None,
            max_steps: int = 10_000) -> State:
        """One terminal state of the non-deterministic semantics."""
        rng = random.Random(seed)
        state = self._initial_state(db)
        for _ in range(max_steps):
            choices = list(self.firings(state))
            if not choices:
                return state
            state = rng.choice(choices).apply(state)
        raise EvaluationError(
            f"no terminal state within {max_steps} steps (the program may "
            "not terminate under one-at-a-time firing)")

    def answers(self, db: Database, pred: str,
                max_states: int = 20_000) -> frozenset[frozenset[tuple]]:
        """All values of ``pred`` over every reachable terminal state."""
        if self.program.has_invention:
            raise EvaluationError(
                "answer-set enumeration over invented values is unsupported")
        initial = self._initial_state(db)
        visited: set[State] = set()
        results: set[frozenset[tuple]] = set()
        stack = [initial]
        while stack:
            state = stack.pop()
            if state in visited:
                continue
            visited.add(state)
            if len(visited) > max_states:
                raise EvaluationError(
                    "state space exceeds max_states; the input is too "
                    "non-deterministic to enumerate")
            successors = [f.apply(state)
                          for f in self.firings(state, invent=False)]
            if not successors:
                results.add(self.project(state, pred))
            else:
                stack.extend(successors)
        return frozenset(results)

    def deterministic_fixpoint(self, db: Database,
                               max_stages: int = 10_000) -> State:
        """The deterministic inflationary fixpoint (all firings per stage).

        Only defined for DL (no deletions): simultaneous additions commute.
        """
        if self.program.has_deletion:
            raise EvaluationError(
                "the deterministic inflationary semantics is only defined "
                "for DL programs (no deletions)")
        state = self._initial_state(db)
        for _ in range(max_stages):
            adds: set[Fact] = set()
            for firing in self.firings(state):
                adds |= firing.adds
            if adds <= state:
                return state
            state = state | adds
        raise EvaluationError(
            f"no fixpoint within {max_stages} stages (value invention can "
            "make the deterministic semantics diverge)")

    @staticmethod
    def project(state: State, pred: str) -> frozenset[tuple]:
        """The relation of ``pred`` in a state."""
        return frozenset(row for name, row in state if name == pred)
