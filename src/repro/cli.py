"""Command-line interface.

The subcommands::

    repro-idlog check PROGRAM        # parse + safety + stratification
    repro-idlog lint PROGRAM         # typo warnings + optimization hints
    repro-idlog explain PROGRAM      # the evaluation plan (static)
    repro-idlog run PROGRAM [-f FACTS] [-q PRED] [--mode MODE] ...
    repro-idlog profile PROGRAM [-f FACTS] ...   # EXPLAIN ANALYZE
    repro-idlog why PROGRAM 'fact.' [-f FACTS]   # derivation tree
    repro-idlog stats [PROGRAM] [-f FACTS | --dir DIR]  # memory report
    repro-idlog diverge RUN_A RUN_B  # first differing ID choice of 2 runs
    repro-idlog eval [--quick] [--out FILE]  # scenario suite + stats checks
    repro-idlog serve [--port P] [--unix PATH] ...   # long-lived server
    repro-idlog connect [PROGRAM] [-f FACTS] ...     # query a server
    repro-idlog plans [TRACE]        # worst-estimated clauses by q-error

``PROGRAM`` is a file of clauses in the surface syntax; ``FACTS`` is a
file of ground facts (``emp(ann, toys).``), whose ``udom(c)`` facts — if
any — declare extra u-domain elements.  The engine is picked from the
program's constructs: choice operators → DATALOG^C, ID-atoms → IDLOG,
otherwise plain Datalog.

Modes for ``run``:

* ``run``      one model under the canonical (deterministic) assignment;
* ``one``      one arbitrary answer (``--seed`` for reproducibility);
* ``answers``  the exact answer set (``--max-branches`` guards blowup).

Observability (see ``docs/OBSERVABILITY.md``): ``run --profile`` prints
the per-clause EXPLAIN ANALYZE table after the results, ``run --trace
FILE`` streams every span event as JSONL (closed in a ``finally:`` so a
failed evaluation still leaves valid partial JSONL on disk), ``run
--metrics FILE`` exports aggregated metrics (Prometheus text or JSON;
flushed in a ``finally:`` so a failed run still leaves a valid file),
``run --progress`` prints stratum/round heartbeats to stderr, and
``profile`` evaluates just to print the table.  ``plans`` reads a
recorded trace (or queries a running server) and ranks clauses by
q-error — how far the planner's cardinality estimates missed the
executed actuals.

Nondeterminism observability: ``run --record FILE`` captures every
ID-function decision (plus the answers) as a JSONL choice log, ``run
--replay FILE`` re-applies a recorded log — reproducing the recorded
model exactly or failing with a drift diagnostic — and ``diverge``
compares two recorded runs, naming the first differing ID choice and
the answer delta it caused.  ``stats`` reports
memory/cardinality introspection (rows, index buckets, approximate
bytes) for a facts file, an evaluation result, or a saved database
directory; ``why`` prints the derivation tree of one ground fact.

Server mode (see ``docs/SERVER.md``): ``serve`` starts the long-lived
IDLOG server — persistent sessions, prepared programs, concurrent
clients over newline-delimited JSON, ``GET /metrics`` + ``/healthz`` on
the same listener — and ``connect`` is the matching client: with no
PROGRAM it pings the server and prints its stats; with a PROGRAM it
opens a session, asserts the ``-f`` facts, runs the program remotely,
and prints the answers exactly like ``run``.

Scenario verification (see ``docs/SCENARIOS.md``): ``eval`` runs the
built-in scenario suite — exact answer checks for deterministic queries,
chi-square uniformity and choice-log stability for sampling ones —
across the engine×plan matrix, and writes a schema-stamped JSON
:class:`~repro.eval.EvalReport` (flushed in a ``finally:`` so a failed
run still leaves a valid partial report).
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from typing import Optional, Sequence

from .choice import ChoiceEngine
from .core import IdlogEngine
from .core.dbp import strip_database_program
from .datalog import Database, parse_program
from .datalog.explain import explain_program
from .datalog.safety import check_program
from .datalog.stratify import stratify
from .datalog.metrics import MetricsTracer, ProgressTracer
from .datalog.trace import (JsonTracer, TeeTracer, TimingTracer,
                            format_profile, use_tracer)
from .errors import ReproError


def _load_program(path: str):
    with open(path) as handle:
        return parse_program(handle.read(), name=path)


def _load_facts(path: Optional[str]) -> Database:
    if path is None:
        return Database()
    with open(path) as handle:
        program = parse_program(handle.read(), name=path)
    non_facts = [c for c in program.clauses if not c.is_fact]
    if non_facts:
        raise ReproError(
            f"facts file {path} contains non-fact clauses "
            f"(first: {non_facts[0]})")
    _, db = strip_database_program(program)
    return db


def _print_relation(rows, out) -> None:
    for row in sorted(rows, key=lambda r: tuple(map(repr, r))):
        print("  " + ", ".join(map(str, row)), file=out)


def _cmd_check(args, out) -> int:
    program = _load_program(args.program)
    if program.has_choice():
        # Validates (C1)/(C2) plus safety/stratification of the
        # translated program; the planner itself rejects raw choice atoms.
        ChoiceEngine(program)
    else:
        check_program(program)
    strat = stratify(program)
    print(f"ok: {len(program)} clauses, "
          f"{len(program.predicates)} predicates, "
          f"{strat.depth} strata", file=out)
    print(f"input predicates: "
          f"{', '.join(sorted(program.input_predicates)) or '(none)'}",
          file=out)
    print(f"output predicates: "
          f"{', '.join(sorted(program.head_predicates)) or '(none)'}",
          file=out)
    if program.has_choice():
        print("constructs: choice operator (DATALOG^C)", file=out)
    if program.has_id_atoms():
        groupings = ", ".join(
            f"{p}[{','.join(map(str, sorted(g)))}]"
            for p, g in sorted(program.id_groupings,
                               key=lambda pg: (pg[0], sorted(pg[1]))))
        print(f"constructs: ID-predicates ({groupings})", file=out)
    if not program.has_choice():
        from .datalog.sorts import format_signatures, infer_signatures
        print("inferred sorts (0=u, 1=i, ?=either):", file=out)
        for line in format_signatures(
                infer_signatures(program)).splitlines():
            print(f"  {line}", file=out)
    return 0


def _cmd_lint(args, out) -> int:
    from .datalog.lint import lint
    program = _load_program(args.program)
    findings = lint(program, hints=not args.no_hints)
    if not findings:
        print("clean: no findings", file=out)
        return 0
    for finding in findings:
        print(str(finding), file=out)
    warnings = sum(1 for f in findings if f.code.startswith("W"))
    print(f"{warnings} warning(s), {len(findings) - warnings} hint(s)",
          file=out)
    return 0


def _cmd_explain(args, out) -> int:
    program = _load_program(args.program)
    if program.has_choice():
        from .choice import choice_to_idlog
        program = choice_to_idlog(program).program
        print("(choice operators translated to IDLOG — Theorem 2)",
              file=out)
    if args.plan is not None or args.facts is not None:
        from .datalog.explain import explain_plan
        db = _load_facts(args.facts)
        print(explain_plan(program, db if args.facts else None,
                           plan=args.plan or "cost"), file=out)
        return 0
    print(explain_program(program), file=out)
    return 0


def _pick_queries(program, requested: Optional[str]) -> list[str]:
    if requested:
        if requested not in program.head_predicates:
            raise ReproError(
                f"{requested} is not an output predicate of the program")
        return [requested]
    return sorted(program.head_predicates)


def _make_tracers(args):
    """(tracer or None, TimingTracer?, JsonTracer?, MetricsTracer?).

    The tracer is installed *ambiently* (:func:`use_tracer`) so every
    evaluation the command triggers is traced — including the DATALOG^C
    front end's internal IDLOG evaluations, which the CLI does not
    construct directly.  ``--profile``, ``--trace``, ``--metrics`` and
    ``--progress`` each contribute one tracer; several at once fan out
    through a :class:`TeeTracer`.
    """
    timing = TimingTracer() if getattr(args, "profile", False) else None
    json_tracer = JsonTracer(args.trace) \
        if getattr(args, "trace", None) else None
    metrics = MetricsTracer() if getattr(args, "metrics", None) else None
    progress = ProgressTracer() if getattr(args, "progress", False) \
        else None
    tracers = [t for t in (timing, json_tracer, metrics, progress)
               if t is not None]
    if not tracers:
        return None, None, None, None
    tracer = tracers[0] if len(tracers) == 1 else TeeTracer(tracers)
    return tracer, timing, json_tracer, metrics


def _check_record_replay(args, program) -> None:
    """Validate the ``run --record/--replay`` flag combination early.

    Runs before any tracer file is opened, so a usage error leaves no
    half-written artifacts behind.
    """
    if not (getattr(args, "record", None) or getattr(args, "replay", None)):
        return
    if args.record and args.replay:
        raise ReproError("--record and --replay are mutually exclusive")
    if args.mode == "answers":
        raise ReproError(
            "--record/--replay capture a single run; --mode answers "
            "enumerates every run")
    if program.has_choice():
        raise ReproError(
            "record/replay applies to Datalog/IDLOG evaluation; translate "
            "the choice program first (repro-idlog explain shows the "
            "translation)")


def _verify_replay(result, replay_log, out) -> None:
    """Check a replayed result against the log's recorded answers."""
    checked = 0
    for pred in sorted(replay_log.answers):
        found = frozenset(result.tuples(pred))
        expected = replay_log.answer_tuples(pred)
        if found != expected:
            missing = sorted(map(str, expected - found))[:4]
            extra = sorted(map(str, found - expected))[:4]
            raise ReproError(
                f"replayed answers for {pred} differ from the recorded "
                f"run: {len(expected - found)} missing "
                f"(e.g. {', '.join(missing) or '-'}), "
                f"{len(found - expected)} extra "
                f"(e.g. {', '.join(extra) or '-'}) — the program or "
                "database changed since the log was recorded")
        checked += 1
    verdict = (f"answers match the recorded run "
               f"({checked} predicate(s) verified)"
               if checked else "log carries no answer snapshot to verify")
    print(f"(replay: {len(replay_log)} ID choice(s) re-applied; "
          f"{verdict})", file=out)


def _cmd_run(args, out) -> int:
    program = _load_program(args.program)
    db = _load_facts(args.facts)
    queries = _pick_queries(program, args.query)
    _check_record_replay(args, program)

    record_log = None
    replay_log = None
    if args.record:
        from .core.choicelog import ChoiceLog
        record_log = ChoiceLog(meta={
            "program": args.program, "facts": args.facts,
            "mode": args.mode, "seed": args.seed})
    elif args.replay:
        from .core.choicelog import ChoiceLog
        replay_log = ChoiceLog.load(args.replay)

    tracer, timing, json_tracer, metrics = _make_tracers(args)

    if program.has_choice():
        engine = ChoiceEngine(program)
        if args.plan != "greedy" or args.engine != "batch":
            print("(note: --plan/--engine apply to Datalog/IDLOG "
                  "evaluation; the choice front end uses its own pipeline)",
                  file=out)
    else:
        engine = IdlogEngine(program, plan=args.plan, engine=args.engine)

    scope = use_tracer(tracer) if tracer is not None \
        else contextlib.nullcontext()
    # The finally: guarantees the JSONL trace and the metrics export are
    # flushed even when the evaluation dies mid-stratum — a partial
    # artifact of a failed run is exactly when you need the file valid.
    try:
        with scope:
            if args.mode == "answers":
                for pred in queries:
                    answers = engine.answers(db, pred, args.max_branches)
                    print(f"{pred}: {len(answers)} possible answer(s)",
                          file=out)
                    for i, answer in enumerate(
                            sorted(answers,
                                   key=lambda a: sorted(map(repr, a)))):
                        print(f" answer {i + 1} ({len(answer)} tuple(s)):",
                              file=out)
                        _print_relation(answer, out)
                _finish_tracing(timing, json_tracer, out)
                return 0

            # record_log is only ever set for IdlogEngine runs —
            # _check_record_replay rejects choice programs up front, and
            # ChoiceEngine takes no record keyword.
            kwargs = {"record": record_log} if record_log is not None else {}
            if replay_log is not None:
                result = engine.replay(db, replay_log)
            elif args.mode == "one":
                result = engine.one(db, seed=args.seed, **kwargs)
            else:
                result = engine.run(db, **kwargs)
        for pred in queries:
            rows = result.tuples(pred)
            print(f"{pred}: {len(rows)} tuple(s)", file=out)
            _print_relation(rows, out)
        if record_log is not None:
            record_log.set_answers(
                {pred: result.tuples(pred) for pred in queries})
            record_log.save(args.record)
            print(f"(recorded {len(record_log)} ID choice(s) and "
                  f"{len(queries)} answer predicate(s) to {args.record})",
                  file=out)
        if replay_log is not None:
            _verify_replay(result, replay_log, out)
        if args.stats:
            stats = result.stats
            print(f"stats: derived={stats.total_derived} "
                  f"firings={stats.firings} probes={stats.probes} "
                  f"iterations={stats.iterations} "
                  f"id_tuples={stats.id_tuples} "
                  f"plans_built={stats.plans_built} "
                  f"plans_reused={stats.plans_reused} "
                  f"pipelines_compiled={stats.pipelines_compiled} "
                  f"pipelines_reused={stats.pipelines_reused}",
                  file=out)
        _finish_tracing(timing, json_tracer, out)
        return 0
    finally:
        if json_tracer is not None:
            json_tracer.close()  # idempotent; no-op on the success path
        # Metrics flush in the finally: for the same reason the trace
        # does — the partial counters of a failed run are still a valid
        # (and useful) export.
        _write_metrics(metrics, args, out)


def _finish_tracing(timing, json_tracer, out) -> None:
    if timing is not None:
        print(format_profile(timing.profile), file=out)
    if json_tracer is not None:
        events = json_tracer.events_written
        json_tracer.close()
        print(f"(trace: {events} event(s) written)", file=out)


def _write_metrics(metrics, args, out) -> None:
    """Export the run's metrics registry (``run --metrics FILE``)."""
    if metrics is None:
        return
    fmt = getattr(args, "metrics_format", "prom")
    if fmt == "json":
        import json as json_module
        text = json_module.dumps(metrics.snapshot(), indent=2) + "\n"
    else:
        text = metrics.to_prometheus()
    if args.metrics == "-":
        out.write(text)
        return
    with open(args.metrics, "w", encoding="utf-8") as handle:
        handle.write(text)
    print(f"(metrics: {metrics.registry.total_series()} series "
          f"written to {args.metrics})", file=out)


def _cmd_profile(args, out) -> int:
    """Evaluate once and print the EXPLAIN ANALYZE table."""
    program = _load_program(args.program)
    db = _load_facts(args.facts)
    args.profile = True
    tracer, timing, json_tracer, _ = _make_tracers(args)

    if program.has_choice():
        engine = ChoiceEngine(program)
    else:
        engine = IdlogEngine(program, plan=args.plan, engine=args.engine)

    with use_tracer(tracer):
        if args.seed is not None:
            result = engine.one(db, seed=args.seed)
        else:
            result = engine.run(db)
    for pred in sorted(program.head_predicates):
        print(f"{pred}: {len(result.tuples(pred))} tuple(s)", file=out)
    _finish_tracing(timing, json_tracer, out)
    return 0


def _print_stats_report(report: dict, out) -> None:
    """Human-readable rendering of a stats report dict."""
    for name in sorted(report["relations"]):
        info = report["relations"][name]
        fields = " ".join(f"{key}={info[key]}" for key in sorted(info))
        print(f"  {name}: {fields}", file=out)
    totals = " ".join(f"{key}={value}" for key, value in report.items()
                      if key != "relations")
    print(f"total: {totals}", file=out)


def _cmd_stats(args, out) -> int:
    """Memory/cardinality introspection (``repro-idlog stats``)."""
    import json as json_module
    if args.dir is not None:
        if args.program is not None or args.facts is not None:
            raise ReproError(
                "--dir reads a saved database directory; it cannot be "
                "combined with a program or facts file")
        from .datalog.storage import directory_stats
        report = directory_stats(args.dir)
        if args.json:
            print(json_module.dumps(report, indent=2, sort_keys=True),
                  file=out)
        else:
            print(f"database directory {args.dir}:", file=out)
            _print_stats_report(report, out)
        return 0

    if args.program is None:
        if args.facts is None:
            raise ReproError(
                "stats needs a PROGRAM, a facts file (-f) or a saved "
                "database directory (--dir)")
        report = _load_facts(args.facts).stats()
        if args.json:
            print(json_module.dumps(report, indent=2, sort_keys=True),
                  file=out)
        else:
            print(f"facts file {args.facts}:", file=out)
            _print_stats_report(report, out)
        return 0

    program = _load_program(args.program)
    db = _load_facts(args.facts)
    if program.has_choice():
        engine = ChoiceEngine(program)
    else:
        engine = IdlogEngine(program, plan=args.plan, engine=args.engine)
    result = engine.run(db)
    report = result.database.stats()
    id_stats = [r.memory_stats() for r in result.id_relations.values()]
    report["id_relations"] = len(id_stats)
    report["id_rows"] = sum(s["rows"] for s in id_stats)
    report["id_approx_bytes"] = sum(s["approx_bytes"] for s in id_stats)
    stats = result.stats
    report["counters"] = {
        "derived": stats.total_derived, "firings": stats.firings,
        "probes": stats.probes, "iterations": stats.iterations,
        "id_tuples": stats.id_tuples,
    }
    if args.json:
        print(json_module.dumps(report, indent=2, sort_keys=True), file=out)
        return 0
    print(f"evaluation of {args.program}:", file=out)
    counters = report.pop("counters")
    _print_stats_report(report, out)
    print("counters: " + " ".join(
        f"{key}={counters[key]}" for key in sorted(counters)), file=out)
    return 0


def _cmd_why(args, out) -> int:
    """Derivation tree for one ground fact (``repro-idlog why``)."""
    from .datalog.parser import parse_atom
    from .datalog.provenance import Explainer, format_tree
    from .datalog.terms import Const
    program = _load_program(args.program)
    if program.has_choice():
        raise ReproError(
            "why explains Datalog/IDLOG derivations; translate the choice "
            "program first (repro-idlog explain shows the translation)")
    goal_text = args.goal.strip()
    if goal_text.endswith("."):
        goal_text = goal_text[:-1]
    goal = parse_atom(goal_text)
    if goal.group is not None:
        raise ReproError(
            "why explains base facts, not ID-atoms; ask about "
            f"{goal.pred}(...) instead")
    if not all(isinstance(term, Const) for term in goal.args):
        raise ReproError(f"goal must be ground: {args.goal!r}")
    row = tuple(term.value for term in goal.args)

    db = _load_facts(args.facts)
    engine = IdlogEngine(program, plan=args.plan, engine=args.engine)
    if args.seed is not None:
        result = engine.one(db, seed=args.seed)
    else:
        result = engine.run(db)
    explainer = Explainer(program, result.database, result.id_relations)
    derivation = explainer.explain(goal.pred, row)
    print(format_tree(derivation), file=out)
    return 0


def _cmd_eval(args, out) -> int:
    """Run the scenario suite (``repro-idlog eval``)."""
    from .eval import ScenarioRunner, builtin_suite, format_report
    scenarios = builtin_suite()
    if args.only:
        scenarios = [s for s in scenarios if args.only in s.name]
        if not scenarios:
            raise ReproError(
                f"no scenario name contains {args.only!r}; "
                "repro-idlog eval --list shows the suite")
    if args.list:
        for scenario in scenarios:
            tags = f"  [{', '.join(sorted(scenario.tags))}]" \
                if scenario.tags else ""
            print(f"{scenario.name}: {scenario.description}{tags}",
                  file=out)
        return 0

    engines = ("batch", "interp") if args.engine == "all" \
        else (args.engine,)
    plans = ("greedy", "cost") if args.plan == "all" else (args.plan,)
    seeds = range(args.seeds) if args.seeds is not None else None
    progress = (lambda msg: print(f"  {msg}", file=sys.stderr)) \
        if args.progress else None
    runner = ScenarioRunner(
        scenarios, engines=engines, plans=plans, seeds=seeds,
        differential=not args.no_differential, quick=args.quick,
        meta={"command": "repro-idlog eval"}, progress=progress)

    # The runner flushes the (possibly partial) report in its own
    # finally:, so a scenario that dies mid-suite still leaves a valid
    # JSON artifact at --out — same contract as run --trace/--metrics.
    sink = None
    if args.out == "-":
        sink = out
    elif args.out is not None:
        sink = args.out
    report = runner.run(out=sink)
    if args.out != "-":
        print(format_report(report), file=out)
    if isinstance(sink, str):
        print(f"(report: {len(report.cases)} case(s) written to {sink})",
              file=out)
    return 0 if report.passed else 1


def _cmd_serve(args, out) -> int:
    """Run the long-lived IDLOG server (``repro-idlog serve``)."""
    from .server import ServerConfig, serve
    if args.no_tcp and not args.unix:
        raise ReproError("--no-tcp needs a --unix socket to listen on")
    config = ServerConfig(
        plan=args.plan, engine=args.engine, workers=args.workers,
        timeout_s=args.timeout, drain_s=args.drain,
        metrics_path=args.metrics, metrics_format=args.metrics_format,
        choice_log_dir=args.choice_log_dir,
        max_sessions=args.max_sessions,
        slow_ms=args.slow_ms, slow_log_path=args.slow_log,
        log_path=args.log_file, log_level=args.log_level)

    def ready(server) -> None:
        # The ready line is the supervision contract: once printed (and
        # flushed), the listeners are bound and accepting.
        if server.tcp_address is not None:
            host, port = server.tcp_address
            print(f"serving on {host}:{port} "
                  "(NDJSON; GET /metrics and /healthz)", file=out)
        if args.unix:
            print(f"serving on unix socket {args.unix}", file=out)
        out.flush()

    reason = serve(config, host=None if args.no_tcp else args.host,
                   port=args.port, unix_path=args.unix, ready=ready)
    print(f"shutdown: {reason} (sessions closed, in-flight drained)",
          file=out)
    if config.metrics_path:
        print(f"(metrics flushed to {config.metrics_path})", file=out)
    return 0


def _cmd_connect(args, out) -> int:
    """Query a running server (``repro-idlog connect``)."""
    from .server import ServerClient
    timeout = args.timeout if args.timeout is not None else 30.0
    if args.unix:
        client = ServerClient.connect_unix(args.unix, timeout=timeout)
    else:
        client = ServerClient.connect_tcp(args.host, args.port,
                                          timeout=timeout)
    with client:
        if args.program is None:
            pong = client.call("ping")
            report = client.call("server_stats")
            print(f"server ok: protocol {pong['protocol']}, "
                  f"schema {pong['schema']}", file=out)
            print("server: " + " ".join(
                f"{key}={report[key]}" for key in sorted(report)),
                file=out)
            return 0
        with open(args.program) as handle:
            source = handle.read()
        db = _load_facts(args.facts)
        session = client.call("open_session", plan=args.plan,
                              engine=args.engine)["session"]
        try:
            if db.relation_names():
                facts = {name: [list(row) for row in
                                sorted(db.relation(name).frozen(),
                                       key=lambda r: tuple(map(repr, r)))]
                         for name in sorted(db.relation_names())}
                client.call("assert_facts", session=session, facts=facts,
                            udom=sorted(db.udomain))
            request = {"session": session, "program": source,
                       "mode": args.mode}
            if args.seed is not None:
                request["seed"] = args.seed
            if args.query:
                request["query"] = [args.query]
            if args.timeout is not None:
                request["timeout"] = args.timeout
            result = client.call("run", **request)
            for pred in sorted(result["answers"]):
                rows = [tuple(row) for row in result["answers"][pred]]
                print(f"{pred}: {len(rows)} tuple(s)", file=out)
                _print_relation(rows, out)
            if args.stats:
                stats = result["stats"]
                print("stats: " + " ".join(
                    f"{key}={stats[key]}" for key in sorted(stats)),
                    file=out)
        finally:
            with contextlib.suppress(Exception):
                client.call("close_session", session=session)
    return 0


def _fmt_ms(value) -> str:
    """A millisecond column cell; pending requests have no timing yet."""
    if isinstance(value, (int, float)):
        return f"{value:.2f}"
    return "-"


def _fmt_q_err(plan_quality) -> str:
    """A ``q-err`` column cell from a ring-buffer plan-quality roll-up.

    Renders the request's worst q-error, ``!``-flagged when any clause
    crossed the misestimate threshold; ``-`` when the request recorded
    no estimates (non-run requests, tracing off).
    """
    if not isinstance(plan_quality, dict):
        return "-"
    worst = plan_quality.get("max_q_error")
    if not isinstance(worst, (int, float)):
        return "-"
    flag = "!" if plan_quality.get("misestimates") else ""
    return f"{worst:.1f}{flag}"


def _cmd_top(args, out) -> int:
    """Live view of a running server (``repro-idlog top``)."""
    import time
    from .server import ServerClient

    def open_client():
        if args.unix:
            return ServerClient.connect_unix(args.unix,
                                             timeout=args.timeout)
        host, _, port = args.target.rpartition(":")
        if not host or not port.isdigit():
            raise ReproError("top target must look like HOST:PORT, got "
                             f"{args.target!r}")
        return ServerClient.connect_tcp(host, int(port),
                                        timeout=args.timeout)

    refreshed = 0
    while True:
        # One connection per refresh: a restarted server shows up again
        # on the next tick instead of wedging the loop.
        with open_client() as client:
            stats = client.call("server_stats")
            recent = client.call("recent", limit=args.rows)
            slow = client.call("slowlog")
        print(f"-- repro-idlog top @ {args.unix or args.target} --",
              file=out)
        print("server: " + " ".join(
            f"{key}={stats[key]}" for key in sorted(stats)), file=out)
        print(f"  {'request':<9} {'type':<13} {'session':<8} "
              f"{'status':<10} {'wall ms':>9} {'queue ms':>9} "
              f"{'q-err':>7} digest",
              file=out)
        for item in recent["requests"]:
            print(f"  {item.get('request_id') or '-':<9} "
                  f"{item.get('type') or '-':<13} "
                  f"{item.get('session') or '-':<8} "
                  f"{item.get('status') or '-':<10} "
                  f"{_fmt_ms(item.get('wall_ms')):>9} "
                  f"{_fmt_ms(item.get('queue_ms')):>9} "
                  f"{_fmt_q_err(item.get('plan_quality')):>7} "
                  f"{item.get('choice_digest') or '-'}", file=out)
        if not recent["requests"]:
            print("  (no requests yet)", file=out)
        if slow.get("slow_ms") is None:
            print("slow log: off (serve --slow-ms to enable)", file=out)
        else:
            noun = "entry" if slow["count"] == 1 else "entries"
            print(f"slow log: {slow['count']} {noun} at or over "
                  f"{slow['slow_ms']} ms", file=out)
        out.flush()
        refreshed += 1
        if args.count is not None and refreshed >= args.count:
            return 0
        time.sleep(args.interval)


def _plans_from_trace(args, out) -> int:
    """Fold a recorded JSONL trace back into a plan-quality report."""
    import json
    from .datalog.trace import MISESTIMATE_THRESHOLD
    tracer = TimingTracer()
    with open(args.trace) as handle:
        for line_no, raw in enumerate(handle, 1):
            raw = raw.strip()
            if not raw:
                continue
            try:
                record = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise ReproError(
                    f"{args.trace}:{line_no}: not valid JSONL: {exc}")
            if not isinstance(record, dict) or "event" not in record:
                raise ReproError(
                    f"{args.trace}:{line_no}: not a span event "
                    "(no 'event' field)")
            kind = record.pop("event")
            record.pop("seq", None)
            record.pop("schema", None)
            tracer.emit(kind, **record)
    quality = tracer.profile.plan_quality()
    print(f"plan quality: {args.trace} "
          f"({tracer.profile.events} span event(s))", file=out)
    rows = quality["clauses"]
    if not rows:
        print("  (no estimate-bearing clause executions in the trace — "
              "the batch engine records them when tracing is on)",
              file=out)
        return 0
    median = quality["median_q_error"]
    print(f"  median q-err {median:.2f}  max q-err "
          f"{quality['max_q_error']:.2f}  "
          f"{quality['misestimates']} misestimate(s) at threshold "
          f"{MISESTIMATE_THRESHOLD:g}  "
          f"{quality['plan_drifts']} plan drift(s)", file=out)
    print(f"  {'q-err':>8} {'calls':>6} {'est probes':>11} "
          f"{'probes':>9} {'drifts':>7}  clause", file=out)
    shown = rows[:args.limit]
    for row in shown:
        worst = max(row["q_error"], row["worst_stage_q_error"])
        cell = f"{worst:.1f}" + ("!" if row["misestimated"] else "")
        print(f"  {cell:>8} {row['calls']:>6} "
              f"{row['est_probes']:>11.0f} {row['probes']:>9} "
              f"{row['plan_drifts']:>7}  {row['clause']}", file=out)
    if len(rows) > len(shown):
        print(f"  ... {len(rows) - len(shown)} more clause(s); "
              "--limit raises the cut", file=out)
    return 0


def _plans_from_server(args, out) -> int:
    """Query a running server's cross-request plan-quality aggregate."""
    from .server import ServerClient
    if args.unix:
        client = ServerClient.connect_unix(args.unix, timeout=args.timeout)
    else:
        host, _, port = args.server.rpartition(":")
        if not host or not port.isdigit():
            raise ReproError("--server must look like HOST:PORT, got "
                             f"{args.server!r}")
        client = ServerClient.connect_tcp(host, int(port),
                                          timeout=args.timeout)
    with client:
        report = client.call("plans", limit=args.limit)
    target = args.unix or args.server
    print(f"plan quality @ {target}: "
          f"{report['requests_observed']} request(s) observed", file=out)
    rows = report["clauses"]
    if not rows:
        if report.get("observing"):
            print("  (no estimate-bearing runs observed yet)", file=out)
        else:
            print("  (server is not profiling requests — serve "
                  "--slow-ms enables estimate capture)", file=out)
        return 0
    print(f"  {'q-err':>8} {'requests':>8} {'calls':>6} "
          f"{'est probes':>11} {'probes':>9} {'drifts':>7}  clause",
          file=out)
    threshold = report["misestimate_threshold"]
    for row in rows:
        cell = f"{row['worst_q_error']:.1f}" \
            + ("!" if row["worst_q_error"] >= threshold else "")
        print(f"  {cell:>8} {row['requests']:>8} {row['calls']:>6} "
              f"{row['est_probes']:>11.0f} {row['probes']:>9} "
              f"{row['plan_drifts']:>7}  {row['clause']}", file=out)
    if report["dropped"]:
        print(f"  ... {report['dropped']} more clause(s) tracked; "
              "--limit raises the cut", file=out)
    return 0


def _cmd_plans(args, out) -> int:
    """Plan-quality report (``repro-idlog plans``): clauses ranked by
    how far the planner's estimates missed the executed actuals."""
    if args.limit < 1:
        raise ReproError("--limit must be >= 1")
    if args.trace is not None:
        return _plans_from_trace(args, out)
    if args.unix or args.server:
        return _plans_from_server(args, out)
    raise ReproError("plans needs a TRACE file (from run --trace or "
                     "profile --trace), or a server via --server "
                     "HOST:PORT / --unix PATH")


def _cmd_diverge(args, out) -> int:
    """Diagnose where two recorded runs parted ways."""
    import os
    from .core.choicelog import ChoiceLog, diverge, format_divergence
    log_a = ChoiceLog.load(args.run_a)
    log_b = ChoiceLog.load(args.run_b)
    report = diverge(log_a, log_b)
    print(format_divergence(report,
                            a_name=os.path.basename(args.run_a),
                            b_name=os.path.basename(args.run_b)),
          file=out)
    return 0 if report.identical else 1


def build_parser() -> argparse.ArgumentParser:
    """The argparse command-line parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-idlog",
        description="IDLOG: a non-deterministic deductive database "
                    "language (Sheng, SIGMOD 1991)")
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="parse and validate a program")
    check.add_argument("program", help="program file")

    explain = sub.add_parser("explain", help="show the evaluation plan")
    explain.add_argument("program", help="program file")
    explain.add_argument("-f", "--facts",
                         help="facts file supplying cardinalities for the "
                              "cost-based EXPLAIN")
    explain.add_argument("--plan", choices=("greedy", "cost"), default=None,
                         help="render the cost-based plan with estimates "
                              "(default: the structural plan; --facts "
                              "implies --plan cost)")

    lint_cmd = sub.add_parser(
        "lint", help="report likely mistakes and optimization hints")
    lint_cmd.add_argument("program", help="program file")
    lint_cmd.add_argument("--no-hints", action="store_true",
                          help="suppress the H-series optimization hints")

    run = sub.add_parser("run", help="evaluate a program")
    run.add_argument("program", help="program file")
    run.add_argument("-f", "--facts", help="facts file (ground clauses)")
    run.add_argument("-q", "--query",
                     help="output predicate (default: all)")
    run.add_argument("--mode", choices=("run", "one", "answers"),
                     default="run",
                     help="canonical model / one arbitrary answer / "
                          "the exact answer set")
    run.add_argument("--seed", type=int, default=None,
                     help="random seed for --mode one")
    run.add_argument("--max-branches", type=int, default=200_000,
                     help="enumeration budget for --mode answers")
    run.add_argument("--plan", choices=("greedy", "cost"), default="greedy",
                     help="body-literal planning: syntactic greedy order "
                          "or cost-based (cardinality-aware) order")
    run.add_argument("--engine", choices=("batch", "interp"),
                     default="batch",
                     help="execution engine: compiled batch join pipelines "
                          "(fast, default) or the tuple-at-a-time "
                          "interpreter (reference oracle); both return "
                          "identical relations and counters")
    run.add_argument("--stats", action="store_true",
                     help="print evaluation counters")
    run.add_argument("--profile", action="store_true",
                     help="print a per-clause EXPLAIN ANALYZE table after "
                          "the results (see docs/OBSERVABILITY.md)")
    run.add_argument("--trace", metavar="FILE", default=None,
                     help="write every span event as JSONL to FILE")
    run.add_argument("--metrics", metavar="FILE", default=None,
                     help="export aggregated metrics to FILE after the run "
                          "('-' for stdout); see docs/OBSERVABILITY.md")
    run.add_argument("--metrics-format", choices=("prom", "json"),
                     default="prom",
                     help="metrics exposition format: Prometheus text "
                          "(default) or a JSON snapshot")
    run.add_argument("--progress", action="store_true",
                     help="print stratum/round heartbeats to stderr while "
                          "evaluating")
    run.add_argument("--record", metavar="FILE", default=None,
                     help="record every ID-function choice (and the "
                          "answers) as a JSONL choice log to FILE")
    run.add_argument("--replay", metavar="FILE", default=None,
                     help="replay a recorded choice log, reproducing the "
                          "recorded run exactly or failing with a drift "
                          "diagnostic")

    profile = sub.add_parser(
        "profile",
        help="evaluate and print the per-clause EXPLAIN ANALYZE table")
    profile.add_argument("program", help="program file")
    profile.add_argument("-f", "--facts",
                         help="facts file (ground clauses)")
    profile.add_argument("--plan", choices=("greedy", "cost"),
                         default="greedy",
                         help="body-literal planning mode to profile")
    profile.add_argument("--engine", choices=("batch", "interp"),
                         default="batch",
                         help="execution engine to profile")
    profile.add_argument("--seed", type=int, default=None,
                         help="profile one() under this random seed "
                              "instead of the canonical run()")
    profile.add_argument("--trace", metavar="FILE", default=None,
                         help="also write the span events as JSONL to FILE")

    why = sub.add_parser(
        "why", help="print the derivation tree of one ground fact")
    why.add_argument("program", help="program file")
    why.add_argument("goal",
                     help="ground fact to explain, e.g. 'path(a, c).'")
    why.add_argument("-f", "--facts", help="facts file (ground clauses)")
    why.add_argument("--plan", choices=("greedy", "cost"),
                     default="greedy", help="body-literal planning mode")
    why.add_argument("--engine", choices=("batch", "interp"),
                     default="batch", help="execution engine")
    why.add_argument("--seed", type=int, default=None,
                     help="explain against the one() model drawn under "
                          "this seed instead of the canonical run()")

    stats = sub.add_parser(
        "stats",
        help="memory/cardinality report for a facts file, an evaluation "
             "result, or a saved database directory")
    stats.add_argument("program", nargs="?", default=None,
                       help="program file — when given, the program is "
                            "evaluated and the result database is reported")
    stats.add_argument("-f", "--facts",
                       help="facts file (reported directly when no "
                            "program is given)")
    stats.add_argument("--dir", default=None,
                       help="saved database directory (see save_database); "
                            "reported from disk without loading relations")
    stats.add_argument("--plan", choices=("greedy", "cost"),
                       default="greedy", help="body-literal planning mode")
    stats.add_argument("--engine", choices=("batch", "interp"),
                       default="batch", help="execution engine")
    stats.add_argument("--json", action="store_true",
                       help="emit the report as JSON instead of text")

    eval_cmd = sub.add_parser(
        "eval",
        help="run the built-in scenario suite: exact + statistical "
             "verification of sampling semantics across the engine×plan "
             "matrix (see docs/SCENARIOS.md)")
    eval_cmd.add_argument("--out", metavar="FILE", default=None,
                          help="write the JSON eval report to FILE ('-' "
                               "for stdout); flushed in a finally: so a "
                               "failed run still leaves a valid partial "
                               "report")
    eval_cmd.add_argument("--quick", action="store_true",
                          help="quick profile: skip scenarios tagged "
                               "'slow' and trim statistical seeds (the "
                               "CI scenarios job)")
    eval_cmd.add_argument("--only", metavar="SUBSTR", default=None,
                          help="run only scenarios whose name contains "
                               "SUBSTR")
    eval_cmd.add_argument("--list", action="store_true",
                          help="list the suite (names, descriptions, "
                               "tags) without running it")
    eval_cmd.add_argument("--seeds", type=int, default=None,
                          help="sampling seeds per statistical assertion "
                               "(default: per-scenario, >= 20; the "
                               "uniformity checks refuse fewer than 20)")
    eval_cmd.add_argument("--engine", choices=("batch", "interp", "all"),
                          default="all",
                          help="restrict the engine axis of the matrix")
    eval_cmd.add_argument("--plan", choices=("greedy", "cost", "all"),
                          default="all",
                          help="restrict the planner axis of the matrix")
    eval_cmd.add_argument("--no-differential", action="store_true",
                          help="skip the cross-combination differential "
                               "case")
    eval_cmd.add_argument("--progress", action="store_true",
                          help="print per-case heartbeats to stderr")

    serve = sub.add_parser(
        "serve",
        help="run the long-lived IDLOG server: persistent sessions, "
             "prepared programs, concurrent NDJSON clients, GET /metrics "
             "and /healthz (see docs/SERVER.md)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="TCP bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=7421,
                       help="TCP port (default 7421; 0 picks an "
                            "ephemeral port, printed on the ready line)")
    serve.add_argument("--unix", metavar="PATH", default=None,
                       help="also listen on a unix socket at PATH")
    serve.add_argument("--no-tcp", action="store_true",
                       help="listen on the --unix socket only")
    serve.add_argument("--workers", type=int, default=4,
                       help="worker threads = max concurrently executing "
                            "requests (default 4)")
    serve.add_argument("--timeout", type=float, default=None,
                       help="default per-request timeout in seconds "
                            "(requests may pass a smaller one; default: "
                            "unlimited)")
    serve.add_argument("--drain", type=float, default=5.0,
                       help="graceful-shutdown drain budget in seconds "
                            "for in-flight requests (default 5)")
    serve.add_argument("--plan", choices=("greedy", "cost"),
                       default="greedy",
                       help="default planning mode for new sessions")
    serve.add_argument("--engine", choices=("batch", "interp"),
                       default="batch",
                       help="default execution engine for new sessions")
    serve.add_argument("--metrics", metavar="FILE", default=None,
                       help="flush the metrics registry to FILE on "
                            "shutdown (in a finally:, so a killed server "
                            "still leaves a valid export)")
    serve.add_argument("--metrics-format", choices=("prom", "json"),
                       default="prom",
                       help="format for --metrics (default Prometheus "
                            "text)")
    serve.add_argument("--choice-log-dir", metavar="DIR", default=None,
                       help="save every recorded run's choice log under "
                            "DIR (one JSONL file per completed request)")
    serve.add_argument("--max-sessions", type=int, default=256,
                       help="open-session cap (default 256)")
    serve.add_argument("--log-file", metavar="FILE", default=None,
                       help="append structured JSON log lines to FILE "
                            "(default: stderr)")
    serve.add_argument("--log-level",
                       choices=("debug", "info", "warning", "error"),
                       default="info",
                       help="minimum log level (default info; debug "
                            "logs every request summary)")
    serve.add_argument("--slow-ms", type=float, default=None,
                       help="slow-query threshold in milliseconds: "
                            "requests at or over it are logged with "
                            "their plan profile and choice digest "
                            "(default: off; 0 captures everything)")
    serve.add_argument("--slow-log", metavar="FILE", default=None,
                       help="also append slow-query entries to FILE as "
                            "JSONL (they are always kept in memory for "
                            "the slowlog request)")

    connect = sub.add_parser(
        "connect",
        help="query a running IDLOG server: ping it, or run a program "
             "file in a fresh session (see docs/SERVER.md)")
    connect.add_argument("program", nargs="?", default=None,
                         help="program file to run remotely (omit to "
                              "ping the server and print its stats)")
    connect.add_argument("-f", "--facts",
                         help="facts file asserted into the session "
                              "before the run")
    connect.add_argument("-q", "--query",
                         help="output predicate (default: all)")
    connect.add_argument("--host", default="127.0.0.1",
                         help="server address (default 127.0.0.1)")
    connect.add_argument("--port", type=int, default=7421,
                         help="server TCP port (default 7421)")
    connect.add_argument("--unix", metavar="PATH", default=None,
                         help="connect over a unix socket instead of TCP")
    connect.add_argument("--mode", choices=("run", "one"), default="run",
                         help="canonical model or one sampled answer "
                              "(answers enumeration stays local — see "
                              "docs/SERVER.md)")
    connect.add_argument("--seed", type=int, default=None,
                         help="random seed for --mode one")
    connect.add_argument("--plan", choices=("greedy", "cost"),
                         default="greedy",
                         help="planning mode for the session")
    connect.add_argument("--engine", choices=("batch", "interp"),
                         default="batch",
                         help="execution engine for the session")
    connect.add_argument("--timeout", type=float, default=None,
                         help="per-request timeout in seconds (also the "
                              "socket timeout)")
    connect.add_argument("--stats", action="store_true",
                         help="print the server-reported evaluation "
                              "counters")

    top = sub.add_parser(
        "top",
        help="live view of a running server: recent requests, wall and "
             "queue times, slow-query log (see docs/SERVER.md)")
    top.add_argument("target", nargs="?", default="127.0.0.1:7421",
                     metavar="HOST:PORT",
                     help="server TCP address (default 127.0.0.1:7421)")
    top.add_argument("--unix", metavar="PATH", default=None,
                     help="connect over a unix socket instead of TCP")
    top.add_argument("--interval", type=float, default=2.0,
                     help="seconds between refreshes (default 2)")
    top.add_argument("--count", type=int, default=None,
                     help="stop after N refreshes (default: run until "
                          "interrupted)")
    top.add_argument("--rows", type=int, default=15,
                     help="recent requests shown per refresh "
                          "(default 15)")
    top.add_argument("--timeout", type=float, default=30.0,
                     help="socket timeout in seconds (default 30, "
                          "matching connect)")

    plans_cmd = sub.add_parser(
        "plans",
        help="plan-quality report: clauses ranked by q-error "
             "(estimated vs actual cardinality), from a recorded JSONL "
             "trace or a running server (see docs/OBSERVABILITY.md)")
    plans_cmd.add_argument("trace", nargs="?", default=None,
                           metavar="TRACE",
                           help="JSONL span-event trace (from run --trace "
                                "or profile --trace); omit to query a "
                                "server instead")
    plans_cmd.add_argument("--server", metavar="HOST:PORT", default=None,
                           help="query a running server's cross-request "
                                "plans aggregate over TCP")
    plans_cmd.add_argument("--unix", metavar="PATH", default=None,
                           help="query a running server over a unix "
                                "socket")
    plans_cmd.add_argument("--limit", type=int, default=20,
                           help="clauses shown, worst q-error first "
                                "(default 20)")
    plans_cmd.add_argument("--timeout", type=float, default=30.0,
                           help="socket timeout in seconds for server "
                                "queries (default 30)")

    diverge_cmd = sub.add_parser(
        "diverge",
        help="compare two recorded choice logs: first differing ID "
             "choice plus the answer delta it caused")
    diverge_cmd.add_argument("run_a", help="choice log of run A "
                                           "(from run --record)")
    diverge_cmd.add_argument("run_b", help="choice log of run B")
    return parser


def main(argv: Optional[Sequence[str]] = None,
         out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out or sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {"check": _cmd_check, "explain": _cmd_explain,
                "lint": _cmd_lint, "run": _cmd_run,
                "profile": _cmd_profile, "why": _cmd_why,
                "stats": _cmd_stats, "diverge": _cmd_diverge,
                "eval": _cmd_eval, "serve": _cmd_serve,
                "connect": _cmd_connect, "top": _cmd_top,
                "plans": _cmd_plans}
    # Text-format structured log on a dynamic stderr sink: renders the
    # historical ``error: <message>`` lines byte-for-byte, but through
    # the same repro.obs layer the server uses.
    from .obs.log import StructuredLogger
    log = StructuredLogger(level="error", fmt="text")
    try:
        return handlers[args.command](args, out)
    except FileNotFoundError as exc:
        log.error("error", message=str(exc))
        return 2
    except ReproError as exc:
        log.error("error", message=str(exc))
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
