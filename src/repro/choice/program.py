"""DATALOG^C programs: syntax restrictions (C1) and (C2).

Section 3.2.2 of the paper imposes two conditions for the KN88 choice
semantics to be appropriate:

* (C1) every clause contains at most one choice operator;
* (C2) no clause containing a choice operator is *related to* the head
  predicate of another clause that contains a choice operator (choices must
  not feed into each other).

This module validates them and performs the shared first translation step:
replacing every choice operator by a fresh *choice predicate*
``ext_choice_i`` and adding the *choice clause*
``ext_choice_i(X̄, Ȳ) :- body`` (the clause's body without the operator).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..datalog.ast import Atom, ChoiceAtom, Clause, Literal, Program
from ..datalog.parser import parse_program
from ..errors import ChoiceConditionError


@dataclass(frozen=True)
class ChoiceOccurrence:
    """One use of the choice operator.

    Attributes:
        index: 1-based occurrence number (names the choice predicate).
        clause_index: Position of the host clause in the program.
        choice: The operator itself.
        pred: The generated choice-predicate name (``ext_choice_<index>``).
    """

    index: int
    clause_index: int
    choice: ChoiceAtom
    pred: str

    @property
    def args(self) -> tuple:
        """The choice predicate's argument list: domain then range vars."""
        return tuple(self.choice.domain) + tuple(self.choice.range)

    @property
    def domain_width(self) -> int:
        """Number of domain (grouping) arguments."""
        return len(self.choice.domain)

    @property
    def count(self) -> int:
        """How many range tuples survive per domain value (``choiceK``)."""
        return self.choice.count


def _fresh_prefix(program: Program, base: str) -> str:
    """A predicate-name prefix not clashing with the program's predicates."""
    prefix = base
    taken = program.predicates
    while any(p.startswith(prefix) for p in taken):
        prefix += "x"
    return prefix


@dataclass(frozen=True)
class ChoiceProgram:
    """A validated DATALOG^C program.

    Attributes:
        program: The original program (with choice atoms).
        translated: ``P_c``: choice operators replaced by choice-predicate
            literals, plus one choice clause per occurrence.
        occurrences: Metadata for every choice operator.
    """

    program: Program
    translated: Program
    occurrences: tuple[ChoiceOccurrence, ...]

    @classmethod
    def compile(cls, source: Union[str, Program],
                name: str = "program") -> "ChoiceProgram":
        """Parse (if needed) and validate a DATALOG^C program.

        Raises:
            ChoiceConditionError: when (C1) or (C2) is violated, or when the
                program mixes choice with ID-atoms (the paper keeps the
                languages separate; translate to IDLOG instead).
        """
        program = parse_program(source, name=name) \
            if isinstance(source, str) else source
        if program.has_id_atoms():
            raise ChoiceConditionError(
                "DATALOG^C programs must not contain ID-atoms; "
                "IDLOG subsumes choice (Theorem 2), not the reverse")
        _check_c1(program)
        _check_c2(program)
        translated, occurrences = _translate(program)
        return cls(program, translated, occurrences)

    @property
    def choice_predicates(self) -> frozenset[str]:
        """The generated ``ext_choice_i`` predicate names."""
        return frozenset(o.pred for o in self.occurrences)


def _check_c1(program: Program) -> None:
    for clause in program.clauses:
        if len(clause.choice_atoms) > 1:
            raise ChoiceConditionError(
                f"(C1) violated: clause {clause} contains more than one "
                "choice operator")


def _check_c2(program: Program) -> None:
    choice_clauses = [c for c in program.clauses if c.choice_atoms]
    for i, first in enumerate(choice_clauses):
        for second in choice_clauses[i + 1:]:
            related_to_second = program.related_to(second.head.pred)
            related_to_first = program.related_to(first.head.pred)
            if first.head.pred in related_to_second \
                    or second.head.pred in related_to_first:
                raise ChoiceConditionError(
                    f"(C2) violated: choice clauses for "
                    f"{first.head.pred} and {second.head.pred} are related")


def _translate(program: Program) -> tuple[Program,
                                          tuple[ChoiceOccurrence, ...]]:
    prefix = _fresh_prefix(program, "ext_choice_")
    occurrences: list[ChoiceOccurrence] = []
    new_clauses: list[Clause] = []
    extra_clauses: list[Clause] = []
    counter = 0
    for clause_index, clause in enumerate(program.clauses):
        choices = clause.choice_atoms
        if not choices:
            new_clauses.append(clause)
            continue
        counter += 1
        choice = choices[0]
        occurrence = ChoiceOccurrence(
            counter, clause_index, choice, f"{prefix}{counter}")
        occurrences.append(occurrence)
        rest = tuple(lit for lit in clause.body
                     if not isinstance(lit.atom, ChoiceAtom))
        choice_literal = Literal(Atom(occurrence.pred, occurrence.args))
        new_clauses.append(Clause(clause.head, rest + (choice_literal,)))
        extra_clauses.append(Clause(
            Atom(occurrence.pred, occurrence.args), rest))
    translated = Program(tuple(new_clauses) + tuple(extra_clauses),
                         name=f"{program.name}_c")
    return translated, tuple(occurrences)
