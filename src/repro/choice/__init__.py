"""DATALOG^C: the choice operator of Krishnamurthy & Naqvi (paper §3.2.2).

Provides the KN88 semantics directly (:class:`ChoiceEngine`) and the
Theorem 2 translation into stratified IDLOG (:func:`choice_to_idlog`),
which is how the paper positions IDLOG as "a general framework for
implementing the choice operator".
"""

from .program import ChoiceOccurrence, ChoiceProgram
from .semantics import (ChoiceEngine, count_functional_subsets,
                        enumerate_functional_subsets, functional_groups)
from .translate import choice_to_idlog

__all__ = [
    "ChoiceOccurrence", "ChoiceProgram",
    "ChoiceEngine", "count_functional_subsets",
    "enumerate_functional_subsets", "functional_groups",
    "choice_to_idlog",
]
