"""Theorem 2: translating DATALOG^C into stratified IDLOG.

For every DATALOG^C program satisfying (C1) and (C2) there is a
q-equivalent stratified *four-stratum* IDLOG program.  The construction
mirrors the paper's sex-guess example:

for each choice occurrence ``choice((X̄), (Ȳ))`` in a clause
``h :- body, choice((X̄), (Ȳ))``:

1. collect all candidates:      ``all_i(X̄, Ȳ) :- body.``
2. choose one Ȳ per X̄ by tid:  ``sel_i(X̄, Ȳ) :- all_i[1..|X̄|](X̄, Ȳ, 0).``
3. use the selection:           ``h :- body, sel_i(X̄, Ȳ).``

Grouping ``all_i`` by its domain positions makes the tid-0 tuples exactly a
functional subset of the candidates w.r.t. ``X̄ → Ȳ`` — every ``X̄``-block
contributes exactly one tuple — so ranging over all ID-functions ranges over
all functional subsets and the translated program defines the same
non-deterministic query (checked exhaustively by the E9 experiment).

The strata: body predicates (1), ``all_i`` (2), ``sel_i`` (3, strict via the
ID-literal), the host clause's head (4).
"""

from __future__ import annotations

from typing import Union

from ..datalog.ast import Atom, ChoiceAtom, Clause, Literal, Program
from ..datalog.terms import Const, Var
from ..core.program import IdlogProgram
from .program import ChoiceProgram, _fresh_prefix


def choice_to_idlog(source: Union[str, Program, ChoiceProgram],
                    ) -> IdlogProgram:
    """Translate a DATALOG^C program into an equivalent IDLOG program.

    Args:
        source: DATALOG^C source text, a parsed program, or an
            already-validated :class:`ChoiceProgram`.

    Returns:
        The compiled IDLOG program (validated, stratified).

    Raises:
        ChoiceConditionError: when (C1)/(C2) fail.
    """
    compiled = source if isinstance(source, ChoiceProgram) \
        else ChoiceProgram.compile(source)
    program = compiled.program
    all_prefix = _fresh_prefix(program, "choice_all_")
    sel_prefix = _fresh_prefix(program, "choice_sel_")

    new_clauses: list[Clause] = []
    extra_clauses: list[Clause] = []
    counter = 0
    for clause in program.clauses:
        choices = clause.choice_atoms
        if not choices:
            new_clauses.append(clause)
            continue
        counter += 1
        choice = choices[0]
        args = tuple(choice.domain) + tuple(choice.range)
        rest = tuple(lit for lit in clause.body
                     if not isinstance(lit.atom, ChoiceAtom))
        all_pred = f"{all_prefix}{counter}"
        sel_pred = f"{sel_prefix}{counter}"
        # Stratum 2: all candidate (X̄, Ȳ) pairs.
        extra_clauses.append(Clause(Atom(all_pred, args), rest))
        # Stratum 3: the k lowest-tid tuples of every X̄-block — a
        # k-functional subset.  For the paper's plain choice (k = 1) this
        # is the constant tid 0; for choiceK it is a tid bound T < K,
        # Example 5's multi-sample idiom.
        group = frozenset(range(1, len(choice.domain) + 1))
        if choice.count == 1:
            sel_body: tuple[Literal, ...] = (
                Literal(Atom(all_pred, args + (Const(0),), group)),)
        else:
            taken = {v.name for v in clause.vars}
            tid_name = "T"
            while tid_name in taken:
                tid_name += "t"
            tid = Var(tid_name)
            sel_body = (
                Literal(Atom(all_pred, args + (tid,), group)),
                Literal(Atom("<", (tid, Const(choice.count)))))
        extra_clauses.append(Clause(Atom(sel_pred, args), sel_body))
        # Stratum 4: the host clause reads the selection.
        sel_literal = Literal(Atom(sel_pred, args))
        new_clauses.append(Clause(clause.head, rest + (sel_literal,)))
    translated = Program(tuple(new_clauses) + tuple(extra_clauses),
                         name=f"{program.name}_idlog")
    return IdlogProgram.compile(translated)
