"""The KN88 semantics of DATALOG^C (the paper's Section 3.2.2).

An intended model of a DATALOG^C program ``P`` is constructed in three
steps:

1. compute the unique perfect model ``M`` of the translated program ``P_c``
   (choice operators replaced by choice predicates);
2. for every choice predicate ``ext_choice_i`` pick a *functional subset*
   ``S_i`` of its relation in ``M`` w.r.t. the domain attributes ``X̄``:
   a subset containing every ``X̄``-value exactly once (the functional
   dependency ``X̄ → Ȳ``);
3. recompute the perfect model with ``ext_choice_i`` fixed to ``S_i``.

Non-determinism comes from step 2; :class:`ChoiceEngine` mirrors the IDLOG
engine's API (``one`` / ``query`` / ``answers``).
"""

from __future__ import annotations

import math
import random
from itertools import combinations, product
from typing import Iterator, Optional, Union

from ..datalog.ast import Program
from ..datalog.database import Database, Relation
from ..datalog.engine import DatalogEngine, EvalResult
from ..datalog.seminaive import evaluate
from ..datalog.stratify import stratify
from ..errors import EvaluationError
from .program import ChoiceOccurrence, ChoiceProgram


def functional_groups(relation: Relation,
                      domain_width: int) -> dict[tuple, list[tuple]]:
    """Group a choice relation's tuples by their domain prefix.

    The choice predicate's arguments are the domain variables followed by
    the range variables, so the grouping key is the first ``domain_width``
    components.  Blocks are sorted for deterministic iteration.
    """
    groups: dict[tuple, list[tuple]] = {}
    for row in relation:
        groups.setdefault(row[:domain_width], []).append(row)
    for rows in groups.values():
        rows.sort(key=lambda r: tuple(map(repr, r)))
    return groups


def count_functional_subsets(relation: Relation, domain_width: int,
                             count: int = 1) -> int:
    """Number of k-functional subsets: ∏ C(block size, min(k, size)).

    ``count`` generalizes the paper's §3.3 multiple-choice operators: the
    subset keeps ``min(count, |block|)`` tuples per block.
    """
    return math.prod(
        math.comb(len(rows), min(count, len(rows)))
        for rows in functional_groups(relation, domain_width).values())


def enumerate_functional_subsets(relation: Relation, domain_width: int,
                                 count: int = 1,
                                 ) -> Iterator[frozenset[tuple]]:
    """Yield every k-functional subset of a choice relation."""
    groups = list(functional_groups(relation, domain_width).values())
    if not groups:
        yield frozenset()
        return
    per_group = [list(combinations(rows, min(count, len(rows))))
                 for rows in groups]
    for combo in product(*per_group):
        yield frozenset(row for picked in combo for row in picked)


def _choose_subset(relation: Relation, domain_width: int, count: int,
                   rng: Optional[random.Random]) -> frozenset[tuple]:
    """One k-functional subset: random when ``rng`` given, else canonical."""
    subset = set()
    for rows in functional_groups(relation, domain_width).values():
        take = min(count, len(rows))
        if rng is not None:
            subset.update(rng.sample(rows, take))
        else:
            subset.update(rows[:take])
    return frozenset(subset)


class ChoiceEngine:
    """Evaluator for DATALOG^C programs under the KN88 semantics.

    Example (the paper's Example 4):
        >>> engine = ChoiceEngine('''
        ...     select_emp(Name) :- emp(Name, Dept), choice((Dept), (Name)).
        ... ''')
        >>> db = Database.from_facts({"emp": [
        ...     ("ann", "toys"), ("bob", "toys"), ("dee", "it")]})
        >>> len(engine.answers(db, "select_emp"))
        2
    """

    def __init__(self, program: Union[str, Program, ChoiceProgram]) -> None:
        if isinstance(program, ChoiceProgram):
            self.compiled = program
        else:
            self.compiled = ChoiceProgram.compile(program)
        # Validate the translated program once: safe and stratified.
        translated = self.compiled.translated
        from ..datalog.safety import check_program
        check_program(translated)
        stratify(translated)
        # The final-step program: P_c without the choice clauses; the choice
        # predicates become plain EDB relations holding the chosen subsets.
        choice_preds = self.compiled.choice_predicates
        final_clauses = tuple(
            c for c in translated.clauses
            if c.head.pred not in choice_preds)
        self._final_program = Program(final_clauses,
                                      name=f"{translated.name}_final")
        self._final_engine = DatalogEngine(self._final_program)

    @property
    def program(self) -> Program:
        """The original DATALOG^C program."""
        return self.compiled.program

    def choice_relations(self, db: Database) -> dict[ChoiceOccurrence,
                                                     Relation]:
        """Step 1: the choice predicates' relations in the perfect model of
        ``P_c``."""
        model, _ = evaluate(self.compiled.translated, db)
        return {occ: model.relation(occ.pred)
                for occ in self.compiled.occurrences}

    def _run_with_subsets(self, db: Database,
                          subsets: dict[str, frozenset[tuple]],
                          ) -> EvalResult:
        extended = db.copy()
        for pred, rows in subsets.items():
            arity = self._arity_of_choice(pred)
            relation = Relation(arity, tuples=rows)
            extended.add_relation(pred, relation, replace=True)
        return self._final_engine.run(extended)

    def _arity_of_choice(self, pred: str) -> int:
        for occ in self.compiled.occurrences:
            if occ.pred == pred:
                return len(occ.args)
        raise KeyError(pred)

    def run(self, db: Database,
            rng: Optional[random.Random] = None) -> EvalResult:
        """Evaluate under one intended model.

        With ``rng`` unset the canonical (sorted-first) functional subsets
        are used, making the call deterministic and repeatable.
        """
        chosen: dict[str, frozenset[tuple]] = {}
        for occ, relation in self.choice_relations(db).items():
            chosen[occ.pred] = _choose_subset(
                relation, occ.domain_width, occ.count, rng)
        return self._run_with_subsets(db, chosen)

    def one(self, db: Database, seed: Optional[int] = None) -> EvalResult:
        """Sample one intended model (random functional subsets)."""
        return self.run(db, random.Random(seed))

    def query(self, db: Database, pred: str) -> frozenset[tuple]:
        """Canonical evaluation projected onto one predicate."""
        return self.run(db).tuples(pred)

    def answers(self, db: Database, pred: str,
                max_branches: int = 200_000) -> frozenset[frozenset[tuple]]:
        """The exact answer set of ``pred``: every combination of
        functional subsets, deduplicated.

        Raises:
            EvaluationError: when the number of combinations exceeds
                ``max_branches``.
        """
        relations = self.choice_relations(db)
        occurrences = list(relations)
        total = math.prod(
            count_functional_subsets(relations[occ], occ.domain_width,
                                     occ.count)
            for occ in occurrences)
        if total > max_branches:
            raise EvaluationError(
                f"{total} functional-subset combinations exceed "
                "max_branches; raise the limit or sample with one()")
        spaces = [
            list(enumerate_functional_subsets(
                relations[occ], occ.domain_width, occ.count))
            for occ in occurrences]
        answers = set()
        for combo in product(*spaces) if spaces else [()]:
            subsets = {occ.pred: subset
                       for occ, subset in zip(occurrences, combo)}
            result = self._run_with_subsets(db, subsets)
            answers.add(result.tuples(pred))
        return frozenset(answers)

    def count_models(self, db: Database) -> int:
        """Number of intended models (functional-subset combinations)."""
        relations = self.choice_relations(db)
        return math.prod(
            count_functional_subsets(rel, occ.domain_width, occ.count)
            for occ, rel in relations.items())
