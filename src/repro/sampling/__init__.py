"""Sampling queries: the paper's motivating application of IDLOG."""

from .queries import (SamplingQuery, arbitrary_subset, sample_k,
                      sample_k_per_group, sample_one_per_group)

__all__ = [
    "SamplingQuery", "arbitrary_subset", "sample_k",
    "sample_k_per_group", "sample_one_per_group",
]
