"""High-level sampling queries (the paper's Sections 1 and 3.3).

Sampling queries "randomly choose certain samples from a set of tuples".
The builders here compile directly to the paper's IDLOG idioms:

* :func:`sample_k_per_group` — Example 5's
  ``select_two_emp(Name) :- emp[2](Name, Dept, N), N < 2`` generalized to
  any k, any grouping, any projection;
* :func:`sample_k` — k samples from the whole relation (``p[∅]``);
* :func:`arbitrary_subset` — an arbitrary subset, via the Example 2
  guess-and-select pattern;
* each returns a :class:`SamplingQuery` wrapping a ready
  :class:`~repro.core.query.IdlogQuery`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..core.program import IdlogProgram
from ..core.query import Answer, IdlogQuery
from ..datalog.ast import Atom, Clause, Literal, Program
from ..datalog.database import Database
from ..datalog.terms import Const, Var
from ..errors import SchemaError


@dataclass(frozen=True)
class SamplingQuery:
    """A compiled sampling query.

    Attributes:
        query: The underlying non-deterministic IDLOG query.
        pred: Name of the output predicate.
    """

    query: IdlogQuery
    pred: str

    @property
    def program(self) -> IdlogProgram:
        """The generated IDLOG program."""
        return self.query.compiled

    def one(self, db: Database, seed: Optional[int] = None) -> Answer:
        """One arbitrary sample set."""
        return self.query.one(db, seed)

    def answers(self, db: Database,
                max_branches: int = 200_000) -> frozenset[Answer]:
        """Every possible sample set."""
        return self.query.answers(db, max_branches)


def _arg_vars(arity: int) -> tuple[Var, ...]:
    return tuple(Var(f"A{i}") for i in range(1, arity + 1))


def _projection(args: tuple[Var, ...],
                project: Optional[Sequence[int]]) -> tuple[Var, ...]:
    if project is None:
        return args
    bad = [i for i in project if not 1 <= i <= len(args)]
    if bad:
        raise SchemaError(f"projection positions {bad} outside 1..{len(args)}")
    return tuple(args[i - 1] for i in project)


def sample_k_per_group(relation: str, arity: int,
                       group: Sequence[int], k: int,
                       project: Optional[Sequence[int]] = None,
                       output: str = "sample") -> SamplingQuery:
    """k arbitrary samples from every sub-relation grouped by ``group``.

    The paper's motivating query — *find an arbitrary set of employee
    samples that contains exactly N employees from each department* — is
    ``sample_k_per_group("emp", 2, group=[2], k=N, project=[1])``.

    Args:
        relation: Input predicate name.
        arity: Its arity.
        group: 1-based grouping positions (the "per department" part).
        k: Samples per group (groups smaller than k contribute all tuples).
        project: Optional 1-based positions to keep in the output.
        output: Name of the output predicate.
    """
    if k < 1:
        raise SchemaError(f"sample size must be positive, got {k}")
    args = _arg_vars(arity)
    tid = Var("T")
    body = [Literal(Atom(relation, args + (tid,), frozenset(group)))]
    if k == 1:
        # Use a constant tid (the paper's Example 4 shape).
        body = [Literal(Atom(relation, args + (Const(0),), frozenset(group)))]
    else:
        body.append(Literal(Atom("<", (tid, Const(k)))))
    head = Atom(output, _projection(args, project))
    program = Program((Clause(head, tuple(body)),), name=f"sample_{relation}")
    return SamplingQuery(IdlogQuery(program, output), output)


def sample_k(relation: str, arity: int, k: int,
             project: Optional[Sequence[int]] = None,
             output: str = "sample") -> SamplingQuery:
    """k arbitrary samples from the whole relation (``p[∅]``)."""
    return sample_k_per_group(relation, arity, (), k, project, output)


def sample_one_per_group(relation: str, arity: int, group: Sequence[int],
                         project: Optional[Sequence[int]] = None,
                         output: str = "sample") -> SamplingQuery:
    """Exactly one arbitrary sample per group (Example 4)."""
    return sample_k_per_group(relation, arity, group, 1, project, output)


def arbitrary_subset(relation: str, arity: int,
                     output: str = "subset") -> SamplingQuery:
    """An arbitrary subset of the relation (any of the 2^n subsets).

    Uses the paper's Example 2 pattern: guess yes/no for every tuple, then
    keep the tuples whose *yes* guess got tid 1 in its two-element block::

        guess(X̄, yes) :- rel(X̄).
        guess(X̄, no)  :- rel(X̄).
        subset(X̄)     :- guess[1..n](X̄, yes, 1).
    """
    args = _arg_vars(arity)
    guess = f"{output}_guess"
    group = frozenset(range(1, arity + 1))
    clauses = (
        Clause(Atom(guess, args + (Const("yes"),)),
               (Literal(Atom(relation, args)),)),
        Clause(Atom(guess, args + (Const("no"),)),
               (Literal(Atom(relation, args)),)),
        Clause(Atom(output, args),
               (Literal(Atom(guess, args + (Const("yes"), Const(1)), group)),)),
    )
    program = Program(clauses, name=f"subset_{relation}")
    return SamplingQuery(IdlogQuery(program, output), output)
