"""DATALOG^∨: disjunctive heads and minimal-model semantics (paper §3.2).

The paper's overview names disjunction the "fairly direct way" to get
non-determinism: ``man(X) | woman(X) :- person(X)`` has one minimal model
per way of classifying each person, so the queries ``man``/``woman`` are
non-deterministic.  Example 2 defines the same queries in IDLOG; experiment
E2 checks the answer sets coincide.

Implementation: positive disjunctive programs (negation-free bodies except
arithmetic), evaluated by *violated-clause branching*: starting from the
EDB, repeatedly find a ground clause instance whose body holds but whose
head is entirely false, and branch on which head atom to satisfy.  Every
branch terminates in a model; every minimal model is reachable this way
(any minimal model M: replay the derivation inside M), so filtering the
collected models by set inclusion yields exactly the minimal models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Union

from ..datalog.ast import Atom, Clause, Literal
from ..datalog.database import Database, Relation
from ..datalog.parser import parse_head_body_clauses
from ..datalog.safety import order_body
from ..datalog.seminaive import EvalStats, RelationStore, _solve_literals
from ..datalog.terms import Const, Value, Var
from ..errors import EvaluationError, SchemaError

Fact = tuple[str, tuple[Value, ...]]
State = frozenset[Fact]


@dataclass(frozen=True)
class DisjunctiveClause:
    """A clause ``h1 | ... | hk :- body`` with positive atoms throughout."""

    heads: tuple[Atom, ...]
    body: tuple[Literal, ...]

    def __post_init__(self) -> None:
        if not self.heads:
            raise SchemaError("a disjunctive clause needs at least one head")
        for atom in self.heads:
            if atom.is_builtin or atom.is_id:
                raise SchemaError(f"head atom {atom} must be ordinary")
        body_vars: set[Var] = set()
        for literal in self.body:
            atom = literal.atom
            if not isinstance(atom, Atom):
                raise SchemaError("choice operators are not DATALOG^∨")
            if not literal.positive and not atom.is_builtin:
                raise SchemaError(
                    f"negative body literal {literal}: this implementation "
                    "covers positive disjunctive programs")
            if literal.positive:
                body_vars |= atom.vars
        for atom in self.heads:
            unbound = atom.vars - body_vars
            if unbound:
                names = sorted(v.name for v in unbound)
                raise SchemaError(
                    f"head variables {names} not bound by the body "
                    f"(range restriction)")

    def __str__(self) -> str:
        heads = " | ".join(str(a) for a in self.heads)
        if not self.body:
            return f"{heads}."
        return f"{heads} :- {', '.join(str(lit) for lit in self.body)}."


@dataclass(frozen=True)
class DisjunctiveProgram:
    """A positive disjunctive Datalog program."""

    clauses: tuple[DisjunctiveClause, ...]
    name: str = "dlv_program"

    @property
    def predicates(self) -> frozenset[str]:
        preds: set[str] = set()
        for clause in self.clauses:
            for atom in clause.heads:
                preds.add(atom.pred)
            for literal in clause.body:
                if isinstance(literal.atom, Atom) \
                        and not literal.atom.is_builtin:
                    preds.add(literal.atom.pred)
        return frozenset(preds)

    def arity(self, pred: str) -> int:
        for clause in self.clauses:
            for atom in clause.heads:
                if atom.pred == pred:
                    return len(atom.args)
            for literal in clause.body:
                atom = literal.atom
                if isinstance(atom, Atom) and not atom.is_builtin \
                        and atom.pred == pred:
                    return len(atom.args)
        raise KeyError(pred)


def parse_disjunctive_program(text: str,
                              name: str = "dlv_program",
                              ) -> DisjunctiveProgram:
    """Parse ``h1 | h2 :- body.`` clauses."""
    clauses = []
    for heads, body in parse_head_body_clauses(text, head_separator="|"):
        atoms = []
        for literal in heads:
            if not literal.positive:
                raise SchemaError("negative head literal in DATALOG^∨")
            atoms.append(literal.atom)
        clauses.append(DisjunctiveClause(tuple(atoms), body))
    return DisjunctiveProgram(tuple(clauses), name=name)


class DisjunctiveEngine:
    """Minimal-model enumeration for positive disjunctive programs.

    Example (the paper's Example 2 clause):
        >>> engine = DisjunctiveEngine("man(X) | woman(X) :- person(X).")
        >>> db = Database.from_facts({"person": [("a",), ("b",)]})
        >>> len(engine.minimal_models(db))
        4
    """

    def __init__(self, program: Union[str, DisjunctiveProgram]) -> None:
        if isinstance(program, str):
            program = parse_disjunctive_program(program)
        self.program = program
        self._plans = [
            order_body(Clause(Atom("dlv_goal", ()), clause.body))
            for clause in program.clauses]

    def _initial_state(self, db: Database) -> State:
        facts: set[Fact] = set()
        for name in db.relation_names():
            for row in db.relation(name):
                facts.add((name, row))
        return frozenset(facts)

    def _store_for(self, state: State) -> RelationStore:
        store = RelationStore(None, EvalStats())
        relations: dict[str, Relation] = {}
        for pred in self.program.predicates:
            relations[pred] = Relation(self.program.arity(pred))
        for pred, row in state:
            if pred not in relations:
                relations[pred] = Relation(len(row))
            relations[pred].add(row)
        for pred, relation in relations.items():
            store.install(pred, relation)
        return store

    def _violations(self, state: State) -> Iterator[tuple[Fact, ...]]:
        """Head alternatives of ground instances violated by ``state``."""
        store = self._store_for(state)
        stats = EvalStats()
        for clause, plan in zip(self.program.clauses, self._plans):
            for subst in _solve_literals(plan, 0, {}, store, stats, {}):
                heads = tuple(
                    (atom.pred, tuple(
                        t.value if isinstance(t, Const) else subst[t]
                        for t in atom.args))
                    for atom in clause.heads)
                if not any(h in state for h in heads):
                    yield heads

    def models(self, db: Database,
               max_states: int = 50_000) -> frozenset[State]:
        """All branch-terminal models (a superset of the minimal ones)."""
        visited: set[State] = set()
        results: set[State] = set()
        stack = [self._initial_state(db)]
        while stack:
            state = stack.pop()
            if state in visited:
                continue
            visited.add(state)
            if len(visited) > max_states:
                raise EvaluationError(
                    "model search exceeded max_states")
            violated = next(iter(self._violations(state)), None)
            if violated is None:
                results.add(state)
            else:
                for head in violated:
                    stack.append(state | {head})
        return frozenset(results)

    def minimal_models(self, db: Database,
                       max_states: int = 50_000) -> frozenset[State]:
        """The minimal Herbrand models of the program on ``db``."""
        candidates = self.models(db, max_states)
        return frozenset(
            m for m in candidates
            if not any(other < m for other in candidates))

    def answers(self, db: Database, pred: str,
                max_states: int = 50_000) -> frozenset[frozenset[tuple]]:
        """The non-deterministic query ``pred`` defines: its relation in
        each minimal model."""
        return frozenset(
            frozenset(row for name, row in model if name == pred)
            for model in self.minimal_models(db, max_states))
