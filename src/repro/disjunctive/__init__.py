"""DATALOG^∨: disjunctive heads under minimal-model semantics (§3.2)."""

from .dlv import (DisjunctiveClause, DisjunctiveEngine, DisjunctiveProgram,
                  parse_disjunctive_program)

__all__ = [
    "DisjunctiveClause", "DisjunctiveEngine", "DisjunctiveProgram",
    "parse_disjunctive_program",
]
