"""IDLOG: a non-deterministic deductive database language.

Reproduction of Yeh-Heng Sheng, *A Non-deterministic Deductive Database
Language*, SIGMOD 1991.  See DESIGN.md for the system inventory and
EXPERIMENTS.md for the per-experiment index.

Quick tour::

    from repro import Database, IdlogEngine

    engine = IdlogEngine(
        "select_two_emp(N) :- emp[2](N, D, T), T < 2.")
    db = Database.from_facts({"emp": [
        ("ann", "toys"), ("bob", "toys"), ("cal", "toys"),
        ("dee", "it"), ("eli", "it")]})
    sample = engine.one(db, seed=0).tuples("select_two_emp")

Subpackages:

* :mod:`repro.datalog` — the deterministic Datalog substrate (parser,
  storage, safety, stratification, semi-naive engine).
* :mod:`repro.core` — the paper's contribution: ID-relations, assignment
  strategies, the IDLOG engine and non-deterministic queries.
* :mod:`repro.choice` — DATALOG^C and the Theorem 2 translation.
* :mod:`repro.sampling` — high-level sampling-query builders.
* :mod:`repro.optimizer` — §4: adornment, projection pushing,
  ∃-existential ID-literal rewriting, cost reports.
* :mod:`repro.inflationary`, :mod:`repro.disjunctive`, :mod:`repro.stable`
  — the rival non-deterministic languages reviewed in §3.2.
* :mod:`repro.ndtm` — generic Turing machines and the §5 expressive-power
  constructions.
"""

from .aggregates import (count_per_group, max_per_group, min_per_group,
                         sum_per_group)
from .choice import ChoiceEngine, ChoiceProgram, choice_to_idlog
from .core import (CanonicalAssignment, IdlogEngine, IdlogProgram,
                   IdlogQuery, OracleAssignment, RandomAssignment)
from .datalog import (Database, DatalogEngine, IncrementalEngine, Program,
                      Relation, TopDownEngine, parse_program)
from .disjunctive import DisjunctiveEngine
from .inflationary import DLEngine
from .optimizer import (answer_goal, compare_cost, detect_existential,
                        magic_rewrite, optimize)
from .sampling import (arbitrary_subset, sample_k, sample_k_per_group,
                       sample_one_per_group)
from .stable import StableEngine
from .wellfounded import WellFoundedEngine, WellFoundedModel

__version__ = "1.0.0"

__all__ = [
    "count_per_group", "max_per_group", "min_per_group", "sum_per_group",
    "ChoiceEngine", "ChoiceProgram", "choice_to_idlog",
    "CanonicalAssignment", "IdlogEngine", "IdlogProgram", "IdlogQuery",
    "OracleAssignment", "RandomAssignment",
    "Database", "DatalogEngine", "IncrementalEngine", "Program",
    "Relation", "TopDownEngine", "parse_program",
    "DisjunctiveEngine", "DLEngine",
    "answer_goal", "compare_cost", "detect_existential", "magic_rewrite",
    "optimize",
    "arbitrary_subset", "sample_k", "sample_k_per_group",
    "sample_one_per_group",
    "StableEngine",
    "WellFoundedEngine", "WellFoundedModel",
    "__version__",
]
