"""Randomized program/database generators for differential testing.

Exposed as library code (rather than test-internal helpers) so downstream
users can fuzz their own extensions the way this repository's property
tests do: generate a random stratified program, evaluate it under two
implementations (semi-naive vs naive, original vs optimized, direct vs
magic), and compare.

Generation is *correct by construction* where cheap (stratification comes
from a level discipline: a predicate's body only uses lower-or-equal
levels positively and strictly-lower levels negatively) and by rejection
where not (safety is re-checked with the real checker and unsafe drafts
are re-drawn).
"""

from __future__ import annotations

import random
from typing import Optional

from .datalog.ast import Atom, Clause, Literal, Program
from .datalog.database import Database, Relation
from .datalog.safety import check_clause
from .datalog.terms import Const, Var
from .errors import SafetyError


def random_stratified_program(
        rng: random.Random,
        n_edb: int = 2,
        n_idb: int = 3,
        max_clauses_per_pred: int = 2,
        max_body_literals: int = 3,
        allow_negation: bool = True,
        allow_recursion: bool = True,
        allow_builtins: bool = False,
        constants: tuple[str, ...] = ("a", "b"),
) -> Program:
    """Generate a random safe, stratified Datalog program.

    EDB predicates are ``e0..``, IDB predicates ``p0..`` ordered by level;
    the body of a clause for ``p_i`` uses EDB predicates, IDB predicates
    below ``i`` (negatively only those), and optionally ``p_i`` itself
    positively (recursion).  Every clause passes the real safety checker.

    Args:
        rng: Randomness source (seed it for reproducibility).
        n_edb: Number of EDB predicates (arity 1 or 2, chosen per pred).
        n_idb: Number of IDB predicates.
        max_clauses_per_pred: Clauses generated per IDB predicate (>= 1).
        max_body_literals: Positive body literals per clause (>= 1).
        allow_negation: Permit one negative literal per clause.
        allow_recursion: Permit self-recursive positive literals.
        allow_builtins: Permit one builtin literal per clause — a ``!=``
            filter over bound variables or a ``=`` binding a fresh
            variable (usable in the head), the non-numeric shapes that
            work over u-constant domains.
        constants: Pool of u-constants occasionally used as arguments.
    """
    arities = {f"e{i}": rng.choice((1, 2)) for i in range(n_edb)}
    for i in range(n_idb):
        arities[f"p{i}"] = rng.choice((1, 2))
    variables = [Var(f"X{i}") for i in range(4)]

    def random_args(arity: int, pool: list[Var]) -> tuple:
        args = []
        for _ in range(arity):
            if rng.random() < 0.15:
                args.append(Const(rng.choice(constants)))
            else:
                args.append(rng.choice(pool))
        return tuple(args)

    def draft_clause(level: int) -> Clause:
        head_pred = f"p{level}"
        positives = []
        candidates = [f"e{i}" for i in range(n_edb)]
        candidates += [f"p{j}" for j in range(level)]
        if allow_recursion and rng.random() < 0.4:
            candidates.append(head_pred)
        for _ in range(rng.randrange(1, max_body_literals + 1)):
            pred = rng.choice(candidates)
            positives.append(
                Literal(Atom(pred, random_args(arities[pred], variables))))
        body = list(positives)
        used_vars = sorted(
            {v for lit in positives for v in lit.vars},
            key=lambda v: v.name)
        if allow_negation and level > 0 and used_vars \
                and rng.random() < 0.4:
            neg_pred = f"p{rng.randrange(level)}"
            args = tuple(rng.choice(used_vars)
                         for _ in range(arities[neg_pred]))
            body.append(Literal(Atom(neg_pred, args), positive=False))
        if allow_builtins and used_vars and rng.random() < 0.5:
            if rng.random() < 0.5:
                body.append(Literal(Atom("!=", (rng.choice(used_vars),
                                                rng.choice(used_vars)))))
            else:
                fresh = Var("Z0")
                body.append(Literal(Atom("=", (fresh,
                                               rng.choice(used_vars)))))
                used_vars = used_vars + [fresh]
        if used_vars:
            head_args = tuple(rng.choice(used_vars)
                              for _ in range(arities[head_pred]))
        else:
            head_args = tuple(Const(rng.choice(constants))
                              for _ in range(arities[head_pred]))
        return Clause(Atom(head_pred, head_args), tuple(body))

    clauses = []
    for level in range(n_idb):
        for _ in range(rng.randrange(1, max_clauses_per_pred + 1)):
            for _attempt in range(20):
                draft = draft_clause(level)
                try:
                    check_clause(draft)
                except SafetyError:
                    continue
                clauses.append(draft)
                break
    return Program(tuple(clauses), name="random_program")


def random_edb(program: Program, rng: random.Random,
               domain: tuple[str, ...] = ("a", "b", "c"),
               max_rows: int = 6) -> Database:
    """A random database for a program's input predicates."""
    db = Database(udomain=domain)
    for pred in sorted(program.input_predicates):
        arity = program.arity(pred)
        relation = Relation(arity)
        for _ in range(rng.randrange(max_rows + 1)):
            relation.add(tuple(rng.choice(domain) for _ in range(arity)))
        db.add_relation(pred, relation, replace=True)
    return db


def random_idlog_program(rng: random.Random,
                         base: Optional[Program] = None,
                         **kwargs) -> Program:
    """A random IDLOG program: a stratified base plus ID-literal clauses.

    Adds 1–2 clauses of the shape ``q_k(...) :- p_j[group](..., tid)``
    over the base program's IDB predicates, with tids either the constant
    0 or a bounded variable — the shapes §3.3/§4 use.
    """
    program = base or random_stratified_program(rng, **kwargs)
    clauses = list(program.clauses)
    idb = sorted(program.head_predicates)
    variables = [Var(f"Y{i}") for i in range(3)]
    for k in range(rng.randrange(1, 3)):
        target = rng.choice(idb)
        arity = program.arity(target)
        group = frozenset(
            i for i in range(1, arity + 1) if rng.random() < 0.5)
        args = tuple(variables[i % len(variables)] for i in range(arity))
        tid_var = Var("T")
        if rng.random() < 0.5:
            id_atom = Atom(target, args + (Const(0),), group)
            body: tuple[Literal, ...] = (Literal(id_atom),)
        else:
            id_atom = Atom(target, args + (tid_var,), group)
            bound = Const(rng.choice((1, 2)))
            body = (Literal(id_atom),
                    Literal(Atom("<", (tid_var, bound))))
        head_args = tuple(dict.fromkeys(args))  # distinct vars, in order
        clauses.append(Clause(Atom(f"q{k}", head_args), body))
    return Program(tuple(clauses), name="random_idlog")
