"""Tests for the bottom-up evaluator: semi-naive vs naive cross-checks,
negation, arithmetic, and instrumentation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog.database import Database
from repro.datalog.parser import parse_program
from repro.datalog.seminaive import evaluate, evaluate_naive
from repro.errors import EvaluationError

TC = parse_program("""
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Z), path(Z, Y).
""")


def run(program_text, facts, pred, **db_kwargs):
    program = parse_program(program_text)
    db = Database.from_facts(facts, **db_kwargs)
    result, _ = evaluate(program, db)
    return result.relation(pred).frozen()


class TestBasics:
    def test_transitive_closure(self):
        db = Database.from_facts({"edge": [("a", "b"), ("b", "c"), ("c", "d")]})
        result, _ = evaluate(TC, db)
        assert result.relation("path").frozen() == {
            ("a", "b"), ("a", "c"), ("a", "d"),
            ("b", "c"), ("b", "d"), ("c", "d")}

    def test_cycle_terminates(self):
        db = Database.from_facts({"edge": [("a", "b"), ("b", "a")]})
        result, _ = evaluate(TC, db)
        assert result.relation("path").frozen() == {
            ("a", "b"), ("b", "a"), ("a", "a"), ("b", "b")}

    def test_facts_in_program(self):
        out = run("""
            edge(a, b).
            edge(b, c).
            reach(X) :- edge(a, X).
            reach(Y) :- reach(X), edge(X, Y).
        """, {"seed": [("s",)]}, "reach")
        assert out == {("b",), ("c",)}

    def test_empty_edb_relation_defaults_empty(self):
        program = parse_program("p(X) :- q(X).")
        result, _ = evaluate(program, Database())
        assert result.relation("p").frozen() == frozenset()

    def test_constants_in_body(self):
        out = run("toy_emp(N) :- emp(N, toys).",
                  {"emp": [("ann", "toys"), ("bob", "it")]}, "toy_emp")
        assert out == {("ann",)}

    def test_constants_in_head(self):
        out = run("flag(yes) :- emp(N, toys).",
                  {"emp": [("ann", "toys")]}, "flag")
        assert out == {("yes",)}

    def test_idb_facts_from_database(self):
        # Facts for a head predicate supplied in the database are kept.
        out = run("p(X) :- q(X).\np(X) :- r(X).",
                  {"q": [("a",)], "p": [("seed",)]}, "p")
        assert out == {("a",), ("seed",)}


class TestNegation:
    def test_stratified_negation(self):
        out = run("""
            linked(X) :- edge(X, Y).
            linked(Y) :- edge(X, Y).
            lone(X) :- node(X), not linked(X).
        """, {"node": [("a",), ("b",), ("z",)], "edge": [("a", "b")]}, "lone")
        assert out == {("z",)}

    def test_double_negation(self):
        out = run("""
            a(X) :- e(X), not b(X).
            b(X) :- f(X).
            c(X) :- e(X), not a(X).
        """, {"e": [("x",), ("y",)], "f": [("x",)]}, "c")
        assert out == {("x",)}

    def test_negation_of_recursive_pred(self):
        out = run("""
            path(X, Y) :- edge(X, Y).
            path(X, Y) :- edge(X, Z), path(Z, Y).
            unreachable(X, Y) :- node(X), node(Y), not path(X, Y).
        """, {"edge": [("a", "b")], "node": [("a",), ("b",)]}, "unreachable")
        assert out == {("a", "a"), ("b", "a"), ("b", "b")}


class TestArithmetic:
    def test_succ_chain(self):
        out = run("""
            count(0) :- start(X).
            count(M) :- count(N), N < 3, succ(N, M).
        """, {"start": [("go",)]}, "count")
        assert out == {(0,), (1,), (2,), (3,)}

    def test_sum_via_infix(self):
        out = run("s(M) :- pair(A, B), M = A + B.",
                  {"pair": [(1, 2), (10, 5)]}, "s")
        assert out == {(3,), (15,)}

    def test_paper_nnb_plus(self):
        """p2(X, N) :- q(X, N), +(L, M, N): finite solutions enumerate."""
        out = run("p2(X, L, M) :- q(X, N), +(L, M, N).",
                  {"q": [("a", 1)]}, "p2")
        assert out == {("a", 0, 1), ("a", 1, 0)}

    def test_comparison_filters(self):
        out = run("small(X) :- val(X, N), N < 10.",
                  {"val": [("a", 5), ("b", 15)]}, "small")
        assert out == {("a",)}

    def test_fib_bounded(self):
        out = run("""
            fib(0, 0) :- go(X).
            fib(1, 1) :- go(X).
            fib(K, F) :- fib(I, A), fib(J, B), succ(I, J), succ(J, K),
                         K <= 10, F = A + B.
        """, {"go": [("x",)]}, "fib")
        assert (10, 55) in out


class TestSemiNaiveAgainstNaive:
    PROGRAMS = [
        """
        path(X, Y) :- edge(X, Y).
        path(X, Y) :- edge(X, Z), path(Z, Y).
        """,
        """
        same_gen(X, X) :- person(X).
        same_gen(X, Y) :- parent(X, PX), parent(Y, PY), same_gen(PX, PY).
        """,
        """
        even(X) :- zero(X).
        odd(Y) :- even(X), next(X, Y).
        even(Y) :- odd(X), next(X, Y).
        """,
    ]

    @pytest.mark.parametrize("text", PROGRAMS)
    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_agreement_on_random_edbs(self, text, data):
        program = parse_program(text)
        names = sorted(program.input_predicates)
        facts = {}
        domain = ["a", "b", "c", "d"]
        for name in names:
            arity = program.arity(name)
            rows = data.draw(st.lists(
                st.tuples(*[st.sampled_from(domain)] * arity), max_size=8))
            if rows:
                facts[name] = rows
        db = Database.from_facts(facts) if facts else Database()
        semi, _ = evaluate(program, db)
        naive, _ = evaluate_naive(program, db)
        for pred in program.head_predicates:
            assert semi.relation(pred).frozen() == naive.relation(pred).frozen()


class TestStats:
    def test_derived_counts(self):
        db = Database.from_facts({"edge": [("a", "b"), ("b", "c")]})
        _, stats = evaluate(TC, db)
        assert stats.derived == {"path": 3}
        assert stats.total_derived == 3
        assert stats.firings >= 3
        assert stats.probes > 0

    def test_merge(self):
        db = Database.from_facts({"edge": [("a", "b")]})
        _, s1 = evaluate(TC, db)
        _, s2 = evaluate(TC, db)
        s1.merge(s2)
        assert s1.derived["path"] == 2

    def test_seminaive_cheaper_than_naive_on_chain(self):
        edges = [(f"n{i}", f"n{i+1}") for i in range(30)]
        db = Database.from_facts({"edge": edges})
        _, semi = evaluate(TC, db)
        _, naive = evaluate_naive(TC, db)
        assert semi.probes < naive.probes

    def test_plan_counters(self):
        # Long enough for two delta rounds, so the compiled delta plan is
        # actually reused (a 2-edge chain converges in one round).
        db = Database.from_facts(
            {"edge": [("a", "b"), ("b", "c"), ("c", "d")]})
        _, stats = evaluate(TC, db)
        assert stats.plans_built >= 1
        assert stats.plans_reused >= 1
        _, merged = evaluate(TC, db)
        merged.merge(stats)
        assert merged.plans_built == 2 * stats.plans_built


class TestProbeAccounting:
    """The probe counter charges one probe per yielded tuple with a floor
    of one per lookup — so empty scans and missed index probes still cost,
    matching the planner's cost model."""

    def test_full_scan_charges_every_row(self):
        program = parse_program("p(X) :- q(X).")
        db = Database.from_facts({"q": [("a",), ("b",), ("c",)]})
        _, stats = evaluate(program, db)
        assert stats.probes == 3

    def test_empty_scan_charges_one(self):
        from repro.datalog.database import Relation
        program = parse_program("p(X) :- q(X).")
        db = Database()
        db.add_relation("q", Relation(1))
        _, stats = evaluate(program, db)
        assert stats.probes == 1

    def test_missed_index_probe_charges_one(self):
        # q yields 2 rows (2 probes); each row probes r's index on X and
        # finds an empty bucket — 1 probe each, not 0.
        program = parse_program("p(X) :- q(X), r(X).")
        db = Database.from_facts({"q": [("a",), ("b",)], "r": [("z",)]})
        _, stats = evaluate(program, db)
        assert stats.probes == 4


class TestErrors:
    def test_id_atom_without_provider(self):
        program = parse_program("s(X) :- emp[2](X, D, 0).")
        db = Database.from_facts({"emp": [("ann", "toys")]})
        with pytest.raises(EvaluationError):
            evaluate(program, db)

    def test_edb_arity_conflict(self):
        program = parse_program("p(X) :- q(X).")
        db = Database.from_facts({"q": [("a", "b")]})
        with pytest.raises(EvaluationError):
            evaluate(program, db)


class TestIterationGuard:
    def test_diverging_arithmetic_guarded(self):
        """times(0, M, 0) holds for every M: without a guard the fixpoint
        never terminates; with one, it raises."""
        program = parse_program("""
            t(N, 0) :- seed(N).
            t(N, M2) :- t(N, M), succ(M, M2).
        """)
        db = Database.from_facts({"seed": [(0,)]})
        with pytest.raises(EvaluationError):
            evaluate(program, db, max_iterations=50)

    def test_guard_permits_terminating_programs(self):
        db = Database.from_facts({"edge": [("a", "b"), ("b", "c")]})
        result, _ = evaluate(TC, db, max_iterations=50)
        assert len(result.relation("path").frozen()) == 3

    def test_engine_threads_guard(self):
        from repro.datalog.engine import DatalogEngine
        engine = DatalogEngine("""
            t(N, 0) :- seed(N).
            t(N, M2) :- t(N, M), succ(M, M2).
        """)
        db = Database.from_facts({"seed": [(0,)]})
        with pytest.raises(EvaluationError):
            engine.run(db, max_iterations=10)


class TestStoreMemoryStats:
    def test_covers_relations_and_id_cache(self):
        from repro.datalog.database import Relation
        from repro.datalog.seminaive import EvalStats, RelationStore

        class _Provider:
            def materialize(self, pred, group, base, stats):
                return Relation(base.arity + 1, tuples=[
                    row + (i,) for i, row in enumerate(sorted(base))])

        store = RelationStore(_Provider(), EvalStats())
        store.install("p", Relation(1, tuples=[("a",), ("b",)]))
        store.install("q", Relation(2, tuples=[("a", "x")]))
        before = store.memory_stats()
        assert before["relations"] == 2
        assert before["total_rows"] == 3
        assert before["id_relations"] == 0 and before["id_rows"] == 0

        store.id_relation("p", frozenset())
        after = store.memory_stats()
        assert after["id_relations"] == 1
        assert after["id_rows"] == 2
        # The cached ID-relation lives only in the store, so it raises
        # the store footprint above the visible-relation total.
        assert after["total_approx_bytes"] > before["total_approx_bytes"]
