"""Tests for the safety checker / body planner."""

import pytest

from repro.datalog.parser import parse_clause, parse_program
from repro.datalog.safety import (binding_pattern, check_clause,
                                  check_program, order_body)
from repro.datalog.terms import Var
from repro.errors import SafetyError


def order_names(clause, **kwargs):
    return [str(lit.atom) for lit in order_body(clause, **kwargs)]


class TestSafeClauses:
    def test_plain_join(self):
        check_clause(parse_clause("p(X, Y) :- q(X, Z), r(Z, Y)."))

    def test_paper_safe_plus(self):
        """p2(X, N) :- q(X, N), +(L, M, N) is allowed in the paper."""
        check_clause(parse_clause("p2(X, N) :- q(X, N), +(L, M, N)."))

    def test_paper_unsafe_plus(self):
        """p1(X, N) :- q(X, N), +(N, L, M) is rejected in the paper."""
        with pytest.raises(SafetyError):
            check_clause(parse_clause("p1(X, N) :- q(X, N), +(N, L, M)."))

    def test_negation_needs_bound_vars(self):
        check_clause(parse_clause("p(X) :- q(X), not r(X)."))
        with pytest.raises(SafetyError):
            check_clause(parse_clause("p(X) :- q(X), not r(Y)."))

    def test_head_vars_must_be_bound(self):
        with pytest.raises(SafetyError):
            check_clause(parse_clause("p(X, Y) :- q(X)."))

    def test_nonground_fact_unsafe(self):
        with pytest.raises(SafetyError):
            check_clause(parse_clause("p(X)."))

    def test_comparison_reordered_after_binder(self):
        # The comparison comes first in source order but must run second.
        clause = parse_clause("p(N) :- N < 2, q(N).")
        names = order_names(clause)
        assert names == ["q(N)", "<(N, 2)"]

    def test_arith_chain(self):
        check_clause(parse_clause(
            "p(S) :- q(A), r(B), T = A + B, S = T * 2."))

    def test_equality_binds(self):
        check_clause(parse_clause("p(Y) :- q(X), Y = X."))

    def test_unbound_equality_unsafe(self):
        with pytest.raises(SafetyError):
            check_clause(parse_clause("p(Y) :- Y = Z."))

    def test_id_literal_binds_vars(self):
        check_clause(parse_clause("s(Name) :- emp[2](Name, Dept, 0)."))

    def test_negated_id_literal_needs_bound(self):
        check_clause(parse_clause(
            "p(X) :- emp(X, D), num(N), not emp[2](X, D, N)."))

    def test_negated_builtin_fully_bound_ok(self):
        check_clause(parse_clause("p(X) :- q(X, N), not N < 2."))

    def test_negated_builtin_unbound_rejected(self):
        with pytest.raises(SafetyError):
            check_clause(parse_clause("p(X) :- q(X), not N < 2."))


class TestOrdering:
    def test_filters_scheduled_asap(self):
        clause = parse_clause("p(X) :- q(X), r(X, Y), X != a.")
        names = order_names(clause)
        # The disequality runs as soon as X is bound, before the join with r.
        assert names.index("!=(X, a)") < names.index("r(X, Y)")

    def test_forced_first_literal(self):
        clause = parse_clause("p(X, Y) :- q(X, Z), r(Z, Y).")
        forced = clause.body[1]
        names = order_names(clause, first=forced)
        assert names[0] == "r(Z, Y)"

    def test_forced_first_must_be_positive_relation(self):
        clause = parse_clause("p(X) :- q(X), not r(X).")
        with pytest.raises(SafetyError):
            order_body(clause, first=clause.body[1])

    def test_initially_bound_allows_otherwise_unsafe(self):
        clause = parse_clause("p(X) :- not r(X), q(X).")
        # Fine: q binds X, planner reorders.  Also fine with X pre-bound.
        order_body(clause)
        order_body(clause, initially_bound=frozenset({Var("X")}))


class TestBindingPattern:
    def test_constants_count_bound(self):
        clause = parse_clause("p(N) :- q(N), +(N, 1, M).")
        plus = clause.body[1].atom
        assert binding_pattern(plus, frozenset({Var("N")})) == "bbn"

    def test_unbound_vars(self):
        clause = parse_clause("p(N) :- q(N), +(A, B, N).")
        plus = clause.body[1].atom
        assert binding_pattern(plus, frozenset({Var("N")})) == "nnb"


class TestProgramCheck:
    def test_program_with_one_bad_clause(self):
        program = parse_program("""
            good(X) :- q(X).
            bad(X, Y) :- q(X).
        """)
        with pytest.raises(SafetyError):
            check_program(program)

    def test_choice_rejected_by_planner(self):
        clause = parse_clause("p(X) :- q(X, Y), choice((X), (Y)).")
        with pytest.raises(SafetyError):
            check_clause(clause)
