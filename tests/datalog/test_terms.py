"""Tests for the two-sorted term layer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.datalog.terms import (Const, Sort, Var, format_type,
                                 fresh_var_factory, parse_type,
                                 sort_of_value, term_vars, type_of_tuple)


class TestSortOfValue:
    def test_string_is_u(self):
        assert sort_of_value("alice") is Sort.U

    def test_int_is_i(self):
        assert sort_of_value(7) is Sort.I

    def test_zero_is_i(self):
        assert sort_of_value(0) is Sort.I

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            sort_of_value(-1)

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            sort_of_value(True)

    def test_float_rejected(self):
        with pytest.raises(TypeError):
            sort_of_value(1.5)


class TestRelationTypes:
    def test_type_of_tuple(self):
        assert type_of_tuple(("a", 3, "b")) == (Sort.U, Sort.I, Sort.U)

    def test_parse_type_roundtrip(self):
        assert format_type(parse_type("0101")) == "0101"

    def test_parse_type_rejects_other_chars(self):
        with pytest.raises(ValueError):
            parse_type("012")

    @given(st.lists(st.sampled_from("01"), max_size=8))
    def test_parse_format_inverse(self, chars):
        spec = "".join(chars)
        assert format_type(parse_type(spec)) == spec


class TestTerms:
    def test_var_equality_by_name(self):
        assert Var("X") == Var("X")
        assert Var("X") != Var("Y")

    def test_const_sort(self):
        assert Const("a").sort is Sort.U
        assert Const(3).sort is Sort.I

    def test_const_str_quotes_non_identifier(self):
        assert str(Const("hello world")) == "'hello world'"
        assert str(Const("abc")) == "abc"
        assert str(Const("Abc")) == "'Abc'"  # uppercase would read as a var

    def test_term_vars(self):
        terms = (Var("X"), Const("a"), Var("Y"), Var("X"))
        assert term_vars(terms) == frozenset({Var("X"), Var("Y")})

    def test_fresh_vars_distinct(self):
        fresh = fresh_var_factory()
        names = {fresh().name for _ in range(100)}
        assert len(names) == 100

    def test_fresh_vars_reserved_prefix(self):
        fresh = fresh_var_factory()
        assert fresh().name.startswith("_")
