"""Tests for the arithmetic predicates and their binding-pattern tables."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.datalog.builtins import builtin_names, builtin_spec, is_builtin_name
from repro.errors import EvaluationError, UnsafeBuiltinError

nats = st.integers(min_value=0, max_value=10_000)


def solve(name, *args):
    return list(builtin_spec(name).solve(args))


class TestRegistry:
    def test_expected_builtins_present(self):
        expected = {"succ", "+", "-", "*", "/", "mod",
                    "<", "<=", ">", ">=", "=", "!="}
        assert expected <= builtin_names()

    def test_is_builtin_name(self):
        assert is_builtin_name("+")
        assert not is_builtin_name("emp")


class TestPatternTables:
    def test_plus_patterns_match_paper(self):
        """The paper lists bbb, bbn, bnb, nbb, nnb for +."""
        spec = builtin_spec("+")
        for pattern in ("bbb", "bbn", "bnb", "nbb", "nnb"):
            assert spec.allows(pattern), pattern
        for pattern in ("bnn", "nbn", "nnn"):
            assert not spec.allows(pattern), pattern

    def test_comparisons_need_both_bound(self):
        for name in ("<", "<=", ">", ">="):
            spec = builtin_spec(name)
            assert spec.allows("bb")
            assert not spec.allows("bn")
            assert not spec.allows("nb")

    def test_equality_can_bind_one_side(self):
        spec = builtin_spec("=")
        assert spec.allows("bn") and spec.allows("nb") and spec.allows("bb")
        assert not spec.allows("nn")

    def test_more_bound_than_allowed_is_fine(self):
        assert builtin_spec("succ").allows("bb")


class TestSucc:
    def test_forward(self):
        assert solve("succ", 3, None) == [(3, 4)]

    def test_backward(self):
        assert solve("succ", None, 4) == [(3, 4)]

    def test_backward_of_zero_empty(self):
        assert solve("succ", None, 0) == []

    def test_check(self):
        assert solve("succ", 3, 4) == [(3, 4)]
        assert solve("succ", 3, 5) == []

    def test_unbound_both_raises(self):
        with pytest.raises(UnsafeBuiltinError):
            solve("succ", None, None)

    def test_non_numeric_raises(self):
        with pytest.raises(EvaluationError):
            solve("succ", "a", None)


class TestAdd:
    def test_bbn(self):
        assert solve("+", 2, 3, None) == [(2, 3, 5)]

    def test_bnb(self):
        assert solve("+", 2, None, 5) == [(2, 3, 5)]

    def test_bnb_no_natural_solution(self):
        assert solve("+", 7, None, 5) == []

    def test_nnb_paper_example(self):
        """L + M = 1 has exactly the solutions (0,1) and (1,0)."""
        assert solve("+", None, None, 1) == [(0, 1, 1), (1, 0, 1)]

    def test_nnb_count(self):
        assert len(solve("+", None, None, 10)) == 11

    def test_bnn_raises(self):
        """1 + L = M has infinitely many solutions (the paper's example)."""
        with pytest.raises(UnsafeBuiltinError):
            solve("+", 1, None, None)

    @given(nats, nats)
    def test_add_consistency(self, a, b):
        assert solve("+", a, b, None) == [(a, b, a + b)]
        assert solve("+", a, None, a + b) == [(a, b, a + b)]
        assert solve("+", None, b, a + b) == [(a, b, a + b)]


class TestSub:
    def test_bbn(self):
        assert solve("-", 5, 3, None) == [(5, 3, 2)]

    def test_bbn_negative_result_empty(self):
        assert solve("-", 3, 5, None) == []

    def test_nbb(self):
        assert solve("-", None, 3, 2) == [(5, 3, 2)]

    def test_bnn_enumerates(self):
        assert sorted(solve("-", 2, None, None)) == [(2, 0, 2), (2, 1, 1), (2, 2, 0)]


class TestMul:
    def test_bbn(self):
        assert solve("*", 3, 4, None) == [(3, 4, 12)]

    def test_bnb_divides(self):
        assert solve("*", 3, None, 12) == [(3, 4, 12)]

    def test_bnb_not_divisible(self):
        assert solve("*", 5, None, 12) == []

    def test_nnb_factor_pairs(self):
        assert sorted(solve("*", None, None, 6)) == [
            (1, 6, 6), (2, 3, 6), (3, 2, 6), (6, 1, 6)]

    def test_nnb_square(self):
        assert (3, 3, 9) in solve("*", None, None, 9)

    def test_zero_times_unbound_raises(self):
        with pytest.raises(UnsafeBuiltinError):
            solve("*", 0, None, 0)

    def test_nnb_zero_raises(self):
        with pytest.raises(UnsafeBuiltinError):
            solve("*", None, None, 0)

    @given(st.integers(min_value=1, max_value=500))
    def test_factor_pairs_complete(self, c):
        pairs = {(a, b) for a, b, _ in solve("*", None, None, c)}
        expected = {(a, c // a) for a in range(1, c + 1) if c % a == 0}
        assert pairs == expected


class TestDivMod:
    def test_div_floor(self):
        assert solve("/", 7, 2, None) == [(7, 2, 3)]

    def test_div_by_zero_raises(self):
        with pytest.raises(EvaluationError):
            solve("/", 7, 0, None)

    def test_mod(self):
        assert solve("mod", 7, 2, None) == [(7, 2, 1)]

    def test_mod_check(self):
        assert solve("mod", 7, 2, 1) == [(7, 2, 1)]
        assert solve("mod", 7, 2, 0) == []

    @given(nats, st.integers(min_value=1, max_value=100))
    def test_div_mod_identity(self, a, b):
        (_, _, q), = solve("/", a, b, None)
        (_, _, r), = solve("mod", a, b, None)
        assert q * b + r == a


class TestComparisons:
    def test_lt(self):
        assert solve("<", 1, 2) == [(1, 2)]
        assert solve("<", 2, 2) == []

    def test_le_ge(self):
        assert solve("<=", 2, 2) == [(2, 2)]
        assert solve(">=", 2, 2) == [(2, 2)]

    def test_unbound_raises(self):
        with pytest.raises(UnsafeBuiltinError):
            solve("<", None, 2)


class TestEquality:
    def test_eq_check(self):
        assert solve("=", "a", "a") == [("a", "a")]
        assert solve("=", "a", "b") == []

    def test_eq_binds_right(self):
        assert solve("=", "a", None) == [("a", "a")]

    def test_eq_binds_left(self):
        assert solve("=", None, 3) == [(3, 3)]

    def test_eq_unbound_raises(self):
        with pytest.raises(UnsafeBuiltinError):
            solve("=", None, None)

    def test_neq(self):
        assert solve("!=", "a", "b") == [("a", "b")]
        assert solve("!=", "a", "a") == []

    def test_neq_works_across_values(self):
        assert solve("!=", 1, 2) == [(1, 2)]
