"""Tests verifying the paper's claim that +, −, *, /, < are definable
from succ: the defined relations agree with the native builtins on the
whole bounded segment."""

import pytest

from repro.datalog.arith_defs import (ARITHMETIC_FROM_SUCC, arithmetic_db,
                                      defined_arithmetic)

BOUND = 12


@pytest.fixture(scope="module")
def result():
    return defined_arithmetic(BOUND)


class TestNumberLine:
    def test_num_is_initial_segment(self, result):
        assert result.tuples("num") == {(n,) for n in range(BOUND + 1)}

    def test_bound_zero(self):
        small = defined_arithmetic(0)
        assert small.tuples("num") == {(0,)}
        assert small.tuples("plus") == {(0, 0, 0)}

    def test_negative_bound_rejected(self):
        with pytest.raises(ValueError):
            arithmetic_db(-1)


class TestOrder:
    def test_lt_matches_python(self, result):
        expected = {(a, b) for a in range(BOUND + 1)
                    for b in range(BOUND + 1) if a < b}
        assert result.tuples("lt") == expected

    def test_le_matches_python(self, result):
        expected = {(a, b) for a in range(BOUND + 1)
                    for b in range(BOUND + 1) if a <= b}
        assert result.tuples("le") == expected


class TestPlusMinus:
    def test_plus_matches_python(self, result):
        expected = {(a, b, a + b)
                    for a in range(BOUND + 1) for b in range(BOUND + 1)
                    if a + b <= BOUND}
        assert result.tuples("plus") == expected

    def test_minus_matches_python(self, result):
        expected = {(a, b, a - b)
                    for a in range(BOUND + 1) for b in range(a + 1)}
        assert result.tuples("minus") == expected


class TestTimesDiv:
    def test_times_matches_python(self, result):
        expected = {(a, b, a * b)
                    for a in range(BOUND + 1) for b in range(BOUND + 1)
                    if a * b <= BOUND}
        assert result.tuples("times") == expected

    def test_div_matches_python_inside_bound(self, result):
        # div(A,B,Q) is defined where B*(Q+1) still fits in the segment.
        expected = {(a, b, a // b)
                    for a in range(BOUND + 1) for b in range(1, BOUND + 1)
                    if b * (a // b + 1) <= BOUND}
        assert result.tuples("div") == expected

    def test_div_by_zero_undefined(self, result):
        assert not any(b == 0 for _, b, _ in result.tuples("div"))


class TestProgramShape:
    def test_uses_only_succ_and_comparisons_for_bounding(self):
        """The definitions bottom out in succ; +,*,/ builtins are unused."""
        assert "+(" not in ARITHMETIC_FROM_SUCC
        assert "*(" not in ARITHMETIC_FROM_SUCC
        assert "succ(" in ARITHMETIC_FROM_SUCC
