"""Tests for the DatalogEngine facade."""

import pytest

from repro.datalog.database import Database
from repro.datalog.engine import DatalogEngine
from repro.datalog.parser import parse_program
from repro.errors import SafetyError, SchemaError, StratificationError


class TestConstruction:
    def test_from_text(self):
        engine = DatalogEngine("p(X) :- q(X).")
        assert engine.program.head_predicates == {"p"}

    def test_from_program_object(self):
        program = parse_program("p(X) :- q(X).")
        engine = DatalogEngine(program)
        assert engine.program is program

    def test_rejects_choice(self):
        with pytest.raises(SchemaError):
            DatalogEngine("p(X) :- q(X, Y), choice((X), (Y)).")

    def test_rejects_id_atoms(self):
        with pytest.raises(SchemaError):
            DatalogEngine("p(X) :- q[1](X, N).")

    def test_rejects_unsafe(self):
        with pytest.raises(SafetyError):
            DatalogEngine("p(X, Y) :- q(X).")

    def test_rejects_unstratified(self):
        with pytest.raises(StratificationError):
            DatalogEngine("win(X) :- move(X, Y), not win(Y).")


class TestQuerying:
    def test_query(self):
        engine = DatalogEngine("""
            anc(X, Y) :- parent(X, Y).
            anc(X, Y) :- parent(X, Z), anc(Z, Y).
        """)
        db = Database.from_facts(
            {"parent": [("tom", "bob"), ("bob", "ann")]})
        assert engine.query(db, "anc") == {
            ("tom", "bob"), ("bob", "ann"), ("tom", "ann")}

    def test_run_exposes_stats_and_database(self):
        engine = DatalogEngine("p(X) :- q(X).")
        db = Database.from_facts({"q": [("a",)]})
        result = engine.run(db)
        assert result.tuples("p") == {("a",)}
        assert result.stats.derived == {"p": 1}
        assert "q" in result.database.relation_names()

    def test_reusable_across_databases(self):
        engine = DatalogEngine("p(X) :- q(X).")
        db1 = Database.from_facts({"q": [("a",)]})
        db2 = Database.from_facts({"q": [("b",)]})
        assert engine.query(db1, "p") == {("a",)}
        assert engine.query(db2, "p") == {("b",)}

    def test_input_database_not_mutated(self):
        engine = DatalogEngine("p(X) :- q(X).\nq(extra).")
        db = Database.from_facts({"q": [("a",)]})
        engine.run(db)
        assert db.relation("q").frozen() == {("a",)}
