"""Coverage for small public helpers not exercised elsewhere."""

import pytest

from repro.datalog.ast import Atom, fact
from repro.datalog.graph import DependencyGraph
from repro.datalog.parser import parse_program
from repro.datalog.terms import Const, Var, is_ground
from repro.errors import ParseError


class TestGraphHelpers:
    PROGRAM = parse_program("""
        b(X) :- a(X).
        c(X) :- b(X), not d(X).
        d(X) :- a(X).
    """)

    def test_edges_between(self):
        graph = DependencyGraph.of_program(self.PROGRAM)
        edges = list(graph.edges_between(["a"], ["b", "d"]))
        assert {(e.source, e.target) for e in edges} == {
            ("a", "b"), ("a", "d")}

    def test_edges_between_empty(self):
        graph = DependencyGraph.of_program(self.PROGRAM)
        assert list(graph.edges_between(["c"], ["a"])) == []


class TestTermHelpers:
    def test_is_ground(self):
        assert is_ground(Const("a"))
        assert not is_ground(Var("X"))

    def test_fact_constructor(self):
        clause = fact("emp", "ann", 3)
        assert clause.is_fact
        assert clause.head.args == (Const("ann"), Const(3))


class TestAtomHelpers:
    def test_substitute(self):
        atom = Atom("p", (Var("X"), Const("k"), Var("Y")))
        out = atom.substitute({Var("X"): "v"})
        assert out.args == (Const("v"), Const("k"), Var("Y"))

    def test_substitute_preserves_group(self):
        atom = Atom("p", (Var("X"), Var("T")), frozenset({1}))
        out = atom.substitute({Var("T"): 0})
        assert out.group == frozenset({1})

    def test_rename_pred(self):
        atom = Atom("p", (Var("X"),))
        assert atom.rename_pred("q").pred == "q"


class TestParseErrorLocations:
    def test_column_reported(self):
        with pytest.raises(ParseError) as excinfo:
            parse_program("p(a) q(b).")
        assert excinfo.value.line == 1
        assert excinfo.value.column is not None

    def test_message_mentions_expectation(self):
        with pytest.raises(ParseError, match="expected"):
            parse_program("p(a)")


class TestProgramViews:
    def test_extend(self):
        base = parse_program("p(X) :- q(X).")
        extra = parse_program("r(X) :- p(X).")
        merged = base.extend(extra.clauses)
        assert len(merged) == 2
        assert merged.head_predicates == {"p", "r"}

    def test_len_and_iter(self):
        program = parse_program("p(a).\nq(b).")
        assert len(program) == 2
        assert [c.head.pred for c in program] == ["p", "q"]

    def test_arity_of_unknown_pred(self):
        with pytest.raises(KeyError):
            parse_program("p(a).").arity("ghost")
